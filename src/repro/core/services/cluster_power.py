"""Cluster-wide power API — the multi-node System Service integration.

Paper section 3.2: "in a multi-node setup, you need power from multiple
nodes where you have an API that measures power draw.  Then there is a
need for an integration in Chronus that can read the power draw from that
API.  That is two different implementations for the same integration
interface."

This is that second implementation: it aggregates every node's IPMI
sensors behind the same :class:`SystemServiceInterface` the single-node
IPMI integration implements — total and CPU power are summed across the
allocation, temperature reports the hottest package (the quantity a
cooling budget cares about).
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.core.application.interfaces import SystemServiceInterface
from repro.core.domain.errors import (
    PermanentSamplingError,
    TransientSamplingError,
)
from repro.core.domain.run import EnergySample
from repro.hardware.ipmi import IpmiError, IpmiPermissionError, IpmiTool

__all__ = ["ClusterPowerService"]


class ClusterPowerService(SystemServiceInterface):
    """Sums IPMI telemetry across all nodes of a cluster."""

    def __init__(self, ipmis: Sequence[IpmiTool], clock: Callable[[], float]) -> None:
        if not ipmis:
            raise ValueError("a cluster power service needs at least one node")
        self.ipmis = list(ipmis)
        self._clock = clock

    @property
    def node_count(self) -> int:
        return len(self.ipmis)

    def sample(self) -> EnergySample:
        total_w = 0.0
        cpu_w = 0.0
        max_temp = 0.0
        for ipmi in self.ipmis:
            try:
                total_w += ipmi.read_sensor("Total_Power").value
                cpu_w += ipmi.read_sensor("CPU_Power").value
                max_temp = max(max_temp, ipmi.read_sensor("CPU_Temp").value)
            except IpmiPermissionError as exc:
                raise PermanentSamplingError(
                    f"IPMI access denied on {ipmi.bmc.node.hostname}: {exc}"
                ) from exc
            except (IpmiError, OSError) as exc:
                # one node's flaky BMC poisons the cluster-wide sum for
                # this instant; report the interval as missed instead
                raise TransientSamplingError(
                    f"IPMI read failed on {ipmi.bmc.node.hostname}: {exc}"
                ) from exc
        return EnergySample(
            time=self._clock(),
            system_w=total_w,
            cpu_w=cpu_w,
            cpu_temp_c=max_temp,
        )
