"""GPU device specifications.

Mirrors what ``nvidia-smi -q -d SUPPORTED_CLOCKS`` exposes: the discrete
SM (graphics) clock states and memory clock states that application-clock
pinning (``nvidia-smi -ac``) accepts — the knobs a GPU-aware eco plugin
would turn.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["GpuSpec", "NVIDIA_A100"]


@dataclass(frozen=True)
class GpuSpec:
    """Static description of one GPU model."""

    name: str
    sm_clocks_mhz: tuple[int, ...]
    mem_clocks_mhz: tuple[int, ...]
    #: board power limit (W)
    tdp_w: float
    #: idle board power (W)
    idle_w: float
    #: SM voltage at the lowest/highest SM clock (linear in between)
    v_min: float
    v_max: float
    #: dynamic power coefficient (W per V^2 per GHz at full utilization)
    dyn_w_per_v2ghz: float
    #: memory-subsystem power per memory-clock GHz (W)
    mem_w_per_ghz: float

    def __post_init__(self) -> None:
        if not self.sm_clocks_mhz or not self.mem_clocks_mhz:
            raise ValueError("a GPU needs at least one SM and one memory clock")
        if list(self.sm_clocks_mhz) != sorted(self.sm_clocks_mhz):
            raise ValueError("sm_clocks_mhz must be ascending")
        if list(self.mem_clocks_mhz) != sorted(self.mem_clocks_mhz):
            raise ValueError("mem_clocks_mhz must be ascending")
        if self.v_min <= 0 or self.v_max < self.v_min:
            raise ValueError("need 0 < v_min <= v_max")

    @property
    def max_sm_mhz(self) -> int:
        return self.sm_clocks_mhz[-1]

    @property
    def max_mem_mhz(self) -> int:
        return self.mem_clocks_mhz[-1]

    def validate_clocks(self, sm_mhz: int, mem_mhz: int) -> None:
        """Application clocks must be supported states (nvidia-smi -ac)."""
        if sm_mhz not in self.sm_clocks_mhz:
            raise ValueError(
                f"{sm_mhz} MHz is not a supported SM clock "
                f"(supported: {list(self.sm_clocks_mhz)})"
            )
        if mem_mhz not in self.mem_clocks_mhz:
            raise ValueError(
                f"{mem_mhz} MHz is not a supported memory clock "
                f"(supported: {list(self.mem_clocks_mhz)})"
            )

    def sm_voltage(self, sm_mhz: float) -> float:
        """Linear V(f) across the SM clock range, clamped at the ends."""
        lo, hi = self.sm_clocks_mhz[0], self.sm_clocks_mhz[-1]
        return float(np.interp(sm_mhz, [lo, hi], [self.v_min, self.v_max]))


#: An A100-PCIe-like part.  SM clocks span the real part's application-
#: clock range in 15 steps; two memory P-states as on real boards.  The
#: power constants are chosen so a memory-bound kernel reproduces the
#: ~28%-energy-for-1%-performance trade of Abe et al. [1] (validated in
#: tests/test_gpu.py).
NVIDIA_A100 = GpuSpec(
    name="NVIDIA A100-PCIE-40GB",
    sm_clocks_mhz=tuple(range(510, 1411, 60)),  # 510..1410 in 60 MHz steps
    mem_clocks_mhz=(810, 1215),
    tdp_w=250.0,
    idle_w=38.0,
    v_min=0.72,
    v_max=1.10,
    dyn_w_per_v2ghz=100.0,
    mem_w_per_ghz=28.0,
)
