"""The simulated GPU: application clocks, power, kernel execution.

A :class:`GpuKernel` describes a workload by its arithmetic intensity
regime through two roof coefficients; :meth:`SimulatedGpu.run_kernel`
executes a fixed amount of work at the current application clocks and
returns the timed, energy-accounted result.  Everything is closed-form —
the GPU does not need the discrete-event engine, mirroring how the paper's
node-level benchmarking treats the application as a black box with a
runtime and an energy bill.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.gpu.spec import GpuSpec, NVIDIA_A100
from repro.simkernel.random import RandomStreams

__all__ = ["GpuKernel", "KernelRun", "SimulatedGpu"]


@dataclass(frozen=True)
class GpuKernel:
    """A GPU workload's performance character.

    Throughput follows a sharp roofline over the two clock domains::

        perf = smoothmin( compute_per_mhz * sm_clock,
                          memory_per_mhz  * mem_clock )

    ``utilization`` scales dynamic SM power (kernels that stall draw less).
    """

    name: str
    #: relative throughput per SM MHz when compute-bound
    compute_per_mhz: float
    #: relative throughput per memory MHz when memory-bound
    memory_per_mhz: float
    #: total work units the benchmark run executes
    work_units: float
    #: SM switching-activity factor in (0, 1]
    utilization: float = 1.0
    #: roofline blend sharpness (higher = harder min)
    smoothmin_n: float = 6.0

    def __post_init__(self) -> None:
        if self.compute_per_mhz <= 0 or self.memory_per_mhz <= 0:
            raise ValueError("roof coefficients must be positive")
        if self.work_units <= 0:
            raise ValueError("work_units must be positive")
        if not 0.0 < self.utilization <= 1.0:
            raise ValueError("utilization must be in (0, 1]")

    def throughput(self, sm_mhz: float, mem_mhz: float) -> float:
        """Work units per second at the given clocks."""
        pc = self.compute_per_mhz * sm_mhz
        pm = self.memory_per_mhz * mem_mhz
        n = self.smoothmin_n
        return (pc ** -n + pm ** -n) ** (-1.0 / n)

    def compute_fraction(self, sm_mhz: float, mem_mhz: float) -> float:
        """Achieved / compute-roof ratio (drives the SM stall model)."""
        return self.throughput(sm_mhz, mem_mhz) / (self.compute_per_mhz * sm_mhz)


@dataclass(frozen=True)
class KernelRun:
    """Result of one kernel execution."""

    kernel: str
    sm_mhz: int
    mem_mhz: int
    runtime_s: float
    avg_power_w: float

    @property
    def energy_j(self) -> float:
        return self.avg_power_w * self.runtime_s


class SimulatedGpu:
    """One GPU with settable application clocks."""

    def __init__(
        self,
        spec: GpuSpec = NVIDIA_A100,
        streams: Optional[RandomStreams] = None,
        *,
        noise_sigma: float = 0.003,
    ) -> None:
        self.spec = spec
        self.sm_mhz = spec.max_sm_mhz
        self.mem_mhz = spec.max_mem_mhz
        self._rng = (streams or RandomStreams(0)).get(f"gpu:{spec.name}")
        self.noise_sigma = noise_sigma
        self.total_energy_j = 0.0
        self._runs = 0

    # ------------------------------------------------------------------
    def set_application_clocks(self, sm_mhz: int, mem_mhz: int) -> None:
        """``nvidia-smi -ac <mem>,<sm>`` equivalent."""
        self.spec.validate_clocks(sm_mhz, mem_mhz)
        self.sm_mhz = sm_mhz
        self.mem_mhz = mem_mhz

    def reset_application_clocks(self) -> None:
        self.sm_mhz = self.spec.max_sm_mhz
        self.mem_mhz = self.spec.max_mem_mhz

    # ------------------------------------------------------------------
    def power_w(self, kernel: Optional[GpuKernel] = None) -> float:
        """Board power at the current clocks (idle when no kernel runs)."""
        s = self.spec
        if kernel is None:
            return s.idle_w
        volt = s.sm_voltage(self.sm_mhz)
        act = kernel.utilization * (
            0.25 + 0.75 * kernel.compute_fraction(self.sm_mhz, self.mem_mhz)
        )
        dyn = s.dyn_w_per_v2ghz * volt * volt * (self.sm_mhz / 1000.0) * act
        mem = s.mem_w_per_ghz * (self.mem_mhz / 1000.0)
        return min(s.tdp_w, s.idle_w + dyn + mem)

    def run_kernel(self, kernel: GpuKernel) -> KernelRun:
        """Execute the kernel's full work at the current clocks."""
        rate = kernel.throughput(self.sm_mhz, self.mem_mhz)
        noise = 1.0 + float(self._rng.normal(0.0, self.noise_sigma))
        runtime = kernel.work_units / (rate * max(1e-9, noise))
        power = self.power_w(kernel)
        self.total_energy_j += power * runtime
        self._runs += 1
        return KernelRun(
            kernel=kernel.name,
            sm_mhz=self.sm_mhz,
            mem_mhz=self.mem_mhz,
            runtime_s=runtime,
            avg_power_w=power,
        )
