"""GPU frequency tuner: the benchmark-sweep-and-pick loop, Chronus-style.

Sweeps every supported (SM clock, memory clock) pair for a kernel —
exactly what Chronus' benchmark does for (cores, threads, frequency) on
the CPU — and selects the minimum-energy configuration whose runtime stays
within a performance-loss budget relative to the default (maximum) clocks.
With the A100 model and a memory-bound kernel this reproduces the "28%
energy saving for 1% performance loss" result of Abe et al. [1] that the
paper's section 6.2.2 cites.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpu.device import GpuKernel, KernelRun, SimulatedGpu

__all__ = ["TuneResult", "GpuFrequencyTuner"]


@dataclass(frozen=True)
class TuneResult:
    """Outcome of one tuning campaign."""

    kernel: str
    baseline: KernelRun
    best: KernelRun
    sweep: tuple[KernelRun, ...]
    max_perf_loss: float

    @property
    def energy_saving_fraction(self) -> float:
        return 1.0 - self.best.energy_j / self.baseline.energy_j

    @property
    def perf_loss_fraction(self) -> float:
        return self.best.runtime_s / self.baseline.runtime_s - 1.0


class GpuFrequencyTuner:
    """Exhaustive application-clock tuner with a perf-loss budget."""

    def __init__(self, gpu: SimulatedGpu) -> None:
        self.gpu = gpu

    def sweep(self, kernel: GpuKernel) -> list[KernelRun]:
        """Benchmark the kernel at every supported clock pair."""
        runs: list[KernelRun] = []
        original = (self.gpu.sm_mhz, self.gpu.mem_mhz)
        try:
            for mem in self.gpu.spec.mem_clocks_mhz:
                for sm in self.gpu.spec.sm_clocks_mhz:
                    self.gpu.set_application_clocks(sm, mem)
                    runs.append(self.gpu.run_kernel(kernel))
        finally:
            self.gpu.set_application_clocks(*original)
        return runs

    def tune(self, kernel: GpuKernel, *, max_perf_loss: float = 0.01) -> TuneResult:
        """Pick the lowest-energy clocks within the perf-loss budget.

        Args:
            kernel: the workload to tune for.
            max_perf_loss: allowed runtime increase vs default clocks
                (0.01 = the 1% of the cited study).
        """
        if max_perf_loss < 0:
            raise ValueError("max_perf_loss must be >= 0")
        self.gpu.reset_application_clocks()
        baseline = self.gpu.run_kernel(kernel)
        runs = self.sweep(kernel)
        budget = baseline.runtime_s * (1.0 + max_perf_loss)
        feasible = [r for r in runs if r.runtime_s <= budget]
        if not feasible:
            feasible = [baseline]
        best = min(feasible, key=lambda r: r.energy_j)
        if best.energy_j >= baseline.energy_j:
            best = baseline
        return TuneResult(
            kernel=kernel.name,
            baseline=baseline,
            best=best,
            sweep=tuple(runs),
            max_perf_loss=max_perf_loss,
        )
