"""GPU frequency tuning — the paper's section 6.2.2 extension.

"Another potential enhancement is to tune the clock rate and memory
frequency to get better energy efficiency on GPU.  Research has found that
this can save 28% energy for 1% performance loss [Abe et al. 2012].
Nvidia provides telemetry tools for this purpose."

This package provides the simulated substrate and the tuner:

* :class:`~repro.gpu.spec.GpuSpec` / :data:`~repro.gpu.spec.NVIDIA_A100`
  — supported SM and memory clock states, like ``nvidia-smi -q -d
  SUPPORTED_CLOCKS`` reports.
* :class:`~repro.gpu.device.SimulatedGpu` — a device with application
  clocks, a calibrated power model and continuous energy integration.
* :class:`~repro.gpu.dcgm.DcgmTelemetry` — the DCGM-style field sampler.
* :class:`~repro.gpu.tuner.GpuFrequencyTuner` — sweeps (SM, memory) clock
  pairs for a kernel and picks the lowest-energy configuration under a
  performance-loss budget, reproducing the 28%-for-1% shape.
"""

from repro.gpu.spec import GpuSpec, NVIDIA_A100
from repro.gpu.device import GpuKernel, KernelRun, SimulatedGpu
from repro.gpu.dcgm import DcgmSample, DcgmTelemetry
from repro.gpu.tuner import GpuFrequencyTuner, TuneResult

__all__ = [
    "GpuSpec",
    "NVIDIA_A100",
    "SimulatedGpu",
    "GpuKernel",
    "KernelRun",
    "DcgmSample",
    "DcgmTelemetry",
    "GpuFrequencyTuner",
    "TuneResult",
]
