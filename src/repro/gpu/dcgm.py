"""DCGM-style GPU telemetry.

The paper's section 6.2.2 points at NVIDIA's Data Center GPU Manager
(DCGM) as the telemetry source a GPU-aware plugin would use; this is that
integration surface: field-id based sampling of power, clocks and
utilization, matching the fields Slurm's own DCGM job-statistics plugin
collects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.gpu.device import GpuKernel, SimulatedGpu

__all__ = ["DcgmSample", "DcgmTelemetry", "FIELD_IDS"]

#: the DCGM field identifiers we model (names mirror dcgm_fields.h)
FIELD_IDS = {
    "DCGM_FI_DEV_POWER_USAGE": 155,
    "DCGM_FI_DEV_SM_CLOCK": 100,
    "DCGM_FI_DEV_MEM_CLOCK": 101,
    "DCGM_FI_DEV_GPU_UTIL": 203,
    "DCGM_FI_DEV_TOTAL_ENERGY_CONSUMPTION": 156,
}


@dataclass(frozen=True)
class DcgmSample:
    """One telemetry snapshot."""

    power_w: float
    sm_clock_mhz: int
    mem_clock_mhz: int
    gpu_util_pct: float
    total_energy_mj: float  # DCGM reports millijoules


class DcgmTelemetry:
    """Field-based sampler over one simulated GPU."""

    def __init__(self, gpu: SimulatedGpu) -> None:
        self.gpu = gpu
        self._active_kernel: Optional[GpuKernel] = None

    def set_active_kernel(self, kernel: Optional[GpuKernel]) -> None:
        """Tell the sampler what is currently executing (None = idle)."""
        self._active_kernel = kernel

    def sample(self) -> DcgmSample:
        kernel = self._active_kernel
        util = 0.0 if kernel is None else kernel.utilization * 100.0
        return DcgmSample(
            power_w=self.gpu.power_w(kernel),
            sm_clock_mhz=self.gpu.sm_mhz,
            mem_clock_mhz=self.gpu.mem_mhz,
            gpu_util_pct=util,
            total_energy_mj=self.gpu.total_energy_j * 1000.0,
        )

    def field(self, name: str) -> float:
        """Read one DCGM field by name (see :data:`FIELD_IDS`)."""
        if name not in FIELD_IDS:
            raise KeyError(f"unknown DCGM field {name!r}; known: {sorted(FIELD_IDS)}")
        sample = self.sample()
        return {
            "DCGM_FI_DEV_POWER_USAGE": sample.power_w,
            "DCGM_FI_DEV_SM_CLOCK": float(sample.sm_clock_mhz),
            "DCGM_FI_DEV_MEM_CLOCK": float(sample.mem_clock_mhz),
            "DCGM_FI_DEV_GPU_UTIL": sample.gpu_util_pct,
            "DCGM_FI_DEV_TOTAL_ENERGY_CONSUMPTION": sample.total_energy_mj,
        }[name]
