"""Structured (JSON-lines) logging.

One event per line, machine-parseable, with a stable field order:
``ts`` (wall clock, injectable for tests), ``level``, ``event``, then any
caller-supplied fields.  The logger can tee to an in-memory buffer, an open
stream, and/or a file path; failures to write never propagate — telemetry
must not take the cluster down, same policy as the eco plugin itself.
"""

from __future__ import annotations

import io
import json
import threading
import time
from typing import Any, Callable, Optional, TextIO

__all__ = ["JsonLinesLogger", "NullLogger", "LEVELS"]

LEVELS = ("debug", "info", "warning", "error")


class JsonLinesLogger:
    """Thread-safe JSON-lines event logger."""

    def __init__(
        self,
        *,
        stream: Optional[TextIO] = None,
        path: Optional[str] = None,
        clock: Optional[Callable[[], float]] = None,
        buffer_size: int = 4096,
    ) -> None:
        self._stream = stream
        self._path = path
        self._clock = clock or time.time
        self._lock = threading.Lock()
        self._buffer: list[dict] = []
        self._buffer_size = buffer_size

    def log(self, event: str, *, level: str = "info", **fields: Any) -> dict:
        if level not in LEVELS:
            raise ValueError(f"level must be one of {LEVELS}, got {level!r}")
        record = {"ts": self._clock(), "level": level, "event": event}
        record.update(fields)
        line = json.dumps(record, default=str)
        with self._lock:
            self._buffer.append(record)
            if len(self._buffer) > self._buffer_size:
                del self._buffer[: len(self._buffer) - self._buffer_size]
            if self._stream is not None:
                try:
                    self._stream.write(line + "\n")
                except (OSError, io.UnsupportedOperation):
                    pass
            if self._path is not None:
                try:
                    with open(self._path, "a") as fh:
                        fh.write(line + "\n")
                except OSError:
                    pass
        return record

    def debug(self, event: str, **fields: Any) -> dict:
        return self.log(event, level="debug", **fields)

    def info(self, event: str, **fields: Any) -> dict:
        return self.log(event, level="info", **fields)

    def warning(self, event: str, **fields: Any) -> dict:
        return self.log(event, level="warning", **fields)

    def error(self, event: str, **fields: Any) -> dict:
        return self.log(event, level="error", **fields)

    def records(self, event: Optional[str] = None) -> "list[dict]":
        with self._lock:
            if event is None:
                return list(self._buffer)
            return [r for r in self._buffer if r["event"] == event]

    def reset(self) -> None:
        with self._lock:
            self._buffer.clear()


class NullLogger:
    """Disabled logging: accepts everything, records nothing."""

    def log(self, event: str, *, level: str = "info", **fields: Any) -> dict:
        return {}

    def debug(self, event: str, **fields: Any) -> dict:
        return {}

    def info(self, event: str, **fields: Any) -> dict:
        return {}

    def warning(self, event: str, **fields: Any) -> dict:
        return {}

    def error(self, event: str, **fields: Any) -> dict:
        return {}

    def records(self, event: Optional[str] = None) -> list:
        return []

    def reset(self) -> None:
        pass
