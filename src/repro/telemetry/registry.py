"""Metrics primitives: counters, gauges, histograms and their registry.

Dependency-free and thread-safe.  Every metric belongs to a
:class:`MetricsRegistry`; instrumented code obtains metric handles through
the registry (``registry.counter("eco_cache_hits_total")``) and mutates
them on the hot path.  The registry hands out one object per
``(name, labels)`` pair, so repeated lookups are cheap dictionary hits and
handles can be cached by the caller for the hottest loops.

The :class:`NullRegistry` implements the same surface with shared inert
singletons: with telemetry disabled every ``inc``/``observe``/``set`` is a
single no-op method call and nothing is ever recorded.

Histograms keep a bounded reservoir of observations (deterministic
per-metric PRNG, so snapshots are reproducible for a given observation
sequence) from which p50/p95/p99 are computed at snapshot time — the hot
path never sorts.
"""

from __future__ import annotations

import random
import threading
from typing import Mapping, Optional

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NullCounter",
    "NullGauge",
    "NullHistogram",
]

#: histogram reservoir bound — large enough for stable tail quantiles,
#: small enough that a runaway loop cannot exhaust memory
RESERVOIR_SIZE = 4096

LabelArg = Optional[Mapping[str, str]]
LabelKey = "tuple[tuple[str, str], ...]"


def _label_key(labels: LabelArg) -> "tuple[tuple[str, str], ...]":
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "labels", "_lock", "_value")

    def __init__(self, name: str, labels: LabelArg = None) -> None:
        self.name = name
        self.labels = dict(labels or {})
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease (inc {amount})")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def snapshot(self) -> dict:
        return {"name": self.name, "labels": self.labels, "value": self._value}


class Gauge:
    """A value that can go up and down (queue depth, temperature, ...)."""

    __slots__ = ("name", "labels", "_lock", "_value")

    def __init__(self, name: str, labels: LabelArg = None) -> None:
        self.name = name
        self.labels = dict(labels or {})
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        return self._value

    def snapshot(self) -> dict:
        return {"name": self.name, "labels": self.labels, "value": self._value}


class Histogram:
    """Observation distribution with snapshot-time quantiles.

    Exact count/sum/min/max; quantiles from a bounded reservoir.  The
    reservoir uses Vitter's algorithm R with a PRNG seeded from the metric
    identity, so two processes observing the same sequence report the same
    quantiles.
    """

    __slots__ = ("name", "labels", "_lock", "_count", "_sum", "_min", "_max",
                 "_reservoir", "_rng")

    def __init__(self, name: str, labels: LabelArg = None) -> None:
        self.name = name
        self.labels = dict(labels or {})
        self._lock = threading.Lock()
        self._count = 0
        self._sum = 0.0
        self._min = float("inf")
        self._max = float("-inf")
        self._reservoir: list[float] = []
        self._rng = random.Random(hash((name, _label_key(labels))) & 0xFFFFFFFF)

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value
            if len(self._reservoir) < RESERVOIR_SIZE:
                self._reservoir.append(value)
            else:
                slot = self._rng.randrange(self._count)
                if slot < RESERVOIR_SIZE:
                    self._reservoir[slot] = value

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    def quantile(self, q: float) -> float:
        """Linear-interpolation quantile over the reservoir, q in [0, 1]."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        with self._lock:
            data = sorted(self._reservoir)
        if not data:
            return 0.0
        if len(data) == 1:
            return data[0]
        pos = q * (len(data) - 1)
        lo = int(pos)
        hi = min(lo + 1, len(data) - 1)
        frac = pos - lo
        return data[lo] * (1.0 - frac) + data[hi] * frac

    def snapshot(self) -> dict:
        with self._lock:
            data = sorted(self._reservoir)
            count, total = self._count, self._sum
            lo, hi = self._min, self._max

        def q(p: float) -> float:
            if not data:
                return 0.0
            pos = p * (len(data) - 1)
            i = int(pos)
            j = min(i + 1, len(data) - 1)
            frac = pos - i
            return data[i] * (1.0 - frac) + data[j] * frac

        return {
            "name": self.name,
            "labels": self.labels,
            "count": count,
            "sum": total,
            "mean": (total / count) if count else 0.0,
            "min": lo if count else 0.0,
            "max": hi if count else 0.0,
            "p50": q(0.50),
            "p95": q(0.95),
            "p99": q(0.99),
        }


class MetricsRegistry:
    """Process-local metric store keyed by ``(name, sorted labels)``."""

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[tuple, Counter] = {}
        self._gauges: dict[tuple, Gauge] = {}
        self._histograms: dict[tuple, Histogram] = {}

    # -- handle accessors ------------------------------------------------
    def counter(self, name: str, labels: LabelArg = None) -> Counter:
        key = (name, _label_key(labels))
        metric = self._counters.get(key)
        if metric is None:
            with self._lock:
                metric = self._counters.setdefault(key, Counter(name, labels))
        return metric

    def gauge(self, name: str, labels: LabelArg = None) -> Gauge:
        key = (name, _label_key(labels))
        metric = self._gauges.get(key)
        if metric is None:
            with self._lock:
                metric = self._gauges.setdefault(key, Gauge(name, labels))
        return metric

    def histogram(self, name: str, labels: LabelArg = None) -> Histogram:
        key = (name, _label_key(labels))
        metric = self._histograms.get(key)
        if metric is None:
            with self._lock:
                metric = self._histograms.setdefault(key, Histogram(name, labels))
        return metric

    # -- snapshots -------------------------------------------------------
    def snapshot(self) -> dict:
        """A JSON-serializable snapshot of every metric."""
        with self._lock:
            counters = list(self._counters.values())
            gauges = list(self._gauges.values())
            histograms = list(self._histograms.values())
        return {
            "counters": [c.snapshot() for c in counters],
            "gauges": [g.snapshot() for g in gauges],
            "histograms": [h.snapshot() for h in histograms],
        }

    def reset(self) -> None:
        """Drop every metric (tests and fresh CLI invocations)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._counters) + len(self._gauges) + len(self._histograms)


class NullCounter:
    """Inert counter; every instance is interchangeable."""

    __slots__ = ()
    name = ""
    labels: dict = {}
    value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        pass

    def snapshot(self) -> dict:
        return {"name": "", "labels": {}, "value": 0.0}


class NullGauge:
    __slots__ = ()
    name = ""
    labels: dict = {}
    value = 0.0

    def set(self, value: float) -> None:
        pass

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def snapshot(self) -> dict:
        return {"name": "", "labels": {}, "value": 0.0}


class NullHistogram:
    __slots__ = ()
    name = ""
    labels: dict = {}
    count = 0
    sum = 0.0
    mean = 0.0

    def observe(self, value: float) -> None:
        pass

    def quantile(self, q: float) -> float:
        return 0.0

    def snapshot(self) -> dict:
        return {"name": "", "labels": {}, "count": 0, "sum": 0.0, "mean": 0.0,
                "min": 0.0, "max": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0}


_NULL_COUNTER = NullCounter()
_NULL_GAUGE = NullGauge()
_NULL_HISTOGRAM = NullHistogram()


class NullRegistry:
    """The disabled-telemetry registry: same surface, zero side effects."""

    enabled = False

    def counter(self, name: str, labels: LabelArg = None) -> NullCounter:
        return _NULL_COUNTER

    def gauge(self, name: str, labels: LabelArg = None) -> NullGauge:
        return _NULL_GAUGE

    def histogram(self, name: str, labels: LabelArg = None) -> NullHistogram:
        return _NULL_HISTOGRAM

    def snapshot(self) -> dict:
        return {"counters": [], "gauges": [], "histograms": []}

    def reset(self) -> None:
        pass

    def __len__(self) -> int:
        return 0
