"""``repro.telemetry`` — metrics, tracing and structured logs for the repro.

The process holds one *active* registry/tracer/logger triple; instrumented
modules call the module-level helpers (:func:`counter`, :func:`histogram`,
:func:`span`, ...) which dispatch through it.  ``configure(enabled=False)``
swaps in the no-op implementations, making every instrumentation point a
single cheap method call with zero side effects — the
"zero-overhead-when-disabled" contract the scheduler loop relies on.

Enablement precedence (first match wins):

1. explicit :func:`configure` calls (``ChronusApp`` applies the
   ``telemetry_enabled`` field of ``/etc/chronus/settings.json``),
2. the ``CHRONUS_TELEMETRY`` environment variable (``0``/``off``/``false``
   disable, anything else enables) read at import,
3. enabled by default.
"""

from __future__ import annotations

import os
from typing import Any, Optional

from repro.telemetry.export import (
    find_metric,
    snapshot_from_json,
    snapshot_to_json,
    snapshot_to_prometheus,
)
from repro.telemetry.logs import JsonLinesLogger, NullLogger
from repro.telemetry.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullCounter,
    NullGauge,
    NullHistogram,
    NullRegistry,
)
from repro.telemetry.tracing import NullSpan, NullTracer, Span, Tracer, current_span

__all__ = [
    # primitives
    "Counter", "Gauge", "Histogram", "MetricsRegistry", "NullRegistry",
    "NullCounter", "NullGauge", "NullHistogram",
    "Span", "Tracer", "NullSpan", "NullTracer", "current_span",
    "JsonLinesLogger", "NullLogger",
    # export helpers
    "snapshot_to_json", "snapshot_from_json", "snapshot_to_prometheus",
    "find_metric",
    # global state
    "configure", "enabled", "get_registry", "get_tracer", "get_logger",
    "set_registry", "counter", "gauge", "histogram", "span", "log_event",
    "snapshot", "reset",
]


def _env_enabled() -> bool:
    value = os.environ.get("CHRONUS_TELEMETRY", "").strip().lower()
    return value not in ("0", "off", "false", "no", "disabled")


_registry: "MetricsRegistry | NullRegistry"
_tracer: "Tracer | NullTracer"
_logger: "JsonLinesLogger | NullLogger"


def configure(
    enabled: bool = True,
    *,
    log_path: Optional[str] = None,
) -> None:
    """Install the active telemetry implementations for this process."""
    global _registry, _tracer, _logger
    if enabled:
        _registry = MetricsRegistry()
        _tracer = Tracer(_registry)
        _logger = JsonLinesLogger(path=log_path)
    else:
        _registry = NullRegistry()
        _tracer = NullTracer()
        _logger = NullLogger()


configure(_env_enabled())


def enabled() -> bool:
    return _registry.enabled


def get_registry() -> "MetricsRegistry | NullRegistry":
    return _registry


def set_registry(registry: "MetricsRegistry | NullRegistry") -> None:
    """Swap the active registry (tests); the tracer follows it."""
    global _registry, _tracer
    _registry = registry
    _tracer = Tracer(registry) if registry.enabled else NullTracer()


def get_tracer() -> "Tracer | NullTracer":
    return _tracer


def get_logger() -> "JsonLinesLogger | NullLogger":
    return _logger


# ---------------------------------------------------------------------------
# hot-path helpers: one indirection over the active implementations
# ---------------------------------------------------------------------------
def counter(name: str, labels: Optional[dict] = None):
    return _registry.counter(name, labels)


def gauge(name: str, labels: Optional[dict] = None):
    return _registry.gauge(name, labels)


def histogram(name: str, labels: Optional[dict] = None):
    return _registry.histogram(name, labels)


def span(name: str, **attributes: Any):
    return _tracer.span(name, **attributes)


def log_event(event: str, *, level: str = "info", **fields: Any) -> dict:
    return _logger.log(event, level=level, **fields)


def snapshot() -> dict:
    return _registry.snapshot()


def reset() -> None:
    """Clear metrics, span history and buffered log records."""
    _registry.reset()
    _tracer.reset()
    _logger.reset()
