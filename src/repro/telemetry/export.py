"""Snapshot serialization: JSON and Prometheus text exposition format.

A *snapshot* is the plain dict produced by
:meth:`repro.telemetry.registry.MetricsRegistry.snapshot` — everything here
operates on that dict so exports work identically on a live registry and on
a snapshot reloaded from disk (the ``chronus metrics`` persistence path).
"""

from __future__ import annotations

import json
from typing import Optional

__all__ = [
    "snapshot_to_json",
    "snapshot_from_json",
    "snapshot_to_prometheus",
    "find_metric",
]


def snapshot_to_json(snapshot: dict, *, indent: int = 2) -> str:
    return json.dumps(snapshot, indent=indent, sort_keys=True)


def snapshot_from_json(text: str) -> dict:
    data = json.loads(text)
    if not isinstance(data, dict) or "counters" not in data:
        raise ValueError("not a telemetry snapshot (missing 'counters')")
    return data


def _labels_text(labels: dict) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{k}="{str(v).replace(chr(92), chr(92) * 2).replace(chr(34), chr(92) + chr(34))}"'
        for k, v in sorted(labels.items())
    )
    return "{" + inner + "}"


def snapshot_to_prometheus(snapshot: dict) -> str:
    """Prometheus text format; histograms export as summaries (quantiles)."""
    lines: list[str] = []
    for c in snapshot.get("counters", []):
        lines.append(f"# TYPE {c['name']} counter")
        lines.append(f"{c['name']}{_labels_text(c.get('labels', {}))} {c['value']}")
    for g in snapshot.get("gauges", []):
        lines.append(f"# TYPE {g['name']} gauge")
        lines.append(f"{g['name']}{_labels_text(g.get('labels', {}))} {g['value']}")
    for h in snapshot.get("histograms", []):
        name = h["name"]
        labels = dict(h.get("labels", {}))
        lines.append(f"# TYPE {name} summary")
        for q in ("0.5", "0.95", "0.99"):
            key = {"0.5": "p50", "0.95": "p95", "0.99": "p99"}[q]
            lines.append(
                f"{name}{_labels_text({**labels, 'quantile': q})} {h[key]}"
            )
        lines.append(f"{name}_sum{_labels_text(labels)} {h['sum']}")
        lines.append(f"{name}_count{_labels_text(labels)} {h['count']}")
    return "\n".join(lines) + ("\n" if lines else "")


def find_metric(
    snapshot: dict, kind: str, name: str, labels: Optional[dict] = None
) -> Optional[dict]:
    """Look up one metric entry in a snapshot; None when absent.

    Args:
        kind: ``"counters"``, ``"gauges"`` or ``"histograms"``.
        labels: when given, must match the entry's labels exactly; when
            None, the first entry with the name matches (label-free lookup).
    """
    for entry in snapshot.get(kind, []):
        if entry.get("name") != name:
            continue
        if labels is not None and entry.get("labels", {}) != labels:
            continue
        return entry
    return None
