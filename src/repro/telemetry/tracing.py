"""Span-based tracing with context propagation.

A :class:`Span` measures one operation (wall-clock) and knows its parent,
so nested instrumentation (``submit`` -> ``plugin_chain`` -> ``eco.predict``)
produces a tree.  The current span propagates through a ``contextvars``
context variable, which follows threads spawned via ``contextvars.copy_context``
and asyncio tasks for free.

Finished spans land in a bounded ring buffer on the tracer (for inspection
and the ``chronus metrics`` summary) and, when a registry is attached, each
span's duration is observed into a ``span_seconds`` histogram labelled by
span name — so tracing and metrics stay consistent without double
instrumentation.
"""

from __future__ import annotations

import contextvars
import itertools
import time
from collections import deque
from typing import Any, Optional

__all__ = ["Span", "Tracer", "NullTracer", "NullSpan", "current_span"]

#: bounded finished-span history per tracer
SPAN_HISTORY = 2048

_current_span: "contextvars.ContextVar[Optional[Span]]" = contextvars.ContextVar(
    "repro_telemetry_current_span", default=None
)


def current_span() -> "Optional[Span]":
    """The innermost active span in this context, or None."""
    return _current_span.get()


class Span:
    """One traced operation; use as a context manager."""

    __slots__ = ("tracer", "name", "span_id", "parent_id", "parent_name",
                 "attributes", "start_s", "end_s", "_token")

    def __init__(self, tracer: "Tracer", name: str, parent: "Optional[Span]",
                 attributes: "dict[str, Any]") -> None:
        self.tracer = tracer
        self.name = name
        self.span_id = tracer._next_id()
        self.parent_id = parent.span_id if parent is not None else None
        self.parent_name = parent.name if parent is not None else None
        self.attributes = attributes
        self.start_s = 0.0
        self.end_s = 0.0
        self._token: Optional[contextvars.Token] = None

    @property
    def duration_s(self) -> float:
        return max(0.0, self.end_s - self.start_s)

    def set_attribute(self, key: str, value: Any) -> None:
        self.attributes[key] = value

    def __enter__(self) -> "Span":
        self._token = _current_span.set(self)
        self.start_s = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.end_s = time.perf_counter()
        if self._token is not None:
            _current_span.reset(self._token)
            self._token = None
        if exc_type is not None:
            self.attributes["error"] = exc_type.__name__
        self.tracer._finish(self)

    def snapshot(self) -> dict:
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "parent_name": self.parent_name,
            "duration_s": self.duration_s,
            "attributes": dict(self.attributes),
        }


class Tracer:
    """Creates spans and keeps a bounded history of finished ones."""

    def __init__(self, registry=None, *, history: int = SPAN_HISTORY) -> None:
        self.registry = registry
        self.finished: deque = deque(maxlen=history)
        self._ids = itertools.count(1)

    def _next_id(self) -> int:
        return next(self._ids)

    def span(self, name: str, **attributes: Any) -> Span:
        """Open a span; the parent is whatever span is active in context."""
        return Span(self, name, _current_span.get(), attributes)

    def _finish(self, span: Span) -> None:
        self.finished.append(span)
        if self.registry is not None:
            self.registry.histogram(
                "span_seconds", {"span": span.name}
            ).observe(span.duration_s)

    def spans_named(self, name: str) -> "list[Span]":
        return [s for s in self.finished if s.name == name]

    def reset(self) -> None:
        self.finished.clear()


class NullSpan:
    """Inert span: enters, exits, records nothing."""

    __slots__ = ()
    name = ""
    span_id = 0
    parent_id = None
    parent_name = None
    duration_s = 0.0
    attributes: dict = {}

    def set_attribute(self, key: str, value: Any) -> None:
        pass

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass

    def snapshot(self) -> dict:
        return {"name": "", "span_id": 0, "parent_id": None,
                "parent_name": None, "duration_s": 0.0, "attributes": {}}


_NULL_SPAN = NullSpan()


class NullTracer:
    """Disabled tracing: one shared inert span, empty history."""

    registry = None
    finished: "deque" = deque(maxlen=0)

    def span(self, name: str, **attributes: Any) -> NullSpan:
        return _NULL_SPAN

    def spans_named(self, name: str) -> list:
        return []

    def reset(self) -> None:
        pass
