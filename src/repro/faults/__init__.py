"""``repro.faults`` — scriptable fault injection for chaos testing.

Nothing in the repo could *prove* degradation is graceful; this package
makes failure a first-class, reproducible input.  Production code is
compiled with cheap hooks (``faults.fire("ipmi.read")``) that are inert
no-ops until an injector is configured — via the ``CHRONUS_FAULTS``
environment variable (read at import, so sweep worker processes inherit
the same weather), the ``chronus faults`` CLI, or :func:`configure` in
tests.

See :mod:`repro.faults.injector` for the spec grammar and the list of
fault sites, :mod:`repro.faults.profiles` for named profiles, and
:mod:`repro.faults.scenarios` for the runnable chaos scenarios the CI
``chaos-smoke`` job gates on.
"""

from __future__ import annotations

import os
from typing import Optional

from repro.faults.injector import (
    SITES,
    FaultInjector,
    FaultRule,
    NullInjector,
    parse_spec,
)
from repro.faults.profiles import PROFILE_DESCRIPTIONS, PROFILES

__all__ = [
    "FaultInjector",
    "FaultRule",
    "NullInjector",
    "parse_spec",
    "SITES",
    "PROFILES",
    "PROFILE_DESCRIPTIONS",
    "configure",
    "active",
    "fire",
    "enabled",
    "reset",
]

ENV_VAR = "CHRONUS_FAULTS"

_injector: "FaultInjector | NullInjector" = NullInjector()


def configure(spec: Optional[str], *, seed: Optional[int] = None) -> None:
    """Install the active injector from a spec/profile string.

    ``None`` or an empty string disables injection.  ``seed`` overrides
    any ``seed=`` entry in the spec.
    """
    global _injector
    if not spec or not spec.strip():
        _injector = NullInjector()
        return
    rules, spec_seed = parse_spec(spec)
    if not rules:
        _injector = NullInjector()
        return
    _injector = FaultInjector(rules, seed=seed if seed is not None else spec_seed)


def active() -> "FaultInjector | NullInjector":
    return _injector


def enabled() -> bool:
    return _injector.enabled


def fire(site: str) -> bool:
    """The production hook: does the fault at ``site`` fire now?"""
    return _injector.fire(site)


def reset() -> None:
    """Disable injection (tests)."""
    global _injector
    _injector = NullInjector()


# sweep workers are separate processes: they re-read the env at import, so
# an exported CHRONUS_FAULTS applies the same weather across the pool
configure(os.environ.get(ENV_VAR))
