"""Canned chaos scenarios — reproducible failure drills for the repro.

Two drills exercise the two halves of the paper's pipeline under an
active fault profile:

* :func:`run_sweep_scenario` — a mini benchmark sweep (the measurement
  side).  The invariant under any profile: **every point is measured or
  explicitly quarantined**, never silently dropped, and the process
  never sees an unhandled exception.
* :func:`run_storm_scenario` — a burst of job submissions through the
  eco plugin (the scheduling side).  The invariant: **every job is
  submitted** (modified when Chronus answers, unchanged when it cannot),
  and once the circuit breaker opens a sick Chronus costs a cheap state
  check per job instead of a full timeout.

Both are pure in-process simulations driven by the seeded
:mod:`repro.faults` injector, so a scenario is exactly reproducible from
``(profile, seed)`` — that is what lets CI gate on their outcome (the
``chaos-smoke`` job) and what ``chronus faults run`` executes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro import faults, telemetry

__all__ = [
    "ScenarioResult",
    "metric_total",
    "run_sweep_scenario",
    "run_storm_scenario",
    "run_failover_scenario",
    "run_restd_scenario",
]


def metric_total(snapshot: dict, name: str) -> float:
    """Sum a counter/gauge across all label sets in a telemetry snapshot."""
    total = 0.0
    for kind in ("counters", "gauges"):
        for entry in snapshot.get(kind, []):
            if entry.get("name") == name:
                total += entry.get("value", 0.0)
    return total


@dataclass
class ScenarioResult:
    """Outcome of one chaos drill, ready for gating and rendering."""

    scenario: str
    profile: str
    total: int  # points in the sweep / jobs in the storm
    completed: int  # measured points / submitted jobs
    quarantined: int = 0
    skipped: int = 0
    modified_jobs: int = 0
    unhandled_error: Optional[str] = None
    faults_fired: dict = field(default_factory=dict)
    metrics: dict = field(default_factory=dict)

    @property
    def accounted(self) -> bool:
        """No point/job vanished: everything completed or was set aside."""
        return self.completed + self.quarantined + self.skipped == self.total

    @property
    def ok(self) -> bool:
        return self.unhandled_error is None and self.accounted

    def render(self) -> str:
        verdict = "OK" if self.ok else "FAILED"
        lines = [
            f"chaos {self.scenario} [{self.profile}]: {verdict} — "
            f"{self.completed}/{self.total} completed, "
            f"{self.quarantined} quarantined, {self.skipped} skipped"
        ]
        if self.scenario == "storm":
            lines[0] += f", {self.modified_jobs} modified"
        if self.unhandled_error:
            lines.append(f"  unhandled: {self.unhandled_error}")
        if self.faults_fired:
            fired = ", ".join(f"{k}×{v}" for k, v in sorted(self.faults_fired.items()))
            lines.append(f"  faults fired: {fired}")
        if self.metrics:
            shown = ", ".join(f"{k}={v:g}" for k, v in sorted(self.metrics.items()))
            lines.append(f"  metrics: {shown}")
        return "\n".join(lines)


_SWEEP_METRICS = (
    "ipmi_retries_total",
    "ipmi_degraded_samples_total",
    "bench_samples_missed_total",
    "sweep_point_retries_total",
    "sweep_points_quarantined_total",
    "sqlite_write_retries_total",
    "retry_attempts_total",
    "faults_injected_total",
)

_FAILOVER_METRICS = (
    "journal_appends_total",
    "journal_replayed_records_total",
    "journal_torn_tail_total",
    "ha_takeovers_total",
    "ha_fenced_writes_total",
    "ha_heartbeats_missed_total",
    "dbd_duplicates_dropped_total",
    "faults_injected_total",
)

_STORM_METRICS = (
    "eco_applied_total",
    "eco_fallback_total",
    "eco_short_circuits_total",
    "breaker_short_circuits_total",
    "deadline_exceeded_total",
    "retry_attempts_total",
    "faults_injected_total",
)


def _collect(names: tuple, baseline: Optional[dict] = None) -> dict:
    """Current metric totals, minus ``baseline`` when given.

    Scenarios report the *delta* their run produced so back-to-back drills
    in one process (the CI smoke script) do not bleed into each other.
    """
    snap = telemetry.snapshot()
    values = {name: metric_total(snap, name) for name in names}
    if baseline:
        values = {name: values[name] - baseline.get(name, 0.0) for name in values}
    return values


def run_sweep_scenario(
    profile: str, *, points: int = 8, seed: int = 0, duration_s: float = 60.0
) -> ScenarioResult:
    """Mini benchmark sweep under a fault profile.

    Runs ``points`` configurations serially through a
    :class:`~repro.core.application.sweep_executor.SweepExecutor` (serial
    keeps the injector's seeded draws in one process, making the drill
    exactly reproducible) against an in-memory repository.
    """
    from repro.core.application.sweep_executor import SweepExecutor
    from repro.core.domain.configuration import Configuration
    from repro.core.repositories.memory_repository import MemoryRepository
    from repro.core.runners.sweep_worker import build_sweep_points, run_sweep_point
    from repro.core.services.lscpu_info import LscpuSystemInfo
    from repro.slurm.cluster import SimCluster

    cluster = SimCluster(seed=seed)
    spec = cluster.node.spec
    step = max(1, spec.total_cores // max(1, points))
    configs = [
        Configuration(cores, 1, spec.frequencies_khz[-1])
        for cores in range(step, spec.total_cores + 1, step)
    ][:points]
    faults.configure(profile, seed=seed)
    baseline = _collect(_SWEEP_METRICS)
    result = ScenarioResult(
        scenario="sweep", profile=profile, total=len(configs), completed=0
    )
    try:
        executor = SweepExecutor(
            MemoryRepository(),
            LscpuSystemInfo(cluster.node),
            run_sweep_point,
            workers=1,
            sleep=lambda s: None,  # chaos drills must not wall-sleep
        )
        sweep_points = build_sweep_points(
            configs, base_seed=seed, duration_s=duration_s
        )
        rows = executor.run_sweep(sweep_points)
        report = executor.last_report
        result.completed = len(rows)
        result.quarantined = len(report.quarantined) if report else 0
        result.skipped = report.skipped if report else 0
    except Exception as exc:  # the gate: nothing may escape the executor
        result.unhandled_error = f"{type(exc).__name__}: {exc}"
    finally:
        result.faults_fired = faults.active().fired_counts()
        result.metrics = _collect(_SWEEP_METRICS, baseline)
        faults.reset()
    return result


def run_failover_scenario(
    profile: str,
    *,
    jobs: int = 60,
    seed: int = 0,
    kill: bool = True,
) -> ScenarioResult:
    """SIGKILL-the-leader drill under a fault profile (the HA side).

    Runs :func:`repro.slurm.ha.run_failover_drill`: a two-peer slurmctld
    control plane serving a submit storm, the leader killed mid-storm
    (and crash/torn-write faults from *profile* firing at journal
    appends).  Gates: every submission lands, **zero jobs lost, zero
    duplicated**, and the journal-fed accounting daemon ends bit-consistent
    with the controller's accounting.
    """
    import tempfile

    import repro.core  # noqa: F401  (resolves the repro.slurm import cycle)
    from repro.slurm.ha import run_failover_drill

    baseline = _collect(_FAILOVER_METRICS)
    result = ScenarioResult(
        scenario="failover", profile=profile, total=jobs, completed=0
    )
    with tempfile.TemporaryDirectory(prefix="chronus-statesave-") as path:
        try:
            report = run_failover_drill(
                jobs=jobs,
                statesave_path=path,
                seed=seed,
                kill_at_fraction=0.5 if kill else None,
                fault_profile=profile or None,
                snapshot_interval=max(10, jobs // 3),
            )
            result.completed = report.completed
            if report.failures:
                result.unhandled_error = "; ".join(report.failures)
            result.metrics["takeovers"] = float(report.takeovers)
            result.metrics["retries"] = float(report.retries)
            result.metrics["replayed_records"] = float(report.replayed_records)
            result.metrics["recovery_ms"] = report.recovery_wall_s * 1e3
            result.metrics["outage_sim_s"] = report.outage_sim_s
        except Exception as exc:  # the gate: the drill must never raise
            result.unhandled_error = f"{type(exc).__name__}: {exc}"
        finally:
            result.metrics.update(_collect(_FAILOVER_METRICS, baseline))
            faults.reset()
    return result


_RESTD_METRICS = (
    "restd_requests_total",
    "restd_connections_total",
    "restd_slowloris_total",
    "restd_bad_auth_total",
    "restd_unauthorized_total",
    "restd_dedup_hits_total",
    "faults_injected_total",
)


def run_restd_scenario(
    profile: str, *, requests: int = 40, seed: int = 0
) -> ScenarioResult:
    """REST gateway under hostile clients (the ``restd-pressure`` drills).

    Drives ``requests`` real HTTP calls — job submits, diag reads,
    paginated lists — against a live :class:`~repro.restd.server.RestdServer`
    backed by an HA drill control plane, with the *profile*'s
    ``restd.slowloris`` / ``restd.bad_auth`` faults firing in the daemon.
    Gates: **every request receives a well-formed answer** — success
    completed, an injected stall/auth outage answered with the standard
    error envelope (408 / 401, quarantined here), nothing left hanging
    and no unhandled exception in the daemon or the drill.
    """
    import http.client
    import json
    import tempfile

    import repro.core  # noqa: F401  (resolves the repro.slurm import cycle)
    from repro.api.auth import TokenAuthority
    from repro.restd.gateway import RestGateway
    from repro.restd.server import RestdServer
    from repro.slurm.ha import DRILL_BINARY, build_drill_plane

    result = ScenarioResult(
        scenario="restd", profile=profile, total=requests, completed=0
    )
    baseline = _collect(_RESTD_METRICS)
    with tempfile.TemporaryDirectory(prefix="chronus-restd-chaos-") as path:
        drill = build_drill_plane(path)
        authority = TokenAuthority("chaos-drill-secret")
        token = authority.issue("chaos", "admin")
        gateway = RestGateway(
            authority=authority, leader=drill.plane.leader, dbd=drill.dbd
        )
        server = RestdServer(gateway).start()
        faults.configure(profile, seed=seed)
        try:
            for i in range(requests):
                if i % 3 == 0:
                    method, target, body = (
                        "POST",
                        "/slurm/v1/jobs",
                        json.dumps(
                            {
                                "name": f"restd-chaos-{i:04d}",
                                "binary": DRILL_BINARY,
                                "time_limit_s": 120,
                            }
                        ),
                    )
                elif i % 3 == 1:
                    method, target, body = "GET", "/slurm/v1/diag", None
                else:
                    method, target, body = "GET", "/slurm/v1/jobs?limit=5", None
                conn = http.client.HTTPConnection(*server.address, timeout=10.0)
                try:
                    conn.request(
                        method,
                        target,
                        body=body,
                        headers={"Authorization": f"Bearer {token}"},
                    )
                    answer = conn.getresponse()
                    payload = json.loads(answer.read())
                except (OSError, http.client.HTTPException):
                    # the injected stall made the daemon answer 408 and
                    # hang up while we were still writing the request —
                    # the abort races our send, exactly like a real
                    # mid-upload timeout
                    result.quarantined += 1
                    continue
                finally:
                    conn.close()
                if 200 <= answer.status < 300:
                    result.completed += 1
                elif answer.status in (401, 408) and "error" in payload:
                    # an injected fault, answered with the envelope
                    result.quarantined += 1
                else:
                    result.unhandled_error = (
                        f"request {i} ({method} {target}) answered "
                        f"{answer.status}: {payload}"
                    )
                    break
                with gateway.lock:
                    drill.sim.run(until=drill.sim.now + 0.5)
        except Exception as exc:  # the gate: the drill must never raise
            result.unhandled_error = f"{type(exc).__name__}: {exc}"
        finally:
            result.faults_fired = faults.active().fired_counts()
            faults.reset()
            server.stop()
            result.metrics = _collect(_RESTD_METRICS, baseline)
    return result


def run_storm_scenario(
    profile: str,
    *,
    jobs: int = 50,
    seed: int = 0,
    failure_threshold: int = 3,
) -> ScenarioResult:
    """Submit storm through the eco plugin under a fault profile.

    ``jobs`` opted-in submissions hit a plugin whose Chronus provider is
    healthy — the *profile* decides whether predictions time out or come
    back as garbage.  Gates: every job submits successfully, jobs the
    plugin cannot optimize go through *unchanged*, and under a dead
    Chronus the breaker limits provider calls to roughly the failure
    threshold (plus half-open probes) instead of one timeout per job.
    """
    import json

    from repro.resilience import CircuitBreaker
    from repro.slurm.cluster import SimCluster
    from repro.slurm.job import JobDescriptor
    from repro.slurm.plugins.base import SLURM_SUCCESS
    from repro.slurm.plugins.eco import JobSubmitEco, PluginState

    cluster = SimCluster(seed=seed)
    spec = cluster.node.spec

    class _Provider:
        calls = 0

        def slurm_config(self, system_id, binary_hash, min_perf=None):
            _Provider.calls += 1
            return json.dumps(
                {
                    "cores": spec.total_cores,
                    "threads_per_core": 1,
                    "frequency": spec.frequencies_khz[1],
                }
            )

    faults.configure(profile, seed=seed)
    baseline = _collect(_STORM_METRICS)
    breaker = CircuitBreaker(
        "eco_predict",
        failure_threshold=failure_threshold,
        recovery_timeout_s=3600.0,  # no recovery inside the storm
    )
    plugin = JobSubmitEco(
        cluster.node, _Provider(), PluginState("user"), breaker=breaker
    )
    result = ScenarioResult(scenario="storm", profile=profile, total=jobs, completed=0)
    try:
        for i in range(jobs):
            desc = JobDescriptor(
                name=f"storm-{i}", comment="chronus", binary="/opt/hpcg/xhpcg",
                num_tasks=4,
            )
            rc = plugin.job_submit(desc, submit_uid=1000 + i)
            if rc != SLURM_SUCCESS:
                result.unhandled_error = f"job {i} rejected with rc={rc}"
                break
            result.completed += 1
            if desc.num_tasks != 4:
                result.modified_jobs += 1
    except Exception as exc:  # the gate: the plugin must never raise
        result.unhandled_error = f"{type(exc).__name__}: {exc}"
    finally:
        result.faults_fired = faults.active().fired_counts()
        result.metrics = _collect(_STORM_METRICS, baseline)
        result.metrics["provider_calls"] = float(_Provider.calls)
        faults.reset()
    return result
