"""Deterministic fault injection for chaos testing.

A :class:`FaultInjector` holds a set of *rules*, one per fault **site** —
a named hook compiled into the production code (``ipmi.read``,
``predict.timeout``, ...).  Each rule fires with a probability drawn from
the injector's own seeded RNG, optionally capped at a total number of
firings, so a chaos run is exactly reproducible from ``(spec, seed)``.

The process holds one *active* injector; production hooks call the
module-level :func:`repro.faults.fire` which is a single attribute lookup
plus method call, and with no injector configured (the default
:class:`NullInjector`) the hook costs one no-op method call and consumes
no randomness — faults disabled means bit-identical behaviour.

Spec grammar (also accepted via ``CHRONUS_FAULTS``)::

    spec    := entry ("," entry)*
    entry   := SITE "=" PROB [":" LIMIT] | "seed" "=" INT | PROFILE
    example := "ipmi.read=0.2,predict.timeout=1:3,seed=42"

A bare profile name (see :mod:`repro.faults.profiles`) expands to its
spec string.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass
from typing import Mapping, Optional

from repro import telemetry

__all__ = ["FaultRule", "FaultInjector", "NullInjector", "parse_spec", "SITES"]


def _spec_error(message: str) -> Exception:
    # lazy: repro.faults is imported by repro.hardware.ipmi, which sits
    # below repro.core in the import graph — a module-level import of the
    # domain errors would be circular
    from repro.core.domain.errors import FaultSpecError

    return FaultSpecError(message)

#: every fault site the codebase exposes, with what firing it does
SITES: Mapping[str, str] = {
    "ipmi.read": "IPMI sensor read raises a transient IpmiReadError",
    "ipmi.nan": "IPMI power sensor returns NaN",
    "ipmi.spike": "IPMI power sensor returns a 100x spike",
    "predict.timeout": "chronus predict (slurm-config) raises PredictTimeoutError",
    "predict.garbage": "chronus predict returns a garbage JSON reply",
    "serve.shed": "prediction server admission control sheds the request (SHED)",
    "serve.slow": "prediction server stalls one batch past the plugin budget",
    "sqlite.busy": "repository write raises sqlite3.OperationalError (locked)",
    "sweep.crash": "sweep worker raises mid-point (simulated crash)",
    "ctld.crash": "slurmctld dies right after a durable journal append (ack lost)",
    "journal.torn_write": "slurmctld dies mid-append, tearing the journal tail",
    "peer.partition": "an HA peer misses one heartbeat (cut off from state-save)",
    "dep.release_crash": "slurmctld dies right after journaling a dependency release",
    "reschedule.storm": "slurmctld dies mid-requeue, right after the reschedule record",
    "restd.slowloris": "a restd client stalls mid-request (read timed out, 408)",
    "restd.bad_auth": "restd token verification fails closed (401 on a valid token)",
}


@dataclass
class FaultRule:
    """One site's firing behaviour."""

    site: str
    probability: float
    limit: Optional[int] = None
    fired: int = 0

    def __post_init__(self) -> None:
        if self.site not in SITES:
            raise _spec_error(
                f"unknown fault site {self.site!r}; known: {sorted(SITES)}"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise _spec_error(
                f"fault probability must be in [0, 1], got {self.probability}"
            )
        if self.limit is not None and self.limit < 1:
            raise _spec_error(f"fault limit must be >= 1, got {self.limit}")


def parse_spec(spec: str) -> "tuple[list[FaultRule], int]":
    """Parse a spec string into ``(rules, seed)``.

    Profile names are resolved through :mod:`repro.faults.profiles`
    (imported lazily to avoid a cycle).
    """
    from repro.faults.profiles import PROFILES

    rules: list[FaultRule] = []
    seed = 0
    for raw_entry in spec.split(","):
        entry = raw_entry.strip()
        if not entry:
            continue
        if entry in PROFILES:
            profile_rules, _ = parse_spec(PROFILES[entry])
            rules.extend(profile_rules)
            continue
        if "=" not in entry:
            raise _spec_error(
                f"cannot parse fault entry {entry!r}: expected SITE=PROB[:LIMIT], "
                f"seed=INT, or a profile name from {sorted(PROFILES)}"
            )
        key, _, value = entry.partition("=")
        key = key.strip()
        value = value.strip()
        if key == "seed":
            try:
                seed = int(value)
            except ValueError:
                raise _spec_error(f"seed must be an integer, got {value!r}") from None
            continue
        limit: Optional[int] = None
        prob_part, _, limit_part = value.partition(":")
        if limit_part:
            try:
                limit = int(limit_part)
            except ValueError:
                raise _spec_error(
                    f"fault limit must be an integer, got {limit_part!r}"
                ) from None
        try:
            probability = float(prob_part)
        except ValueError:
            raise _spec_error(
                f"fault probability must be a number, got {prob_part!r}"
            ) from None
        rules.append(FaultRule(site=key, probability=probability, limit=limit))
    return rules, seed


class FaultInjector:
    """Active injector: seeded, thread-safe, telemetry-emitting."""

    enabled = True

    def __init__(self, rules: "list[FaultRule]", seed: int = 0) -> None:
        self._rules = {rule.site: rule for rule in rules}
        self.seed = seed
        self._rng = random.Random(seed)
        self._lock = threading.Lock()

    @classmethod
    def from_spec(cls, spec: str) -> "FaultInjector":
        rules, seed = parse_spec(spec)
        return cls(rules, seed=seed)

    # ------------------------------------------------------------------
    def fire(self, site: str) -> bool:
        """Whether the fault at ``site`` fires now.

        Draws from the injector RNG only when a rule exists for the site;
        a site with no rule is always quiet and consumes no randomness.
        """
        rule = self._rules.get(site)
        if rule is None:
            return False
        with self._lock:
            if rule.limit is not None and rule.fired >= rule.limit:
                return False
            if rule.probability < 1.0 and self._rng.random() >= rule.probability:
                return False
            rule.fired += 1
        telemetry.counter("faults_injected_total", {"site": site}).inc()
        return True

    def spec(self) -> str:
        """Round-trippable spec string for this injector."""
        parts = []
        for rule in self._rules.values():
            entry = f"{rule.site}={rule.probability:g}"
            if rule.limit is not None:
                entry += f":{rule.limit}"
            parts.append(entry)
        parts.append(f"seed={self.seed}")
        return ",".join(parts)

    def fired_counts(self) -> dict[str, int]:
        with self._lock:
            return {r.site: r.fired for r in self._rules.values() if r.fired}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"FaultInjector({self.spec()!r})"


class NullInjector:
    """No faults configured: every hook is a cheap constant ``False``."""

    enabled = False
    seed = 0

    def fire(self, site: str) -> bool:
        return False

    def spec(self) -> str:
        return ""

    def fired_counts(self) -> dict[str, int]:
        return {}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "NullInjector()"
