"""Named fault profiles — the chaos suite's standard weather conditions.

Each profile is a spec string (see :mod:`repro.faults.injector`); pass the
name to ``chronus faults run --profile`` or put it in ``CHRONUS_FAULTS``.
"""

from __future__ import annotations

__all__ = ["PROFILES", "PROFILE_DESCRIPTIONS"]

PROFILES = {
    # the acceptance profile: 20% transient BMC read failures
    "flaky-ipmi": "ipmi.read=0.2",
    # corrupted sensor values: NaNs and 100x spikes
    "ipmi-noise": "ipmi.nan=0.1,ipmi.spike=0.1",
    # Chronus predict never answers inside the window
    "chronus-timeout": "predict.timeout=1",
    # Chronus answers with truncated/garbage JSON
    "chronus-garbage": "predict.garbage=1",
    # the database is locked by a concurrent writer for a few attempts
    "sqlite-busy": "sqlite.busy=1:2",
    # sweep workers crash on ~30% of points
    "worker-crash": "sweep.crash=0.3",
    # serving daemon under pressure: sheds some requests, stalls some batches
    "serve-pressure": "serve.shed=0.2,serve.slow=0.1",
    # HA drill: the leader crashes at one journal append (once post-append,
    # once tearing the write) and peers occasionally miss a heartbeat
    "ctld-failover": "ctld.crash=0.02:1,journal.torn_write=0.02:1,peer.partition=0.05",
    # REST gateway under hostile clients: stalled reads + an auth outage
    "restd-pressure": "restd.slowloris=0.15,restd.bad_auth=0.15",
    # workflow drill: the controller dies at a dependency release and at a
    # requeue (both post-durable), and peers occasionally miss heartbeats
    "workflow-chaos": (
        "dep.release_crash=0.05:1,reschedule.storm=0.3:1,peer.partition=0.05"
    ),
}

PROFILE_DESCRIPTIONS = {
    "flaky-ipmi": "20% of IPMI sensor reads fail transiently",
    "ipmi-noise": "10% NaN + 10% spiked power readings",
    "chronus-timeout": "every chronus predict call times out",
    "chronus-garbage": "every chronus predict reply is garbage JSON",
    "sqlite-busy": "first two repository writes hit a locked database",
    "worker-crash": "30% of sweep points crash their worker",
    "serve-pressure": "20% of predicts shed + 10% of batches stalled",
    "ctld-failover": "leader crash + torn journal write + flaky peer heartbeats",
    "restd-pressure": "15% of restd reads stall (408) + 15% auth verifications fail",
    "workflow-chaos": (
        "controller crash at a dep release + at a requeue + flaky heartbeats"
    ),
}
