#!/usr/bin/env python3
"""The paper's full section-5 evaluation campaign, regenerated.

Runs the 138-configuration sweep (Tables 4-6 / Figure 14), the two full
runs behind Figure 15 / Table 2, the Equation-1 measurement validation and
the Table-3 related-work comparison, printing each artifact next to the
paper's reported numbers.

Run:  python examples/full_paper_campaign.py          (~30 s)
"""

import numpy as np

from repro.analysis.comparison import build_table3
from repro.analysis.metrics import percentage_difference
from repro.analysis.tables import TextTable
from repro.core.application.benchmark_service import BenchmarkService
from repro.core.domain.configuration import Configuration
from repro.core.repositories.memory_repository import MemoryRepository
from repro.core.runners.hpcg_runner import HpcgRunner
from repro.core.services.ipmi_service import IpmiSystemService
from repro.core.services.lscpu_info import LscpuSystemInfo
from repro.hardware.node import ConstantWorkload
from repro.hpcg import reference
from repro.slurm.cluster import HPCG_BINARY, SimCluster


def make_service(cluster: SimCluster) -> BenchmarkService:
    return BenchmarkService(
        MemoryRepository(),
        HpcgRunner(cluster, HPCG_BINARY),
        IpmiSystemService(cluster.ipmi, clock=lambda: cluster.sim.now),
        LscpuSystemInfo(cluster.node),
        sample_interval_s=3.0,
    )


def section_52_sweep() -> list:
    print("== Section 5.2: 138-configuration sweep (20-minute jobs) ==")
    cluster = SimCluster(seed=33, hpcg_duration_s=1200.0)
    service = make_service(cluster)
    configs = [
        Configuration(p.cores, 2 if p.hyperthread else 1, p.freq_khz)
        for p in reference.GFLOPS_PER_WATT
    ]
    rows = service.run_benchmarks(configs, clock=lambda: cluster.sim.now)

    table = TextTable(
        ["Cores", "GHz", "HT", "GFLOPS/W (sim)", "GFLOPS/W (paper)"],
        title="\nTable 1 — top 13 configurations",
    )
    for r in sorted(rows, key=lambda r: -r.gflops_per_watt)[:13]:
        cfg = r.configuration
        paper = reference.lookup(cfg.cores, cfg.frequency_ghz, cfg.hyperthread)
        table.add_row(cfg.cores, f"{cfg.frequency_ghz:.1f}", cfg.hyperthread,
                      f"{r.gflops_per_watt:.4f}", f"{paper.gflops_per_watt:.4f}")
    print(table.render())
    return rows


def section_522_full_runs() -> None:
    print("\n== Section 5.2.2: full runs, best vs standard (Table 2) ==")
    cluster = SimCluster(seed=21)
    service = make_service(cluster)
    std = service.run_one(Configuration(32, 1, 2_500_000), clock=lambda: cluster.sim.now)
    best = service.run_one(Configuration(32, 1, 2_200_000), clock=lambda: cluster.sim.now)

    table = TextTable(
        ["Name", "Avg Sys W", "Avg Cpu W", "Sys KJ", "Cpu KJ", "Temp C", "Runtime s"],
        title="\nTable 2 — measured (sim) with paper values in parentheses",
    )
    for name, run, ref in (("Standard", std, reference.TABLE2["standard"]),
                           ("Best", best, reference.TABLE2["best"])):
        table.add_row(
            name,
            f"{run.average_system_w():.1f} ({ref.avg_sys_w})",
            f"{run.average_cpu_w():.1f} ({ref.avg_cpu_w})",
            f"{run.system_energy_j() / 1000:.1f} ({ref.sys_kj})",
            f"{run.cpu_energy_j() / 1000:.1f} ({ref.cpu_kj})",
            f"{run.average_cpu_temp_c():.1f} ({ref.avg_temp_c})",
            f"{run.runtime_s:.0f} ({ref.runtime_s})",
        )
    print(table.render())

    sys_red = (1 - best.system_energy_j() / std.system_energy_j()) * 100
    cpu_red = (1 - best.cpu_energy_j() / std.cpu_energy_j()) * 100
    print(f"\nsystem energy reduction: {sys_red:.1f}% (paper: 11%)")
    print(f"cpu    energy reduction: {cpu_red:.1f}% (paper: 18%)")

    table3 = TextTable(["Plugin", "CPU Red. (%)", "System Red. (%)"],
                       title="\nTable 3 — comparison with related work")
    for row in build_table3(cpu_red, sys_red):
        table3.add_row(
            row.plugin,
            "NaN" if row.cpu_reduction_pct is None else f"{row.cpu_reduction_pct:.1f}",
            f"{row.system_reduction_pct:.2f}",
        )
    print(table3.render())

    # Figure 15 character: variability of the steady window
    def q(run):
        return np.array([s.system_w for s in run.samples])[len(run.samples) // 4:]
    print(f"\nFigure 15 — steady-window system-power std-dev: "
          f"standard {q(std).std():.2f} W vs best {q(best).std():.2f} W "
          f"(the paper's 'more stable' observation)")


def section_51_power_validation() -> None:
    print("\n== Section 5.1: power measurement validation (Equation 1) ==")
    cluster = SimCluster(seed=4)
    cluster.node.start_workload(
        ConstantWorkload(cores=32, compute_fraction=0.05, bandwidth_gbs=37.0),
        freq_min_khz=2_500_000,
    )
    cluster.sim.call_at(900.0, lambda: None)
    cluster.sim.run()
    ipmi = cluster.ipmi.total_power_watts()
    psu = cluster.wattmeter.read()
    print(f"IPMI Total_Power : {ipmi:.0f} W   (paper: 258 W)")
    print(f"Wattmeter PSUs   : {psu.psu1_w:.1f} + {psu.psu2_w:.1f} = "
          f"{psu.total_w:.1f} W (paper: 129.7 + 143.7 = 273.4 W)")
    print(f"Percentage diff  : {percentage_difference(ipmi, psu.total_w):.2f}% "
          f"(paper: 5.96%)")


def main() -> None:
    section_51_power_validation()
    section_52_sweep()
    section_522_full_runs()


if __name__ == "__main__":
    main()
