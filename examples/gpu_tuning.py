#!/usr/bin/env python3
"""GPU frequency tuning (paper section 6.2.2), working.

Runs the full application-clock sweep on the simulated A100 for kernels
across the arithmetic-intensity spectrum and shows where the cited
"28% energy for 1% performance loss" lives: in memory-bound kernels with
SM-clock headroom.

Run:  python examples/gpu_tuning.py
"""

from repro.analysis.tables import TextTable
from repro.gpu import (
    DcgmTelemetry,
    GpuFrequencyTuner,
    GpuKernel,
    SimulatedGpu,
)
from repro.simkernel.random import RandomStreams

KERNELS = [
    GpuKernel("spmv (strongly memory-bound)", 1.0, 0.45, 1e6, smoothmin_n=16.0),
    GpuKernel("stencil (memory-bound)", 1.0, 0.60, 1e6, smoothmin_n=16.0),
    GpuKernel("fft (balanced)", 1.0, 1.00, 1e6, smoothmin_n=16.0),
    GpuKernel("gemm (compute-bound)", 1.0, 5.00, 1e6, smoothmin_n=16.0),
]


def main() -> None:
    gpu = SimulatedGpu(streams=RandomStreams(0), noise_sigma=0.0)
    telemetry = DcgmTelemetry(gpu)
    print(f"device: {gpu.spec.name}")
    print(f"supported SM clocks : {gpu.spec.sm_clocks_mhz[0]}-{gpu.spec.sm_clocks_mhz[-1]} MHz")
    print(f"supported mem clocks: {gpu.spec.mem_clocks_mhz}")
    print(f"DCGM power (idle)   : {telemetry.field('DCGM_FI_DEV_POWER_USAGE'):.0f} W\n")

    tuner = GpuFrequencyTuner(gpu)
    table = TextTable(
        ["Kernel", "Tuned SM/mem (MHz)", "Energy saving", "Perf loss"],
        title="Application-clock tuning under a 1% performance budget",
    )
    for kernel in KERNELS:
        result = tuner.tune(kernel, max_perf_loss=0.01)
        table.add_row(
            kernel.name,
            f"{result.best.sm_mhz}/{result.best.mem_mhz}",
            f"{result.energy_saving_fraction * 100:.1f}%",
            f"{result.perf_loss_fraction * 100:.2f}%",
        )
    print(table.render())
    print("\nPaper 6.2.2 cites 28% energy for 1% loss (Abe et al. 2012) —")
    print("the memory-bound rows reproduce that; compute-bound kernels have")
    print("no headroom, exactly why per-application models matter on GPUs too.")


if __name__ == "__main__":
    main()
