#!/usr/bin/env python3
"""Multi-node clusters (paper section 6.2.3), working.

Builds a 4-node cluster, runs single-node and spanning jobs, shows the
scheduler spreading and backfilling across nodes, and samples power
through the cluster-wide power API — the "two different implementations
for the same integration interface" of the paper's section 3.2.

Run:  python examples/multi_node_cluster.py
"""

from repro.core.runners.hpcg_runner import parse_hpcg_rating
from repro.core.services.cluster_power import ClusterPowerService
from repro.slurm.batch_script import build_script
from repro.slurm.cluster import HPCG_BINARY, SimCluster
from repro.slurm.commands import parse_sbatch_output


def spanning_script(nodes: int, freq: int) -> str:
    return build_script(
        32 * nodes, freq, 1, HPCG_BINARY, job_name=f"hpcg-{nodes}n", nodes=nodes
    )


def main() -> None:
    cluster = SimCluster(seed=8, n_nodes=4)
    power_api = ClusterPowerService(cluster.ipmis, clock=lambda: cluster.sim.now)

    print("== cluster ==")
    print(cluster.commands.sinfo())

    # fill two nodes with single-node jobs, then submit a 2-node job
    parse_sbatch_output(cluster.commands.sbatch(
        build_script(32, 2_200_000, 1, HPCG_BINARY, job_name="single-a")))
    parse_sbatch_output(cluster.commands.sbatch(
        build_script(32, 2_200_000, 1, HPCG_BINARY, job_name="single-b")))
    j3 = parse_sbatch_output(cluster.commands.sbatch(spanning_script(2, 2_200_000)))

    print("== queue with a 2-node job running beside two 1-node jobs ==")
    print(cluster.commands.squeue())

    sample = power_api.sample()
    print(f"cluster power API: {sample.system_w:.0f} W total, "
          f"{sample.cpu_w:.0f} W CPU, hottest package {sample.cpu_temp_c:.1f} C")

    job = cluster.ctld.wait_for_job(j3)
    print(f"\n2-node job finished: {parse_hpcg_rating(job.stdout):.2f} GFLOP/s "
          f"across {len(job.node_list)} nodes "
          f"({job.consumed_energy_j / 1000:.0f} kJ for the whole allocation)")
    print(cluster.commands.sacct())


if __name__ == "__main__":
    main()
