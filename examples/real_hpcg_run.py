#!/usr/bin/env python3
"""Run the real mini-HPCG: genuine sparse numerics, not the simulator.

Generates the 27-point-stencil problem, builds the multigrid hierarchy,
solves with preconditioned CG and prints an HPCG-style report with the
exact flop accounting, for a few problem sizes.

Run:  python examples/real_hpcg_run.py [nx ...]
"""

import sys

import numpy as np

from repro.analysis.tables import TextTable
from repro.hpcg.benchmark import HpcgBenchmark
from repro.hpcg.cg import pcg


def main() -> None:
    sizes = [int(a) for a in sys.argv[1:]] or [16, 24, 32]

    table = TextTable(
        ["nx^3", "rows", "nnz", "iters", "GFLOP/s", "flops", "rel.residual", "exact?"],
        title="mini-HPCG — multigrid-preconditioned CG (from scratch)",
    )
    for nx in sizes:
        bench = HpcgBenchmark(nx, levels=3 if nx >= 16 else 2)
        rating = bench.run(tol=1e-8)
        problem = bench.problem
        result = pcg(
            problem.matrix, problem.b,
            preconditioner=bench.preconditioner.apply, tol=1e-8,
        )
        exact = bool(np.allclose(result.x, problem.x_exact, atol=1e-6))
        table.add_row(
            nx, problem.nrows, problem.nnz, rating.iterations,
            f"{rating.gflops:.4f}", rating.total_flops,
            f"{rating.final_relative_residual:.2e}", exact,
        )
    print(table.render())

    # the flop breakdown of the last solve, HPCG-report style
    print("\nFlop breakdown of the last solve:")
    for kernel, flops in sorted(result.flops.by_kernel.items()):
        share = flops / result.flops.total * 100
        print(f"  {kernel:<8} {flops:>14,}  ({share:4.1f}%)")
    print("\n(SymGS dominating is the HPCG signature — it is why the "
          "benchmark is memory-bound, the fact the whole paper leans on.)")


if __name__ == "__main__":
    main()
