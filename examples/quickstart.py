#!/usr/bin/env python3
"""Quickstart: the eco plugin end to end in ~30 seconds.

Walks the paper's Figure-4 sequence on a simulated single-node cluster:

1. benchmark a handful of configurations (time-bounded HPCG jobs with
   3-second IPMI sampling),
2. build and pre-load a prediction model,
3. submit a job with ``--comment "chronus"`` and watch ``job_submit_eco``
   rewrite it to the energy-efficient configuration,
4. compare the energy bill against an identical non-opted-in job.

Run:  python examples/quickstart.py
"""

import tempfile

from repro.core.domain.configuration import Configuration
from repro.core.factory import ChronusApp
from repro.slurm.batch_script import build_script
from repro.slurm.cluster import HPCG_BINARY, SimCluster
from repro.slurm.commands import parse_sbatch_output
from repro.slurm.config import SlurmConfig


def main() -> None:
    workspace = tempfile.mkdtemp(prefix="chronus-quickstart-")
    print(f"workspace: {workspace}\n")

    # A cluster with the eco plugin enabled in slurm.conf (paper 3.4.1) and
    # 5-minute benchmark jobs so the demo is quick.
    cluster = SimCluster(
        seed=7,
        config=SlurmConfig.parse("JobSubmitPlugins=eco\n"),
        hpcg_duration_s=300.0,
    )
    app = ChronusApp(cluster, workspace, log=print)

    # -- 1. benchmark ------------------------------------------------------
    print("== chronus benchmark ==")
    sweep = [
        Configuration(cores, tpc, freq)
        for cores in (16, 32)
        for freq in (1_500_000, 2_200_000, 2_500_000)
        for tpc in (1, 2)
    ]
    app.benchmark_service.run_benchmarks(sweep, clock=app.clock)

    # -- 2. init-model + load-model ----------------------------------------
    print("\n== chronus init-model / load-model ==")
    meta = app.init_model_service.run("brute-force", 1, created_at=app.clock())
    app.load_model_service.run(meta.model_id)
    app.enable_eco_plugin()

    # -- 3. user submits with --comment "chronus" ---------------------------
    cluster.hpcg_duration_s = None  # user jobs run the full workload
    print("\n== user sbatch (opted in) ==")
    eco_script = build_script(
        16, 2_500_000, 2, HPCG_BINARY, comment="chronus", job_name="eco-job"
    )
    eco_id = parse_sbatch_output(cluster.commands.sbatch(eco_script))
    print(cluster.commands.scontrol_show_job(eco_id))
    eco_job = cluster.ctld.wait_for_job(eco_id)

    print("== user sbatch (standard) ==")
    std_script = build_script(32, 2_500_000, 1, HPCG_BINARY, job_name="std-job")
    std_job = cluster.ctld.wait_for_job(
        parse_sbatch_output(cluster.commands.sbatch(std_script))
    )

    # -- 4. the energy bill --------------------------------------------------
    print(cluster.commands.sacct())
    saving = 1.0 - eco_job.consumed_energy_j / std_job.consumed_energy_j
    slowdown = eco_job.elapsed_s / std_job.elapsed_s - 1.0
    print(f"eco job:      {eco_job.consumed_energy_j / 1000:.1f} kJ "
          f"in {eco_job.elapsed_s:.0f} s")
    print(f"standard job: {std_job.consumed_energy_j / 1000:.1f} kJ "
          f"in {std_job.elapsed_s:.0f} s")
    print(f"\n=> {saving * 100:.1f}% less energy for {slowdown * 100:.1f}% "
          f"more runtime (paper: 11% / 2%)")


if __name__ == "__main__":
    main()
