#!/usr/bin/env python3
"""Green scheduling: the paper's future work (6.2.1 + 6.2.4), working.

The introduction motivates the eco plugin with Vestas running HPC "only
... when there is cheap or green energy in the market" and Lancium
aligning jobs with renewable availability.  This example combines:

* Chronus benchmark data  -> how fast/hungry each configuration is,
* a deadline              -> which configurations are even admissible,
* a spot-price trace      -> when to run for money,
* a carbon trace          -> when to run for CO2,

and prints the resulting schedule decisions.

Run:  python examples/green_scheduling.py
"""

from repro.analysis.tables import TextTable
from repro.core.application.benchmark_service import BenchmarkService
from repro.core.domain.configuration import Configuration
from repro.core.repositories.memory_repository import MemoryRepository
from repro.core.runners.hpcg_runner import HpcgRunner
from repro.core.services.ipmi_service import IpmiSystemService
from repro.core.services.lscpu_info import LscpuSystemInfo
from repro.energymarket.scheduling import DeadlineConfigSelector, TimeShiftScheduler
from repro.energymarket.traces import HOUR, CarbonTrace, PriceTrace
from repro.hpcg.performance_model import PAPER_TOTAL_FLOPS
from repro.slurm.cluster import HPCG_BINARY, SimCluster


def benchmark_configs() -> list:
    cluster = SimCluster(seed=13, hpcg_duration_s=600.0)
    service = BenchmarkService(
        MemoryRepository(),
        HpcgRunner(cluster, HPCG_BINARY),
        IpmiSystemService(cluster.ipmi, clock=lambda: cluster.sim.now),
        LscpuSystemInfo(cluster.node),
    )
    sweep = [
        Configuration(cores, tpc, freq)
        for cores in (16, 24, 32)
        for freq in (1_500_000, 2_200_000, 2_500_000)
        for tpc in (1,)
    ]
    return service.run_benchmarks(sweep, clock=lambda: cluster.sim.now)


def main() -> None:
    print("benchmarking 9 configurations...")
    rows = benchmark_configs()
    by_cfg = {r.configuration: r for r in rows}

    # -- deadline-aware configuration choice (6.2.1) -------------------------
    selector = DeadlineConfigSelector(rows, PAPER_TOTAL_FLOPS, safety_margin=0.05)
    table = TextTable(
        ["Deadline", "Configuration", "GFLOPS/W", "Runtime (min)"],
        title='\n"Simulation done by Monday morning" — deadline-aware choice',
    )
    for label, deadline_s in (("20 min", 20 * 60), ("30 min", 30 * 60), ("4 h", 4 * 3600)):
        cfg = selector.select(deadline_s)
        row = by_cfg[cfg]
        table.add_row(label, cfg.to_json(), f"{row.gflops_per_watt:.4f}",
                      f"{selector.predicted_runtime_s(row) / 60:.1f}")
    print(table.render())

    # -- time shifting on price and carbon (6.2.4) ---------------------------
    best = max(rows, key=lambda r: r.gflops_per_watt)
    duration = PAPER_TOTAL_FLOPS / (best.gflops * 1e9)
    power = best.avg_system_w

    price_trace = PriceTrace.synthetic(days=7, seed=2026)
    carbon_trace = CarbonTrace.synthetic(days=7, seed=2026)

    table = TextTable(
        ["Objective", "Start (h)", "Cost", "Run-now cost", "Saving"],
        title="\nTime-shifted scheduling over a 7-day market window (48 h deadline)",
    )
    price = TimeShiftScheduler(price_trace).best_start(
        duration, power, deadline_s=48 * HOUR
    )
    table.add_row("cheapest (EUR)", f"{price.start_s / HOUR:.0f}",
                  f"{price.cost:.4f}", f"{price.baseline_cost:.4f}",
                  f"{price.savings_fraction * 100:.1f}%")
    carbon = TimeShiftScheduler(carbon_trace, unit_energy_wh=1e3).best_start(
        duration, power, deadline_s=48 * HOUR
    )
    table.add_row("greenest (gCO2)", f"{carbon.start_s / HOUR:.0f}",
                  f"{carbon.cost:.1f}", f"{carbon.baseline_cost:.1f}",
                  f"{carbon.savings_fraction * 100:.1f}%")
    print(table.render())

    print("\nCombined: run the efficiency-optimal configuration "
          f"({best.configuration.to_json()}) at the cheap/green window — "
          "configuration tuning and market timing stack.")


if __name__ == "__main__":
    main()
