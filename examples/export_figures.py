#!/usr/bin/env python3
"""Export the paper's figure data as CSV artifacts.

Runs the section-5 campaigns and writes:

* ``artifacts/fig14_surface.csv``  — GFLOPS/W per configuration (Fig. 14)
* ``artifacts/fig15_timeseries.csv`` — power/temp samples (Fig. 15)
* ``artifacts/tables456_ranking.csv`` — the full efficiency ranking

Run:  python examples/export_figures.py [output_dir]
"""

import sys

from repro.analysis.export import (
    export_ranking_csv,
    export_surface_csv,
    export_timeseries_csv,
)
from repro.core.application.benchmark_service import BenchmarkService
from repro.core.domain.configuration import Configuration
from repro.core.repositories.memory_repository import MemoryRepository
from repro.core.runners.hpcg_runner import HpcgRunner
from repro.core.services.ipmi_service import IpmiSystemService
from repro.core.services.lscpu_info import LscpuSystemInfo
from repro.hpcg import reference
from repro.slurm.cluster import HPCG_BINARY, SimCluster


def make_service(cluster):
    return BenchmarkService(
        MemoryRepository(),
        HpcgRunner(cluster, HPCG_BINARY),
        IpmiSystemService(cluster.ipmi, clock=lambda: cluster.sim.now),
        LscpuSystemInfo(cluster.node),
    )


def main() -> None:
    out = sys.argv[1] if len(sys.argv) > 1 else "artifacts"

    print("running the 138-configuration sweep...")
    sweep_cluster = SimCluster(seed=33, hpcg_duration_s=1200.0)
    sweep = make_service(sweep_cluster).run_benchmarks(
        [Configuration(p.cores, 2 if p.hyperthread else 1, p.freq_khz)
         for p in reference.GFLOPS_PER_WATT],
        clock=lambda: sweep_cluster.sim.now,
    )
    print("running the two full runs...")
    run_cluster = SimCluster(seed=21)
    service = make_service(run_cluster)
    std = service.run_one(Configuration(32, 1, 2_500_000),
                          clock=lambda: run_cluster.sim.now)
    best = service.run_one(Configuration(32, 1, 2_200_000),
                           clock=lambda: run_cluster.sim.now)

    paths = [
        export_surface_csv(sweep, f"{out}/fig14_surface.csv"),
        export_timeseries_csv({"standard": std, "best": best},
                              f"{out}/fig15_timeseries.csv"),
        export_ranking_csv(sweep, f"{out}/tables456_ranking.csv"),
    ]
    for path in paths:
        print(f"wrote {path}")


if __name__ == "__main__":
    main()
