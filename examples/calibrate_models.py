#!/usr/bin/env python3
"""Re-run the model calibration against the paper's published data.

Fits the ~19 free constants of the performance/power/voltage models to
Tables 1/2/4-6 + Figure 1 (see repro.analysis.calibration) and prints the
result next to the shipped defaults.  This is the script that produced the
constants baked into the package; rerunning it documents the pipeline and
verifies the shipped values still sit at the optimum.

Run:  python examples/calibrate_models.py        (~1 min)
"""

from repro.analysis.calibration import (
    fit,
    predicted_efficiency,
    spearman_rho,
    steady_state_point,
)
from repro.hardware.cpu import AMD_EPYC_7502P
from repro.hardware.power import PowerModel
from repro.hardware.thermal import ThermalParams
from repro.hpcg import reference
from repro.hpcg.performance_model import HpcgPerformanceModel


def report(tag: str, perf, power, thermal) -> None:
    predicted = predicted_efficiency(perf, power, thermal)
    std = steady_state_point(32, 2.5, False, perf, power, thermal)
    best = steady_state_point(32, 2.2, False, perf, power, thermal)
    print(f"\n[{tag}]")
    print(f"  spearman rho            : {spearman_rho(predicted):.4f}")
    print(f"  predicted winner        : {max(predicted, key=predicted.get)} "
          f"(paper: {reference.BEST_CONFIG})")
    print(f"  GFLOPS/W gain best/std  : {best.efficiency / std.efficiency:.3f} (paper: 1.13)")
    print(f"  std  point              : {std.gflops:.3f} GF, {std.cpu_w:.1f} W cpu, "
          f"{std.sys_w:.1f} W sys, {std.temp_c:.1f} C")
    print(f"  best point              : {best.gflops:.3f} GF, {best.cpu_w:.1f} W cpu, "
          f"{best.sys_w:.1f} W sys, {best.temp_c:.1f} C")


def main() -> None:
    thermal = ThermalParams()
    print("shipped constants:")
    report("shipped", HpcgPerformanceModel(), PowerModel(AMD_EPYC_7502P), thermal)

    print("\nrefitting from the shipped constants (should stay put)...")
    result = fit(max_nfev=600)
    print(result.summary())
    report(
        "refit",
        HpcgPerformanceModel(result.perf_params),
        PowerModel(result.cpu_spec, result.power_params),
        result.thermal_params,
    )


if __name__ == "__main__":
    main()
