"""Kernel fast path — vectorized CSR helpers vs the pre-PR2 row loops.

PR 2 vectorized ``diagonal``/``subset_matvec``/``todense`` and memoised the
multicolor Gauss–Seidel partitions.  This bench times each fast path under
pytest-benchmark and cross-checks it against the preserved loop baseline
(:mod:`benchmarks.kernel_oracles`) for both speed and bit-exact numerics.
The standalone ``scripts/run_bench_suite.py`` records the same comparison
into ``BENCH_PR2.json``.
"""

import numpy as np
import pytest

from benchmarks.kernel_oracles import (
    diagonal_loop,
    multicolor_gather_loop,
    subset_matvec_loop,
    todense_loop,
)
from repro.analysis.tables import TextTable
from repro.hpcg.problem import generate_problem
from repro.hpcg.symgs import MulticolorSymgs


@pytest.fixture(scope="module")
def problem24():
    return generate_problem(24)


@pytest.fixture(scope="module")
def problem12():
    return generate_problem(12)


def cold(matrix):
    """Drop the matrix's memoised results so the *computation* is timed,
    not a cache hit (the loop baselines never had these caches)."""
    matrix._diag = None
    matrix._row_index_cache = None
    return matrix


def test_diagonal_fast_vs_loop(benchmark, problem24):
    m = problem24.matrix
    loop = diagonal_loop(m)

    fast = benchmark(lambda: cold(m).diagonal())
    np.testing.assert_array_equal(fast, loop)


def test_subset_matvec_fast_vs_loop(benchmark, problem24):
    m = problem24.matrix
    rng = np.random.default_rng(7)
    x = rng.normal(size=m.ncols)
    rows = problem24.color_rows(0)
    loop = subset_matvec_loop(m, rows, x)

    fast = benchmark(m.subset_matvec, rows, x)
    np.testing.assert_allclose(fast, loop, rtol=1e-13, atol=1e-13)


def test_todense_fast_vs_loop(benchmark, problem12):
    m = problem12.matrix
    loop = todense_loop(m)

    fast = benchmark(lambda: cold(m).todense())
    np.testing.assert_array_equal(fast, loop)


def test_multicolor_setup_cached(benchmark, problem24):
    """Second and later smoother constructions reuse the cached partitions."""
    MulticolorSymgs(problem24)  # warm the per-problem cache

    smoother = benchmark(MulticolorSymgs, problem24)
    baseline = multicolor_gather_loop(problem24)
    for (ia, xa, da), (ib, xb, db) in zip(smoother._per_color, baseline):
        np.testing.assert_array_equal(ia, ib)
        np.testing.assert_array_equal(xa, xb)
        np.testing.assert_array_equal(da, db)


def test_fastpath_summary(problem24, problem12, capsys):
    """Print a one-shot before/after table (speed measured by the suite)."""
    table = TextTable(
        ["Kernel", "Baseline", "Fast path"],
        title="\nPR2 kernel fast path (bit-identical results)",
    )
    table.add_row("diagonal", "row loop + searchsorted", "boolean mask, cached")
    table.add_row("subset_matvec", "per-row np.dot", "gather + reduceat, memoised")
    table.add_row("todense", "row loop", "single fancy-index scatter")
    table.add_row("multicolor setup", "per-row gather each build", "cached on problem")
    with capsys.disabled():
        print(table.render())
