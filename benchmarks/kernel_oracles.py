"""Pre-fast-path kernel implementations, preserved verbatim as baselines.

These are the row-loop kernels the vectorized fast path (PR 2) replaced in
:mod:`repro.hpcg.sparse` / :mod:`repro.hpcg.symgs`.  They are kept here —
not in the library — purely so the benchmark suite can measure the real
before/after speedup against the code that actually shipped, rather than
against a strawman.  Numerics are bit-identical to the fast path; the
fast-path tests (``tests/test_hpcg_fastpath.py``) pin that contract.
"""

from __future__ import annotations

import numpy as np

from repro.hpcg.problem import HpcgProblem
from repro.hpcg.sparse import CsrMatrix

__all__ = [
    "diagonal_loop",
    "subset_matvec_loop",
    "todense_loop",
    "multicolor_gather_loop",
]


def diagonal_loop(matrix: CsrMatrix) -> np.ndarray:
    """Per-row binary-search diagonal extraction (pre-PR2 ``diagonal``)."""
    diag = np.zeros(matrix.nrows, dtype=np.float64)
    for i in range(matrix.nrows):
        lo, hi = matrix.indptr[i], matrix.indptr[i + 1]
        cols = matrix.indices[lo:hi]
        hit = np.searchsorted(cols, i)
        if hit < cols.size and cols[hit] == i:
            diag[i] = matrix.data[lo + hit]
    return diag


def subset_matvec_loop(matrix: CsrMatrix, rows: np.ndarray, x: np.ndarray) -> np.ndarray:
    """Row-at-a-time restricted SpMV (pre-PR2 ``subset_matvec``)."""
    x = np.asarray(x, dtype=np.float64)
    rows = np.asarray(rows, dtype=np.int64)
    out = np.empty(rows.size, dtype=np.float64)
    for k, i in enumerate(rows):
        lo, hi = matrix.indptr[i], matrix.indptr[i + 1]
        out[k] = np.dot(matrix.data[lo:hi], x[matrix.indices[lo:hi]])
    return out


def todense_loop(matrix: CsrMatrix) -> np.ndarray:
    """Row-at-a-time densification (pre-PR2 ``todense``)."""
    dense = np.zeros(matrix.shape, dtype=np.float64)
    for i in range(matrix.nrows):
        lo, hi = matrix.indptr[i], matrix.indptr[i + 1]
        dense[i, matrix.indices[lo:hi]] = matrix.data[lo:hi]
    return dense


def multicolor_gather_loop(
    problem: HpcgProblem,
) -> list[tuple[np.ndarray, np.ndarray, np.ndarray]]:
    """Per-color sub-CSR gather with a Python row loop and no memoisation
    (pre-PR2 ``MulticolorSymgs.__init__`` body)."""
    m = problem.matrix
    per_color: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = []
    for color in range(8):
        rows = np.flatnonzero(problem.colors == color).astype(np.int64)
        if rows.size == 0:
            per_color.append(
                (np.zeros(1, dtype=np.int64), np.zeros(0, dtype=np.int64), np.zeros(0))
            )
            continue
        lengths = (m.indptr[rows + 1] - m.indptr[rows]).astype(np.int64)
        indptr = np.zeros(rows.size + 1, dtype=np.int64)
        np.cumsum(lengths, out=indptr[1:])
        nnz = int(indptr[-1])
        idx = np.empty(nnz, dtype=np.int64)
        dat = np.empty(nnz, dtype=np.float64)
        for k, r in enumerate(rows):
            lo, hi = m.indptr[r], m.indptr[r + 1]
            idx[indptr[k] : indptr[k + 1]] = m.indices[lo:hi]
            dat[indptr[k] : indptr[k + 1]] = m.data[lo:hi]
        per_color.append((indptr, idx, dat))
    return per_color
