"""Table 3 — comparison with the related work (Equation 2).

Paper: the eco plugin reduces system power by 11% (CPU 18%), versus the
related work's 106% efficiency improvement = 5.66% reduction (Equation 2).
The bench recomputes Equation 2 and builds Table 3 from our measured
reductions.
"""

import pytest

from repro.analysis.comparison import build_table3, related_work_reduction_pct
from repro.analysis.tables import TextTable
from repro.hpcg import reference


def compute_table3(runs):
    std, best = runs
    sys_reduction = (1.0 - best.system_energy_j() / std.system_energy_j()) * 100.0
    cpu_reduction = (1.0 - best.cpu_energy_j() / std.cpu_energy_j()) * 100.0
    rows = build_table3(cpu_reduction, sys_reduction,
                        reference.RELATED_WORK_IMPROVEMENT_PCT)
    return rows, sys_reduction, cpu_reduction


def test_table3_related_work_comparison(benchmark, completion_runs):
    rows, sys_red, cpu_red = benchmark(compute_table3, completion_runs)

    table = TextTable(
        ["Plugin", "CPU Reduction (%)", "System Reduction (%)", "Note"],
        title="\nTable 3 reproduction — system power reduction comparison",
    )
    for row in rows:
        table.add_row(
            row.plugin,
            "NaN" if row.cpu_reduction_pct is None else f"{row.cpu_reduction_pct:.1f}",
            f"{row.system_reduction_pct:.2f}",
            row.note,
        )
    print(table.render())
    print("\nPaper: Eco 18% / 11.00% vs related work NaN / 5.66%")

    # Equation 2 is exact arithmetic — it must match to the digit
    assert related_work_reduction_pct(106.0) == pytest.approx(5.66, abs=0.005)
    # our measured reductions beat the related work, like the paper's
    assert rows[0].system_reduction_pct > rows[1].system_reduction_pct
    assert 7.0 <= sys_red <= 14.0
    assert 12.0 <= cpu_red <= 22.0
