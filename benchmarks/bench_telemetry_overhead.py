"""Ablation (ours) — telemetry cost on the hot path, enabled vs no-op.

The scheduler loop and the eco plugin's submit path call telemetry on every
event/submission, so the disabled implementation must be indistinguishable
from no instrumentation at all.  The benchmarks time the three variants of
the same loop (bare, no-op telemetry, enabled telemetry); the plain test
asserts the zero-overhead-when-disabled contract with a generous margin so
it stays robust on noisy CI runners.
"""

import time

from repro.telemetry import MetricsRegistry, NullRegistry

N = 10_000


def _bare_loop():
    acc = 0
    for i in range(N):
        acc += i
    return acc


def _counter_loop(registry):
    c = registry.counter("bench_hits_total")
    acc = 0
    for i in range(N):
        acc += i
        c.inc()
    return acc


def _histogram_loop(registry):
    h = registry.histogram("bench_lat_seconds")
    acc = 0
    for i in range(N):
        acc += i
        h.observe(i)
    return acc


def test_bare_loop(benchmark):
    benchmark(_bare_loop)


def test_noop_counter_loop(benchmark):
    benchmark(_counter_loop, NullRegistry())


def test_enabled_counter_loop(benchmark):
    benchmark(_counter_loop, MetricsRegistry())


def test_noop_histogram_loop(benchmark):
    benchmark(_histogram_loop, NullRegistry())


def test_enabled_histogram_loop(benchmark):
    benchmark(_histogram_loop, MetricsRegistry())


def _best_of(fn, *args, repeats=7):
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn(*args)
        best = min(best, time.perf_counter() - started)
    return best


def test_noop_overhead_is_negligible():
    """The no-op path must stay within small-constant factors of bare code.

    An enabled counter takes a lock per inc; the no-op is a bare method
    call.  The margin (4x the bare loop) is deliberately generous — the
    point is catching accidental work creeping into the null objects (a
    dict allocation, a branch on labels), which shows up as 10x+.
    """
    bare = _best_of(_bare_loop)
    noop = _best_of(_counter_loop, NullRegistry())
    assert noop < bare * 4 + 1e-3, (
        f"no-op counter loop took {noop * 1e3:.2f} ms vs bare {bare * 1e3:.2f} ms"
    )
    noop_hist = _best_of(_histogram_loop, NullRegistry())
    assert noop_hist < bare * 4 + 1e-3, (
        f"no-op histogram loop took {noop_hist * 1e3:.2f} ms vs bare {bare * 1e3:.2f} ms"
    )
