"""Extension — multi-node support (paper section 6.2.3).

Scales the best and standard configurations across 1/2/4 nodes and
reports throughput, whole-allocation power (through the cluster-wide
power API integration) and the resulting GFLOPS/W — showing that (a) the
eco configuration keeps winning on multiple nodes and (b) efficiency
degrades gently with scale (interconnect overhead + per-node baseline).
"""


from repro.analysis.tables import TextTable
from repro.core.runners.hpcg_runner import parse_hpcg_rating
from repro.slurm.batch_script import build_script
from repro.slurm.cluster import HPCG_BINARY, SimCluster


def run_scaling():
    results = {}
    for n_nodes in (1, 2, 4):
        cluster = SimCluster(seed=41, n_nodes=n_nodes)
        for label, freq in (("best-2.2GHz", 2_200_000), ("std-2.5GHz", 2_500_000)):
            script = build_script(
                32 * n_nodes, freq, 1, HPCG_BINARY, job_name=label, nodes=n_nodes
            )
            job = cluster.submit_and_wait(script)
            gflops = parse_hpcg_rating(job.stdout)
            avg_w = job.consumed_energy_j / job.elapsed_s
            results[(n_nodes, label)] = {
                "gflops": gflops,
                "avg_w": avg_w,
                "eff": gflops / avg_w,
                "runtime": job.elapsed_s,
            }
    return results


def test_extension_multinode_scaling(benchmark):
    results = benchmark.pedantic(run_scaling, rounds=1, warmup_rounds=0)

    table = TextTable(
        ["Nodes", "Config", "GFLOP/s", "Alloc W", "GFLOPS/W", "Runtime (s)"],
        title="\nExtension — multi-node HPCG scaling (whole-allocation power)",
    )
    for (n, label), r in sorted(results.items()):
        table.add_row(n, label, f"{r['gflops']:.2f}", f"{r['avg_w']:.0f}",
                      f"{r['eff']:.5f}", f"{r['runtime']:.0f}")
    print(table.render())

    for n in (1, 2, 4):
        best = results[(n, "best-2.2GHz")]
        std = results[(n, "std-2.5GHz")]
        # the eco configuration keeps its efficiency lead at every scale
        assert best["eff"] > 1.06 * std["eff"]
    # throughput scales but below linear (interconnect efficiency)
    g1 = results[(1, "best-2.2GHz")]["gflops"]
    g4 = results[(4, "best-2.2GHz")]["gflops"]
    assert 2.8 * g1 < g4 < 4.0 * g1
    # per-allocation efficiency degrades gently, not catastrophically
    e1 = results[(1, "best-2.2GHz")]["eff"]
    e4 = results[(4, "best-2.2GHz")]["eff"]
    assert 0.80 * e1 < e4 < e1
