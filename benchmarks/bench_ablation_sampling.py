"""Ablation (ours) — IPMI sampling cadence vs energy-integration error.

The paper samples every 2 s in section 3.1.2 and every 3 s in section 5.2.
This bench quantifies what the choice costs: integrated system energy from
sampled traces at several cadences against the node's continuously
integrated ground truth.
"""


from repro.analysis.metrics import energy_joules
from repro.analysis.tables import TextTable
from repro.hpcg.workload import HpcgWorkload
from repro.slurm.cluster import SimCluster

CADENCES_S = (2.0, 3.0, 10.0, 30.0, 60.0)
RUN_SECONDS = 1200.0


def measure_cadence(cadence_s: float) -> tuple[float, float]:
    """Returns (sampled energy, true energy) for one standard-config run."""
    cluster = SimCluster(seed=17)
    workload = HpcgWorkload(
        32, 1, 2_500_000, model=cluster.performance_model,
        streams=cluster.streams, run_tag=f"cadence-{cadence_s}",
    )
    cluster.node.start_workload(workload, freq_min_khz=2_500_000, freq_max_khz=2_500_000)
    e0 = cluster.node.true_energy_joules
    times, watts = [], []
    t = 0.0
    while t < RUN_SECONDS:
        t += cadence_s
        cluster.sim.run(until=t)
        times.append(t)
        watts.append(cluster.ipmi.total_power_watts())
    sampled = energy_joules(times, watts) + watts[0] * cadence_s  # leading gap
    true = cluster.node.true_energy_joules - e0
    return sampled, true


def test_ablation_sampling_cadence(benchmark):
    results = {c: measure_cadence(c) for c in CADENCES_S}
    benchmark(measure_cadence, 30.0)

    table = TextTable(
        ["Cadence (s)", "Sampled (kJ)", "True (kJ)", "Error"],
        title="\nAblation — sampling cadence vs integrated-energy error",
    )
    errors = {}
    for cadence, (sampled, true) in results.items():
        err = abs(sampled - true) / true
        errors[cadence] = err
        table.add_row(cadence, f"{sampled / 1000:.1f}", f"{true / 1000:.1f}",
                      f"{err * 100:.3f}%")
    print(table.render())

    # the paper's 2-3 s cadence keeps integration error well under 1%
    assert errors[2.0] < 0.01
    assert errors[3.0] < 0.01
    # even a lazy 60 s cadence stays under 5% on this steady workload —
    # quantifying how benign the paper's choice is
    assert errors[60.0] < 0.05
