"""Figure 15 — system/CPU power and temperature over time, best vs standard.

The paper plots both full runs and observes: the standard configuration's
power fluctuates (the package duty-cycles at the top P-state) while the
best configuration is flat and lower; the CPU runs ~9 degrees cooler.
"""

import numpy as np
import pytest

from repro.analysis.tables import TextTable


def extract_series(runs):
    std, best = runs

    def series(run):
        t = np.array([s.time - run.start_time for s in run.samples])
        sys_w = np.array([s.system_w for s in run.samples])
        cpu_w = np.array([s.cpu_w for s in run.samples])
        temp = np.array([s.cpu_temp_c for s in run.samples])
        return t, sys_w, cpu_w, temp

    return series(std), series(best)


def test_fig15_power_over_time(benchmark, completion_runs):
    (std_series, best_series) = benchmark(extract_series, completion_runs)
    t_s, sys_s, cpu_s, temp_s = std_series
    t_b, sys_b, cpu_b, temp_b = best_series

    table = TextTable(
        ["Minute", "Sys W (std)", "Sys W (best)", "CPU W (std)", "CPU W (best)",
         "Temp C (std)", "Temp C (best)"],
        title="\nFigure 15 reproduction — samples at 1-minute marks",
    )
    for minute in range(0, 19, 2):
        idx_s = np.searchsorted(t_s, minute * 60.0)
        idx_b = np.searchsorted(t_b, minute * 60.0)
        if idx_s >= t_s.size or idx_b >= t_b.size:
            break
        table.add_row(
            minute,
            f"{sys_s[idx_s]:.0f}", f"{sys_b[idx_b]:.0f}",
            f"{cpu_s[idx_s]:.0f}", f"{cpu_b[idx_b]:.0f}",
            f"{temp_s[idx_s]:.1f}", f"{temp_b[idx_b]:.1f}",
        )
    print(table.render())

    # steady-state windows (skip setup + thermal transient)
    def q(a):
        return a[a.size // 4:]
    print(f"\nsteady std  : {q(sys_s).mean():.1f} W (std-dev {q(sys_s).std():.2f})")
    print(f"steady best : {q(sys_b).mean():.1f} W (std-dev {q(sys_b).std():.2f})")

    # best is lower...
    assert q(sys_b).mean() < q(sys_s).mean() - 15
    assert q(cpu_b).mean() < q(cpu_s).mean() - 15
    # ...more stable...
    assert q(sys_s).std() > 2.0 * q(sys_b).std()
    # ...and cooler by roughly the paper's 9 degrees
    assert q(temp_s).mean() - q(temp_b).mean() == pytest.approx(9.0, abs=2.5)
    # the best run lasts slightly longer (the 18:29 vs 18:47 of Table 2)
    assert t_b[-1] > t_s[-1]
