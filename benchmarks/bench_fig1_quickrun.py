"""Figure 1 — a single Chronus benchmark run at the standard configuration.

Paper: "GFLOP/s rating found: 9.34829" for the AMD EPYC 7502P at 32 cores /
2.5 GHz.  The bench regenerates that log line and times one complete
benchmark execution (submit, 3-second sampling loop, collection) through
the simulated cluster.
"""

import pytest

from benchmarks.conftest import STANDARD, make_benchmark_service
from repro.hpcg import reference
from repro.slurm.cluster import SimCluster


def run_single_benchmark():
    cluster = SimCluster(seed=1, hpcg_duration_s=1200.0)
    service = make_benchmark_service(cluster)
    return service.run_one(STANDARD, clock=lambda: cluster.sim.now)


def test_fig1_single_benchmark(benchmark):
    run = benchmark(run_single_benchmark)
    print()
    print("Figure 1 reproduction — Chronus energy benchmark log line")
    print(f"  GFLOP/s rating found: {run.gflops:.5f}")
    print(f"  paper reported      : {reference.FIG1_GFLOPS:.5f}")
    print(f"  samples taken       : {len(run.samples)} (3 s interval)")
    assert run.gflops == pytest.approx(reference.FIG1_GFLOPS, rel=0.03)
    assert run.success
