"""Extension — the paper's future-work features (sections 6.2.1 and 6.2.4).

* Deadline-aware configuration choice: "the model finds the best
  configuration that still finishes before the deadline".
* Time-shifted scheduling on spot price and carbon intensity: the Vestas /
  Lancium scenario of the introduction.
"""


from repro.analysis.tables import TextTable
from repro.energymarket.scheduling import DeadlineConfigSelector, TimeShiftScheduler
from repro.energymarket.traces import HOUR, CarbonTrace, PriceTrace
from repro.hpcg.performance_model import PAPER_TOTAL_FLOPS


def run_extension_suite(rows):
    by_cfg = {r.configuration: r for r in rows}

    # (a) deadline sweep
    selector = DeadlineConfigSelector(rows, PAPER_TOTAL_FLOPS, safety_margin=0.05)
    deadline_rows = []
    for deadline_min in (18.0, 19.8, 25.0, 60.0):
        try:
            cfg = selector.select(deadline_min * 60.0)
            row = by_cfg[cfg]
            deadline_rows.append(
                (deadline_min, cfg, row.gflops_per_watt,
                 selector.predicted_runtime_s(row) / 60.0)
            )
        except Exception as exc:
            deadline_rows.append((deadline_min, None, 0.0, 0.0))

    # (b) time shifting on price and carbon
    best = max(rows, key=lambda r: r.gflops_per_watt)
    duration = PAPER_TOTAL_FLOPS / (best.gflops * 1e9)
    price = TimeShiftScheduler(PriceTrace.synthetic(days=7, seed=3))
    carbon = TimeShiftScheduler(CarbonTrace.synthetic(days=7, seed=3),
                                unit_energy_wh=1e3)
    price_decision = price.best_start(duration, best.avg_system_w,
                                      deadline_s=2 * 24 * HOUR)
    carbon_decision = carbon.best_start(duration, best.avg_system_w,
                                        deadline_s=2 * 24 * HOUR)
    return deadline_rows, price_decision, carbon_decision


def test_extension_energymarket(benchmark, sweep_rows):
    deadline_rows, price_decision, carbon_decision = benchmark(
        run_extension_suite, sweep_rows
    )

    table = TextTable(
        ["Deadline (min)", "Chosen configuration", "GFLOPS/W", "Pred. runtime (min)"],
        title="\nExtension — deadline-aware configuration selection (6.2.1)",
    )
    for deadline, cfg, eff, runtime in deadline_rows:
        table.add_row(
            deadline, cfg.to_json() if cfg else "(infeasible)",
            f"{eff:.4f}" if cfg else "-", f"{runtime:.1f}" if cfg else "-",
        )
    print(table.render())
    print("\nExtension — time-shifted scheduling (6.2.4, 48 h deadline)")
    print(f"  cheapest-start  : t={price_decision.start_s / HOUR:.0f} h, "
          f"saves {price_decision.savings_fraction * 100:.1f}% of energy cost")
    print(f"  greenest-start  : t={carbon_decision.start_s / HOUR:.0f} h, "
          f"saves {carbon_decision.savings_fraction * 100:.1f}% of CO2")

    # an 18-minute deadline is infeasible even at full tilt (the fastest
    # run needs ~19.4 min with the safety margin)
    assert deadline_rows[0][1] is None
    # a 19.8-minute deadline forces the fast 2.5 GHz standard family —
    # the efficiency winner (2.2 GHz) would overshoot it
    d_tight = deadline_rows[1]
    assert d_tight[1] is not None
    assert d_tight[1].frequency == 2_500_000
    # a relaxed deadline recovers the efficiency winner (32 @ 2.2 GHz)
    d60 = deadline_rows[-1]
    assert d60[1].cores == 32 and d60[1].frequency == 2_200_000
    # the deadline never picks something slower than allowed
    for deadline, cfg, _, runtime in deadline_rows:
        if cfg is not None:
            assert runtime <= deadline + 1e-9
    # time shifting within 2 days finds meaningful savings on both axes
    assert price_decision.savings_fraction > 0.10
    assert carbon_decision.savings_fraction > 0.10
