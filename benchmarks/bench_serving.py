#!/usr/bin/env python
"""Serving-layer benchmark: a submit storm against the ChronusServer.

Drives N concurrent predict calls through the micro-batching server and
compares every answer against a serial oracle (the same model evaluated
one request at a time on a second, cache-cold service).  Records, as JSON:

* **parity** — how many storm answers differ from the oracle (must be 0:
  batching is a latency optimisation, never an accuracy trade);
* **latency** — per-request wall-clock p50/p95/max across the storm;
* **batching** — batch count / mean / max from the ``serve_batch_size``
  histogram (a storm that never batches is a misconfigured server);
* **shed accounting** — every admission rejection is an explicit ``SHED``
  answer; the report cross-checks the ``serve_shed_total`` counter against
  the SHED responses clients actually saw, so a silently dropped request
  is arithmetically visible.

The companion ``scripts/check_serving_gate.py`` asserts the invariants;
this script only runs and records.

``--throughput`` additionally measures the PR6 batched prediction hot
path and emits the ``BENCH_PR6.json`` trajectory:

* **throughput** — requests/sec and p95 of the scalar ``predict`` loop
  vs ``predict_batch`` at several batch sizes, with every batched answer
  compared field-for-field against its scalar twin (must be
  bit-identical: batching is a throughput optimisation, never a
  semantic one);
* **warm** — first-request latency on a cold service vs one warmed by
  the ``chronus load-model`` ahead-of-time step;
* **sweep** — the ``SweepExecutor`` serial-vs-pool re-benchmark with the
  per-worker memoised voltage cache (PR6 satellite fix).

The companion ``scripts/check_predict_throughput_gate.py`` gates the
throughput report in CI.

Usage::

    PYTHONPATH=src python benchmarks/bench_serving.py --smoke --output serving-smoke.json
    PYTHONPATH=src python benchmarks/bench_serving.py --smoke --throughput --output BENCH_PR6.json
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import threading
import time

from repro import telemetry
from repro.analysis.calibration import steady_state_point
from repro.core.application.slurm_config_service import SlurmConfigService
from repro.core.domain.benchmark import BenchmarkResult
from repro.core.domain.configuration import Configuration
from repro.core.domain.settings import ChronusSettings
from repro.core.factory import ModelFactory
from repro.hardware.cpu import AMD_EPYC_7502P
from repro.hardware.power import PowerModel
from repro.hardware.thermal import ThermalParams
from repro.hpcg.performance_model import HpcgPerformanceModel, PAPER_TOTAL_FLOPS
from repro.serving import PredictRequest, PredictResponse
from repro.serving.server import ChronusServer

MODEL_PATH = "/etc/chronus/optimizer/model-1.json"


class _MemoryLocalStorage:
    """Settings held in memory; the benchmark needs no workspace."""

    def __init__(self) -> None:
        self.settings = ChronusSettings()

    def load(self) -> ChronusSettings:
        return self.settings

    def save(self, settings: ChronusSettings) -> None:
        self.settings = settings

    def resolve_path(self, relative: str) -> str:
        return f"/etc/chronus/{relative}"


def analytic_rows(core_counts, frequencies) -> list[BenchmarkResult]:
    """Benchmark rows through the calibrated steady-state models —
    milliseconds to build, same shape the optimizers train on."""
    perf = HpcgPerformanceModel()
    power = PowerModel(AMD_EPYC_7502P)
    thermal = ThermalParams()
    rows = []
    for cfg in Configuration.sweep(core_counts=core_counts, frequencies=frequencies):
        sp = steady_state_point(
            cfg.cores, cfg.frequency_ghz, cfg.hyperthread, perf, power, thermal
        )
        runtime = PAPER_TOTAL_FLOPS / (sp.gflops * 1e9)
        rows.append(
            BenchmarkResult(
                system_id=1,
                application="hpcg",
                configuration=cfg,
                gflops=sp.gflops,
                avg_system_w=sp.sys_w,
                avg_cpu_w=sp.cpu_w,
                avg_cpu_temp_c=sp.temp_c,
                system_energy_j=sp.sys_w * runtime,
                cpu_energy_j=sp.cpu_w * runtime,
                runtime_s=runtime,
            )
        )
    return rows


def make_service(rows) -> SlurmConfigService:
    optimizer = ModelFactory.get_optimizer("brute-force")
    optimizer.fit(rows)
    files = {MODEL_PATH: optimizer.serialize()}
    local = _MemoryLocalStorage()
    settings = local.load().with_loaded_model(
        1, MODEL_PATH, "brute-force", application="hpcg"
    )
    local.save(settings.with_binary_alias(777, "hpcg"))
    return SlurmConfigService(
        local, ModelFactory.load_optimizer, read_local=files.__getitem__
    )


def build_requests(jobs: int) -> list[PredictRequest]:
    floors = [None, 0.5, 0.8, 0.9, 0.95, 1.0]
    return [
        PredictRequest(
            system_id=1,
            binary_hash=777,
            min_perf=floors[i % len(floors)],
            job_name=f"storm-{i}",
        )
        for i in range(jobs)
    ]


def run_storm(jobs: int, *, max_batch: int, max_wait_ms: float, queue_limit: int):
    """One storm + serial oracle; returns the JSON-ready report dict."""
    rows = analytic_rows([4, 8, 16, 24, 28, 32], [1_500_000, 2_200_000, 2_500_000])
    requests = build_requests(jobs)

    oracle_service = make_service(rows)
    oracle = [oracle_service.predict(r) for r in requests]

    telemetry.reset()
    server = ChronusServer(
        make_service(rows),
        max_batch=max_batch,
        max_wait_ms=max_wait_ms,
        queue_limit=queue_limit,
    )
    answers: list = [None] * jobs
    latencies = [0.0] * jobs
    gate = threading.Barrier(jobs)

    def worker(i: int) -> None:
        gate.wait()
        t0 = time.perf_counter()
        answers[i] = server.predict(requests[i])
        latencies[i] = time.perf_counter() - t0

    wall0 = time.perf_counter()
    with server:
        threads = [threading.Thread(target=worker, args=(i,)) for i in range(jobs)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60.0)
    wall = time.perf_counter() - wall0

    unanswered = sum(1 for a in answers if a is None)
    shed_seen = sum(
        1 for a in answers if a is not None and getattr(a, "code", "") == "SHED"
    )
    errors_seen = sum(
        1
        for a in answers
        if a is not None
        and not isinstance(a, PredictResponse)
        and getattr(a, "code", "") != "SHED"
    )
    mismatches = sum(
        1
        for got, want in zip(answers, oracle)
        if isinstance(got, PredictResponse)
        and (got.cores, got.threads_per_core, got.frequency, got.model_type)
        != (want.cores, want.threads_per_core, want.frequency, want.model_type)
    )

    snap = telemetry.snapshot()

    def counter(name: str) -> float:
        entry = telemetry.find_metric(snap, "counters", name)
        return entry["value"] if entry else 0.0

    batch = telemetry.find_metric(snap, "histograms", "serve_batch_size") or {}
    ordered = sorted(latencies)
    report = {
        "jobs": jobs,
        "max_batch": max_batch,
        "max_wait_ms": max_wait_ms,
        "queue_limit": queue_limit,
        "wall_s": wall,
        "unanswered": unanswered,
        "mismatches": mismatches,
        "shed_responses_seen": shed_seen,
        "error_responses_seen": errors_seen,
        "latency_s": {
            "p50": ordered[jobs // 2],
            "p95": ordered[int(jobs * 0.95)],
            "max": ordered[-1],
            "mean": statistics.fmean(latencies),
        },
        "batches": {
            "count": batch.get("count", 0),
            "mean": (batch.get("sum", 0.0) / batch.get("count", 1))
            if batch.get("count")
            else 0.0,
            "max": batch.get("max", 0),
        },
        "metrics": {
            "serve_requests_total": counter("serve_requests_total"),
            "serve_shed_total": counter("serve_shed_total"),
            "serve_coalesced_total": counter("serve_coalesced_total"),
            "serve_handler_errors_total": counter("serve_handler_errors_total"),
            "model_cache_hits_total": counter("model_cache_hits_total"),
            "model_cache_misses_total": counter("model_cache_misses_total"),
            "model_cache_evictions_total": counter("model_cache_evictions_total"),
        },
    }
    return report


def _response_fields(answer: PredictResponse) -> tuple:
    """Every answer field except batch_size (which encodes batch shape)."""
    return (
        answer.cores,
        answer.threads_per_core,
        answer.frequency,
        answer.model_type,
        answer.model_id,
        answer.model_version,
        answer.proto,
    )


def run_throughput(jobs: int, batch_sizes=(4, 16, 64)) -> dict:
    """Scalar vs batched requests/sec on one service; parity per answer."""
    rows = analytic_rows([4, 8, 16, 24, 28, 32], [1_500_000, 2_200_000, 2_500_000])
    requests = build_requests(jobs)

    service = make_service(rows)
    service.warm(1, 777)

    # scalar baseline: one predict() per request
    latencies = []
    t0 = time.perf_counter()
    scalar_answers = []
    for request in requests:
        s0 = time.perf_counter()
        scalar_answers.append(service.predict(request))
        latencies.append(time.perf_counter() - s0)
    scalar_wall = time.perf_counter() - t0
    ordered = sorted(latencies)
    scalar = {
        "rps": jobs / scalar_wall,
        "wall_s": scalar_wall,
        "p50_ms": ordered[jobs // 2] * 1e3,
        "p95_ms": ordered[int(jobs * 0.95)] * 1e3,
    }
    scalar_keys = [_response_fields(a) for a in scalar_answers]

    # batched: the same requests in predict_batch slices
    batched = []
    for size in batch_sizes:
        chunks = [requests[i : i + size] for i in range(0, jobs, size)]
        batch_lat = []
        mismatches = 0
        t0 = time.perf_counter()
        for chunk, offset in zip(chunks, range(0, jobs, size)):
            b0 = time.perf_counter()
            answers = service.predict_batch(chunk)
            batch_lat.append(time.perf_counter() - b0)
            for j, answer in enumerate(answers):
                if not isinstance(answer, PredictResponse) or _response_fields(
                    answer
                ) != scalar_keys[offset + j]:
                    mismatches += 1
        wall = time.perf_counter() - t0
        ordered = sorted(batch_lat)
        batched.append(
            {
                "batch_size": size,
                "rps": jobs / wall,
                "wall_s": wall,
                "batch_p50_ms": ordered[len(ordered) // 2] * 1e3,
                "batch_p95_ms": ordered[int(len(ordered) * 0.95)] * 1e3,
                "mismatches": mismatches,
            }
        )
    return {"jobs": jobs, "scalar": scalar, "batched": batched}


def run_warm_comparison() -> dict:
    """First-request latency: cold service vs load-model's warm step."""
    rows = analytic_rows([4, 8, 16, 24, 28, 32], [1_500_000, 2_200_000, 2_500_000])
    request = PredictRequest(system_id=1, binary_hash=777)

    cold_service = make_service(rows)
    t0 = time.perf_counter()
    cold_service.predict(request)
    cold_ms = (time.perf_counter() - t0) * 1e3

    warm_service = make_service(rows)
    warm_service.warm(1, 777)
    t0 = time.perf_counter()
    warm_service.predict(request)
    warm_ms = (time.perf_counter() - t0) * 1e3
    return {
        "cold_first_request_ms": cold_ms,
        "warmed_first_request_ms": warm_ms,
        "speedup": cold_ms / warm_ms if warm_ms > 0 else float("inf"),
    }


def run_sweep_rebench(quick: bool) -> dict:
    """SweepExecutor serial vs pool with the memoised per-worker caches."""
    from repro.core.application.sweep_executor import (
        SweepExecutor,
        resolve_worker_count,
    )
    from repro.core.repositories.memory_repository import MemoryRepository
    from repro.core.runners.sweep_worker import build_sweep_points, run_sweep_point
    from repro.core.services.lscpu_info import LscpuSystemInfo
    from repro.slurm.cluster import SimCluster

    core_counts = [4, 16, 32] if quick else [4, 8, 16, 24, 28, 32]
    configs = Configuration.sweep(
        core_counts=core_counts, frequencies=[1_500_000, 2_200_000, 2_500_000]
    )
    points = build_sweep_points(configs, base_seed=33)
    workers = min(4, resolve_worker_count(None))

    def run_with(n: int):
        cluster = SimCluster(seed=33)
        executor = SweepExecutor(
            MemoryRepository(),
            LscpuSystemInfo(cluster.node),
            run_sweep_point,
            workers=n,
        )
        t0 = time.perf_counter()
        result_rows = executor.run_sweep(points)
        return result_rows, time.perf_counter() - t0

    serial_rows, serial_wall = run_with(1)
    parallel_rows, parallel_wall = run_with(workers)
    return {
        "points": len(points),
        "workers": workers,
        "serial_wall_s": serial_wall,
        "parallel_wall_s": parallel_wall,
        "speedup": serial_wall / parallel_wall if parallel_wall > 0 else float("inf"),
        "identical_results": serial_rows == parallel_rows,
    }


def render_throughput(doc: dict) -> str:
    tp = doc["throughput"]
    lines = [
        f"predict throughput: {tp['jobs']} requests | scalar "
        f"{tp['scalar']['rps']:.0f} rps (p95 {tp['scalar']['p95_ms']:.3f}ms)"
    ]
    for row in tp["batched"]:
        lines.append(
            f"  batch={row['batch_size']:<3d} {row['rps']:8.0f} rps  "
            f"batch-p95 {row['batch_p95_ms']:.3f}ms  "
            f"mismatches={row['mismatches']}"
        )
    warm = doc["warm"]
    lines.append(
        f"  first request: cold {warm['cold_first_request_ms']:.2f}ms, "
        f"warmed {warm['warmed_first_request_ms']:.2f}ms "
        f"({warm['speedup']:.1f}x)"
    )
    sweep = doc["sweep"]
    lines.append(
        f"  sweep rebench: {sweep['points']} points serial "
        f"{sweep['serial_wall_s']:.2f}s, pool({sweep['workers']}) "
        f"{sweep['parallel_wall_s']:.2f}s ({sweep['speedup']:.2f}x), "
        f"identical={sweep['identical_results']}"
    )
    return "\n".join(lines)


def render(report: dict) -> str:
    lat = report["latency_s"]
    batches = report["batches"]
    return (
        f"serving storm: {report['jobs']} jobs in {report['wall_s']:.3f}s | "
        f"mismatches={report['mismatches']} unanswered={report['unanswered']} "
        f"shed={report['shed_responses_seen']}\n"
        f"  latency p50={lat['p50'] * 1e3:.2f}ms p95={lat['p95'] * 1e3:.2f}ms "
        f"max={lat['max'] * 1e3:.2f}ms\n"
        f"  batches: {batches['count']} dispatched, mean size "
        f"{batches['mean']:.1f}, max {batches['max']:.0f}; coalesced "
        f"{report['metrics']['serve_coalesced_total']:.0f} duplicates"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="CI-sized storm (200 jobs) instead of the full 1000",
    )
    parser.add_argument("--jobs", type=int, default=None)
    parser.add_argument("--max-batch", type=int, default=32)
    parser.add_argument("--max-wait-ms", type=float, default=2.0)
    parser.add_argument(
        "--queue-limit", type=int, default=None,
        help="admission bound [default: jobs + 8, so the parity storm "
        "is never shed; pass a smaller value to exercise shedding]",
    )
    parser.add_argument(
        "--throughput", action="store_true",
        help="measure the batched prediction hot path too and emit the "
        "BENCH_PR6 trajectory (storm + throughput + warm + sweep)",
    )
    parser.add_argument("--output", default=None)
    args = parser.parse_args(argv)

    jobs = args.jobs if args.jobs is not None else (200 if args.smoke else 1000)
    queue_limit = args.queue_limit if args.queue_limit is not None else jobs + 8
    output = args.output or (
        "BENCH_PR6.json" if args.throughput else "serving-smoke.json"
    )
    report = run_storm(
        jobs,
        max_batch=args.max_batch,
        max_wait_ms=args.max_wait_ms,
        queue_limit=queue_limit,
    )
    print(render(report))
    if args.throughput:
        import os
        import platform

        doc = {
            "schema": "chronus-bench-pr6/1",
            "smoke": bool(args.smoke),
            "host": {
                "cpu_count": os.cpu_count(),
                "python": platform.python_version(),
                "machine": platform.machine(),
            },
            "storm": report,
            "throughput": run_throughput(jobs),
            "warm": run_warm_comparison(),
            "sweep": run_sweep_rebench(quick=args.smoke),
        }
        print(render_throughput(doc))
        with open(output, "w") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {output}")
        return 0
    with open(output, "w") as fh:
        json.dump(report, fh, indent=2)
    print(f"wrote {output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
