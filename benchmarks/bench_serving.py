#!/usr/bin/env python
"""Serving-layer benchmark: a submit storm against the ChronusServer.

Drives N concurrent predict calls through the micro-batching server and
compares every answer against a serial oracle (the same model evaluated
one request at a time on a second, cache-cold service).  Records, as JSON:

* **parity** — how many storm answers differ from the oracle (must be 0:
  batching is a latency optimisation, never an accuracy trade);
* **latency** — per-request wall-clock p50/p95/max across the storm;
* **batching** — batch count / mean / max from the ``serve_batch_size``
  histogram (a storm that never batches is a misconfigured server);
* **shed accounting** — every admission rejection is an explicit ``SHED``
  answer; the report cross-checks the ``serve_shed_total`` counter against
  the SHED responses clients actually saw, so a silently dropped request
  is arithmetically visible.

The companion ``scripts/check_serving_gate.py`` asserts the invariants;
this script only runs and records.

Usage::

    PYTHONPATH=src python benchmarks/bench_serving.py --smoke --output serving-smoke.json
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import threading
import time

from repro import telemetry
from repro.analysis.calibration import steady_state_point
from repro.core.application.slurm_config_service import SlurmConfigService
from repro.core.domain.benchmark import BenchmarkResult
from repro.core.domain.configuration import Configuration
from repro.core.domain.settings import ChronusSettings
from repro.core.factory import ModelFactory
from repro.hardware.cpu import AMD_EPYC_7502P
from repro.hardware.power import PowerModel
from repro.hardware.thermal import ThermalParams
from repro.hpcg.performance_model import HpcgPerformanceModel, PAPER_TOTAL_FLOPS
from repro.serving import PredictRequest, PredictResponse
from repro.serving.server import ChronusServer

MODEL_PATH = "/etc/chronus/optimizer/model-1.json"


class _MemoryLocalStorage:
    """Settings held in memory; the benchmark needs no workspace."""

    def __init__(self) -> None:
        self.settings = ChronusSettings()

    def load(self) -> ChronusSettings:
        return self.settings

    def save(self, settings: ChronusSettings) -> None:
        self.settings = settings

    def resolve_path(self, relative: str) -> str:
        return f"/etc/chronus/{relative}"


def analytic_rows(core_counts, frequencies) -> list[BenchmarkResult]:
    """Benchmark rows through the calibrated steady-state models —
    milliseconds to build, same shape the optimizers train on."""
    perf = HpcgPerformanceModel()
    power = PowerModel(AMD_EPYC_7502P)
    thermal = ThermalParams()
    rows = []
    for cfg in Configuration.sweep(core_counts=core_counts, frequencies=frequencies):
        sp = steady_state_point(
            cfg.cores, cfg.frequency_ghz, cfg.hyperthread, perf, power, thermal
        )
        runtime = PAPER_TOTAL_FLOPS / (sp.gflops * 1e9)
        rows.append(
            BenchmarkResult(
                system_id=1,
                application="hpcg",
                configuration=cfg,
                gflops=sp.gflops,
                avg_system_w=sp.sys_w,
                avg_cpu_w=sp.cpu_w,
                avg_cpu_temp_c=sp.temp_c,
                system_energy_j=sp.sys_w * runtime,
                cpu_energy_j=sp.cpu_w * runtime,
                runtime_s=runtime,
            )
        )
    return rows


def make_service(rows) -> SlurmConfigService:
    optimizer = ModelFactory.get_optimizer("brute-force")
    optimizer.fit(rows)
    files = {MODEL_PATH: optimizer.serialize()}
    local = _MemoryLocalStorage()
    settings = local.load().with_loaded_model(
        1, MODEL_PATH, "brute-force", application="hpcg"
    )
    local.save(settings.with_binary_alias(777, "hpcg"))
    return SlurmConfigService(
        local, ModelFactory.load_optimizer, read_local=files.__getitem__
    )


def build_requests(jobs: int) -> list[PredictRequest]:
    floors = [None, 0.5, 0.8, 0.9, 0.95, 1.0]
    return [
        PredictRequest(
            system_id=1,
            binary_hash=777,
            min_perf=floors[i % len(floors)],
            job_name=f"storm-{i}",
        )
        for i in range(jobs)
    ]


def run_storm(jobs: int, *, max_batch: int, max_wait_ms: float, queue_limit: int):
    """One storm + serial oracle; returns the JSON-ready report dict."""
    rows = analytic_rows([4, 8, 16, 24, 28, 32], [1_500_000, 2_200_000, 2_500_000])
    requests = build_requests(jobs)

    oracle_service = make_service(rows)
    oracle = [oracle_service.predict(r) for r in requests]

    telemetry.reset()
    server = ChronusServer(
        make_service(rows),
        max_batch=max_batch,
        max_wait_ms=max_wait_ms,
        queue_limit=queue_limit,
    )
    answers: list = [None] * jobs
    latencies = [0.0] * jobs
    gate = threading.Barrier(jobs)

    def worker(i: int) -> None:
        gate.wait()
        t0 = time.perf_counter()
        answers[i] = server.predict(requests[i])
        latencies[i] = time.perf_counter() - t0

    wall0 = time.perf_counter()
    with server:
        threads = [threading.Thread(target=worker, args=(i,)) for i in range(jobs)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60.0)
    wall = time.perf_counter() - wall0

    unanswered = sum(1 for a in answers if a is None)
    shed_seen = sum(
        1 for a in answers if a is not None and getattr(a, "code", "") == "SHED"
    )
    errors_seen = sum(
        1
        for a in answers
        if a is not None
        and not isinstance(a, PredictResponse)
        and getattr(a, "code", "") != "SHED"
    )
    mismatches = sum(
        1
        for got, want in zip(answers, oracle)
        if isinstance(got, PredictResponse)
        and (got.cores, got.threads_per_core, got.frequency, got.model_type)
        != (want.cores, want.threads_per_core, want.frequency, want.model_type)
    )

    snap = telemetry.snapshot()

    def counter(name: str) -> float:
        entry = telemetry.find_metric(snap, "counters", name)
        return entry["value"] if entry else 0.0

    batch = telemetry.find_metric(snap, "histograms", "serve_batch_size") or {}
    ordered = sorted(latencies)
    report = {
        "jobs": jobs,
        "max_batch": max_batch,
        "max_wait_ms": max_wait_ms,
        "queue_limit": queue_limit,
        "wall_s": wall,
        "unanswered": unanswered,
        "mismatches": mismatches,
        "shed_responses_seen": shed_seen,
        "error_responses_seen": errors_seen,
        "latency_s": {
            "p50": ordered[jobs // 2],
            "p95": ordered[int(jobs * 0.95)],
            "max": ordered[-1],
            "mean": statistics.fmean(latencies),
        },
        "batches": {
            "count": batch.get("count", 0),
            "mean": (batch.get("sum", 0.0) / batch.get("count", 1))
            if batch.get("count")
            else 0.0,
            "max": batch.get("max", 0),
        },
        "metrics": {
            "serve_requests_total": counter("serve_requests_total"),
            "serve_shed_total": counter("serve_shed_total"),
            "serve_coalesced_total": counter("serve_coalesced_total"),
            "serve_handler_errors_total": counter("serve_handler_errors_total"),
            "model_cache_hits_total": counter("model_cache_hits_total"),
            "model_cache_misses_total": counter("model_cache_misses_total"),
            "model_cache_evictions_total": counter("model_cache_evictions_total"),
        },
    }
    return report


def render(report: dict) -> str:
    lat = report["latency_s"]
    batches = report["batches"]
    return (
        f"serving storm: {report['jobs']} jobs in {report['wall_s']:.3f}s | "
        f"mismatches={report['mismatches']} unanswered={report['unanswered']} "
        f"shed={report['shed_responses_seen']}\n"
        f"  latency p50={lat['p50'] * 1e3:.2f}ms p95={lat['p95'] * 1e3:.2f}ms "
        f"max={lat['max'] * 1e3:.2f}ms\n"
        f"  batches: {batches['count']} dispatched, mean size "
        f"{batches['mean']:.1f}, max {batches['max']:.0f}; coalesced "
        f"{report['metrics']['serve_coalesced_total']:.0f} duplicates"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="CI-sized storm (200 jobs) instead of the full 1000",
    )
    parser.add_argument("--jobs", type=int, default=None)
    parser.add_argument("--max-batch", type=int, default=32)
    parser.add_argument("--max-wait-ms", type=float, default=2.0)
    parser.add_argument(
        "--queue-limit", type=int, default=None,
        help="admission bound [default: jobs + 8, so the parity storm "
        "is never shed; pass a smaller value to exercise shedding]",
    )
    parser.add_argument("--output", default="serving-smoke.json")
    args = parser.parse_args(argv)

    jobs = args.jobs if args.jobs is not None else (200 if args.smoke else 1000)
    queue_limit = args.queue_limit if args.queue_limit is not None else jobs + 8
    report = run_storm(
        jobs,
        max_batch=args.max_batch,
        max_wait_ms=args.max_wait_ms,
        queue_limit=queue_limit,
    )
    print(render(report))
    with open(args.output, "w") as fh:
        json.dump(report, fh, indent=2)
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
