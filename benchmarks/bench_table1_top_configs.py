"""Table 1 — the best 13 configurations by GFLOPS/W.

Paper columns: cores, GHz, hyper-thread, GFLOPS/W, GFLOPS/W ratio vs the
standard configuration, performance ratio vs standard.  Headline row:
32 cores / 2.2 GHz / no-HT at 0.0488 GFLOPS/W — 13% better efficiency at
2% lower performance than the Slurm default (32 / 2.5 / performance
governor).
"""

import pytest

from repro.analysis.tables import TextTable


def build_table1(rows):
    std = next(
        r for r in rows
        if r.configuration.cores == 32
        and r.configuration.frequency == 2_500_000
        and r.configuration.threads_per_core == 1
    )
    ranked = sorted(rows, key=lambda r: -r.gflops_per_watt)[:13]
    out = []
    for r in ranked:
        out.append(
            (
                r.configuration.cores,
                r.configuration.frequency_ghz,
                r.configuration.hyperthread,
                r.gflops_per_watt,
                r.gflops_per_watt / std.gflops_per_watt,
                r.gflops / std.gflops,
            )
        )
    return out, std


def test_table1_top_configurations(benchmark, sweep_rows):
    (ranked, std) = benchmark(build_table1, sweep_rows)

    table = TextTable(
        ["Cores", "GHz", "HT", "GFLOPS/W", "GFLOPS/W %", "Performance %"],
        title="\nTable 1 reproduction — top 13 configurations",
    )
    for cores, ghz, ht, e, e_ratio, perf in ranked:
        table.add_row(cores, f"{ghz:.1f}", ht, f"{e:.4f}", f"{e_ratio:.2f}", f"{perf:.2f}")
    print(table.render())
    print("\nPaper top row: 32 / 2.2 / f : 0.0488 GFLOPS/W, 1.13, 0.98")

    best = ranked[0]
    # winner: 32 cores @ 2.2 GHz (HT flag within noise, see paper's 0.9% gap)
    assert best[0] == 32 and best[1] == 2.2
    # efficiency gain roughly the paper's 13%
    assert 1.08 <= best[4] <= 1.16
    # performance loss small (paper: 2%)
    assert 0.95 <= best[5] <= 0.995
    # absolute level close to the paper's 0.0488
    assert best[3] == pytest.approx(0.0488, rel=0.05)
    # the standard configuration sits in the upper-middle of the ranking
    # (paper: rank 11 of 138; our model places the 25-28-core band slightly
    # higher, landing the standard config around rank 20)
    all_ranked = sorted(sweep_rows, key=lambda r: -r.gflops_per_watt)
    std_rank = next(
        i for i, r in enumerate(all_ranked, 1) if r.configuration == std.configuration
    )
    assert 8 <= std_rank <= 26  # paper: 11
