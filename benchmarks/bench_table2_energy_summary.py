"""Table 2 — full-run averages: watts, kilojoules, temperature, runtime.

Paper values:
  Standard: 216.6 W sys / 120.4 W CPU / 240.2 kJ sys / 133.5 kJ CPU /
            62.8 C / 18:29
  Best:     190.1 W sys /  97.4 W CPU / 214.4 kJ sys / 109.8 kJ CPU /
            53.8 C / 18:47
  => 11% system-energy and 18% CPU-energy reduction.
"""

import pytest

from repro.analysis.tables import TextTable
from repro.hpcg import reference


def summarize(runs):
    std, best = runs

    def row(run):
        return {
            "avg_sys_w": run.average_system_w(),
            "avg_cpu_w": run.average_cpu_w(),
            "sys_kj": run.system_energy_j() / 1000.0,
            "cpu_kj": run.cpu_energy_j() / 1000.0,
            "temp_c": run.average_cpu_temp_c(),
            "runtime_s": run.runtime_s,
        }

    return row(std), row(best)


def _fmt_runtime(seconds: float) -> str:
    m, s = divmod(int(round(seconds)), 60)
    return f"0:{m:02d}:{s:02d}"


def test_table2_energy_summary(benchmark, completion_runs):
    std, best = benchmark(summarize, completion_runs)

    table = TextTable(
        ["Name", "Avg Sys (W)", "Avg Cpu (W)", "Sys KJ", "Cpu KJ", "Avg Temp (C)", "Runtime"],
        title="\nTable 2 reproduction — measured (sim) vs paper",
    )
    for name, r, ref in (
        ("Standard (sim)", std, reference.TABLE2["standard"]),
        ("Standard (paper)", None, reference.TABLE2["standard"]),
        ("Best (sim)", best, reference.TABLE2["best"]),
        ("Best (paper)", None, reference.TABLE2["best"]),
    ):
        if r is not None:
            table.add_row(
                name, f"{r['avg_sys_w']:.1f}", f"{r['avg_cpu_w']:.1f}",
                f"{r['sys_kj']:.1f}", f"{r['cpu_kj']:.1f}", f"{r['temp_c']:.1f}",
                _fmt_runtime(r["runtime_s"]),
            )
        else:
            table.add_row(
                name, ref.avg_sys_w, ref.avg_cpu_w, ref.sys_kj, ref.cpu_kj,
                ref.avg_temp_c, _fmt_runtime(ref.runtime_s),
            )
    print(table.render())

    sys_reduction = 1.0 - best["sys_kj"] / std["sys_kj"]
    cpu_reduction = 1.0 - best["cpu_kj"] / std["cpu_kj"]
    print(f"\nsystem energy reduction: {sys_reduction * 100:.1f}% (paper: 11%)")
    print(f"cpu    energy reduction: {cpu_reduction * 100:.1f}% (paper: 18%)")

    ref_s = reference.TABLE2["standard"]
    ref_b = reference.TABLE2["best"]
    assert std["avg_sys_w"] == pytest.approx(ref_s.avg_sys_w, rel=0.04)
    assert std["avg_cpu_w"] == pytest.approx(ref_s.avg_cpu_w, rel=0.05)
    assert best["avg_sys_w"] == pytest.approx(ref_b.avg_sys_w, rel=0.04)
    assert best["avg_cpu_w"] == pytest.approx(ref_b.avg_cpu_w, rel=0.05)
    assert std["sys_kj"] == pytest.approx(ref_s.sys_kj, rel=0.06)
    assert best["sys_kj"] == pytest.approx(ref_b.sys_kj, rel=0.06)
    assert std["temp_c"] == pytest.approx(ref_s.avg_temp_c, abs=2.0)
    assert best["temp_c"] == pytest.approx(ref_b.avg_temp_c, abs=2.0)
    assert std["runtime_s"] == pytest.approx(ref_s.runtime_s, rel=0.03)
    assert best["runtime_s"] == pytest.approx(ref_b.runtime_s, rel=0.04)
    assert 0.07 <= sys_reduction <= 0.14   # paper: 0.11
    assert 0.12 <= cpu_reduction <= 0.22   # paper: 0.18
