"""Extension — GPU frequency tuning (paper section 6.2.2).

The paper cites Abe et al. [1]: tuning GPU core/memory clocks "can save
28% energy for 1% performance loss".  The bench runs the full
application-clock sweep on the simulated A100 for a memory-bound and a
compute-bound kernel and reports what the tuner achieves under the same
1% budget.
"""


from repro.analysis.tables import TextTable
from repro.gpu import GpuFrequencyTuner, GpuKernel, NVIDIA_A100, SimulatedGpu
from repro.simkernel.random import RandomStreams

MEMORY_BOUND = GpuKernel(
    "stencil (memory-bound)", compute_per_mhz=1.0, memory_per_mhz=0.6,
    work_units=1e6, smoothmin_n=16.0,
)
COMPUTE_BOUND = GpuKernel(
    "gemm (compute-bound)", compute_per_mhz=1.0, memory_per_mhz=5.0,
    work_units=1e6, smoothmin_n=16.0,
)


def tune_both():
    gpu = SimulatedGpu(streams=RandomStreams(1), noise_sigma=0.0)
    tuner = GpuFrequencyTuner(gpu)
    return {
        kernel.name: tuner.tune(kernel, max_perf_loss=0.01)
        for kernel in (MEMORY_BOUND, COMPUTE_BOUND)
    }


def test_extension_gpu_frequency_tuning(benchmark):
    results = benchmark(tune_both)

    table = TextTable(
        ["Kernel", "Default clocks", "Tuned clocks", "Energy saving", "Perf loss"],
        title="\nExtension — GPU application-clock tuning (1% perf budget)",
    )
    for name, r in results.items():
        table.add_row(
            name,
            f"{r.baseline.sm_mhz}/{r.baseline.mem_mhz} MHz",
            f"{r.best.sm_mhz}/{r.best.mem_mhz} MHz",
            f"{r.energy_saving_fraction * 100:.1f}%",
            f"{r.perf_loss_fraction * 100:.2f}%",
        )
    print(table.render())
    print("\nCited result (Abe et al. [1], paper 6.2.2): 28% energy for 1% loss")

    mem = results[MEMORY_BOUND.name]
    cmp = results[COMPUTE_BOUND.name]
    # the headline shape: ~28% saving within the 1% budget
    assert 0.24 <= mem.energy_saving_fraction <= 0.33
    assert mem.perf_loss_fraction <= 0.01
    # and the control: a compute-bound kernel has nothing to give
    assert cmp.energy_saving_fraction < 0.05
    assert cmp.best.sm_mhz == NVIDIA_A100.max_sm_mhz
