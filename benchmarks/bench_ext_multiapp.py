"""Extension — per-application models (paper limitations 6.1.2/6.1.3 fixed).

Benchmarks HPCG (memory-bound) and HPL (compute-bound) on the same
cluster and shows their energy-optimal configurations *differ* — which is
exactly why the binary hash exists in the paper's ``slurm-config``
interface, and what its hard-coded binary path threw away.
"""


from repro.analysis.tables import TextTable
from repro.core.application.benchmark_service import BenchmarkService
from repro.core.domain.configuration import Configuration
from repro.core.repositories.memory_repository import MemoryRepository
from repro.core.runners.hpcg_runner import HpcgRunner
from repro.core.runners.hpl_runner import HplRunner
from repro.core.services.ipmi_service import IpmiSystemService
from repro.core.services.lscpu_info import LscpuSystemInfo
from repro.slurm.cluster import HPCG_BINARY, SimCluster

SWEEP = [
    Configuration(c, t, f)
    for c in (16, 24, 32)
    for f in (1_500_000, 2_200_000, 2_500_000)
    for t in (1, 2)
]


def run_both_sweeps():
    cluster = SimCluster(seed=51, hpcg_duration_s=600.0)
    repo = MemoryRepository()
    common = dict(
        system_service=IpmiSystemService(cluster.ipmi, clock=lambda: cluster.sim.now),
        system_info=LscpuSystemInfo(cluster.node),
    )
    out = {}
    for runner in (HpcgRunner(cluster, HPCG_BINARY), HplRunner(cluster)):
        service = BenchmarkService(repo, runner, **common)
        rows = service.run_benchmarks(SWEEP, clock=lambda: cluster.sim.now)
        out[runner.application] = rows
    return out


def test_extension_per_application_optima(benchmark):
    sweeps = benchmark.pedantic(run_both_sweeps, rounds=1, warmup_rounds=0)

    table = TextTable(
        ["Application", "Best configuration", "GFLOPS/W", "vs default"],
        title="\nExtension — per-application energy optima",
    )
    bests = {}
    for app, rows in sweeps.items():
        best = max(rows, key=lambda r: r.gflops_per_watt)
        default = next(
            r for r in rows
            if r.configuration == Configuration(32, 1, 2_500_000)
        )
        bests[app] = best
        table.add_row(
            app, best.configuration.to_json(), f"{best.gflops_per_watt:.4f}",
            f"+{(best.gflops_per_watt / default.gflops_per_watt - 1) * 100:.1f}%",
        )
    print(table.render())
    print("\nOne model per binary hash is required: the two optima disagree "
          "on frequency, which the paper's fixed binary path could not express.")

    assert bests["hpcg"].configuration.frequency == 2_200_000
    assert bests["hpl"].configuration.frequency == 2_500_000
    assert bests["hpcg"].configuration != bests["hpl"].configuration
    # both run all 32 cores
    assert bests["hpcg"].configuration.cores == 32
    assert bests["hpl"].configuration.cores == 32
