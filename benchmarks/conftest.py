"""Shared fixtures for the benchmark harness.

Expensive simulation campaigns run once per session; each bench file then
regenerates its paper table/figure from the shared data and prints the
same rows/series the paper reports (stdout is part of the deliverable —
run with ``pytest benchmarks/ --benchmark-only -s`` to see the tables).
"""

from __future__ import annotations

import pytest

from repro.core.application.benchmark_service import BenchmarkService
from repro.core.domain.benchmark import BenchmarkResult
from repro.core.domain.configuration import Configuration
from repro.core.domain.run import Run
from repro.core.repositories.memory_repository import MemoryRepository
from repro.core.runners.hpcg_runner import HpcgRunner
from repro.core.services.ipmi_service import IpmiSystemService
from repro.core.services.lscpu_info import LscpuSystemInfo
from repro.hpcg import reference
from repro.slurm.cluster import HPCG_BINARY, SimCluster

STANDARD = Configuration(32, 1, 2_500_000)
BEST = Configuration(32, 1, 2_200_000)


def make_benchmark_service(cluster: SimCluster) -> BenchmarkService:
    return BenchmarkService(
        MemoryRepository(),
        HpcgRunner(cluster, HPCG_BINARY),
        IpmiSystemService(cluster.ipmi, clock=lambda: cluster.sim.now),
        LscpuSystemInfo(cluster.node),
        sample_interval_s=3.0,
    )


def paper_configurations() -> list[Configuration]:
    """All 138 configurations of the paper's Tables 4-6."""
    return [
        Configuration(p.cores, 2 if p.hyperthread else 1, p.freq_khz)
        for p in reference.GFLOPS_PER_WATT
    ]


@pytest.fixture(scope="session")
def sweep_rows() -> list[BenchmarkResult]:
    """The paper's full sweep: 138 time-bounded (20-min) HPCG jobs with
    3-second IPMI sampling, exactly the section-5.2 campaign."""
    cluster = SimCluster(seed=33, hpcg_duration_s=1200.0)
    service = make_benchmark_service(cluster)
    return service.run_benchmarks(
        paper_configurations(), clock=lambda: cluster.sim.now
    )


@pytest.fixture(scope="session")
def completion_runs() -> tuple[Run, Run]:
    """Two full work-bounded runs (standard, best) for Table 2 / Figure 15."""
    cluster = SimCluster(seed=21)
    service = make_benchmark_service(cluster)
    std = service.run_one(STANDARD, clock=lambda: cluster.sim.now)
    best = service.run_one(BEST, clock=lambda: cluster.sim.now)
    return std, best
