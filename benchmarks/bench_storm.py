#!/usr/bin/env python
"""Fleet-scale storm benchmarks: scheduler, DES engine, sharded serving.

Three coupled measurements, recorded as one JSON report (``BENCH_PR7.json``
at full size, ``--smoke`` in CI):

* **scheduler** — one backfill pass over a fleet-sized cluster (1,000
  nodes at full size) with a deep pending queue, timed for the reference
  ``O(queue × nodes)`` implementation vs. the incremental
  ``ClusterState`` index.  Placements must be identical (``mismatches``
  is part of the report) — the speedup is only admissible because the
  answers are.
* **des_storm** — a submit storm (100k jobs at full size) driven through
  the simulator with batched ``call_at_many`` submission, ``defer``-style
  pass coalescing, a bounded queue depth per pass, and mid-storm
  cancellations exercising the tombstone compactor.  Event throughput is
  measured at two storm sizes; near-linear scaling means the events/sec
  ratio stays close to 1 as the storm quadruples.
* **serving_storm** — ≥10k client requests fanned through a
  :class:`~repro.serving.router.ShardRouter` over N in-process
  ``ChronusServer`` workers, answers checked against a serial oracle.
  Zero SHED, zero unanswered and bounded p95 are the gate.
* **sweep** — the multi-core sweep re-benchmark with per-worker kernel
  cache reuse (``shared_problem`` + process-shared roofline model):
  pool(≥2) must reproduce the serial rows bit-identically.

The companion ``scripts/check_storm_gate.py`` asserts the invariants;
this script only runs and records.

Usage::

    PYTHONPATH=src python benchmarks/bench_storm.py --smoke --output storm-smoke.json
    PYTHONPATH=src python benchmarks/bench_storm.py --output BENCH_PR7.json
"""

from __future__ import annotations

import argparse
import json
import platform
import random
import statistics
import sys
import threading
import time

import os

import repro.core  # noqa: F401  - load core before slurm (import cycle)
from repro import telemetry
from repro.slurm.job import Job, JobDescriptor
from repro.slurm.sched_index import ClusterState
from repro.slurm.scheduler import backfill_schedule
from repro.simkernel.engine import Simulator


# ---------------------------------------------------------------------------
# scheduler pass: reference vs incremental on identical fleet state
# ---------------------------------------------------------------------------
def _fleet_state(n_nodes: int, cores: int, rng: random.Random):
    """One warm fleet: every node partially occupied by running steps."""
    state = ClusterState(
        (f"node{i + 1:04d}", cores, cores) for i in range(n_nodes)
    )
    for i in range(n_nodes):
        name = f"node{i + 1:04d}"
        free = cores
        for _ in range(rng.randint(0, 3)):
            step = rng.randint(1, cores // 2)
            if step > free:
                break
            state.on_job_start([name], step, float(rng.randint(100, 5000)))
            free -= step
    return state


def _queue(n_jobs: int, cores: int, rng: random.Random) -> list[Job]:
    jobs = []
    for i in range(n_jobs):
        tasks = rng.choice([1, 2, 4, 8, 16, cores, 2 * cores])
        nodes = max(1, tasks // cores)
        jobs.append(
            Job(
                job_id=i + 1,
                descriptor=JobDescriptor(
                    name=f"q{i}", num_tasks=tasks, nodes=nodes,
                    time_limit_s=rng.randint(60, 7200),
                ),
                submit_time=0.0,
            )
        )
    return jobs


def run_scheduler_bench(n_nodes: int, queue_depth: int, passes: int) -> dict:
    rng = random.Random(42)
    cores = 32
    state = _fleet_state(n_nodes, cores, rng)

    ref_times, inc_times = [], []
    mismatches = 0
    for p in range(passes):
        jobs_ref = _queue(queue_depth, cores, random.Random(1000 + p))
        jobs_inc = _queue(queue_depth, cores, random.Random(1000 + p))

        views = state.node_views()  # fresh copies; the reference mutates them
        t0 = time.perf_counter()
        ref = backfill_schedule(jobs_ref, views, 0.0, default_limit_s=600)
        ref_times.append(time.perf_counter() - t0)

        t0 = time.perf_counter()
        inc = state.backfill_pass(jobs_inc, 0.0, default_limit_s=600)
        inc_times.append(time.perf_counter() - t0)

        if [(x.job.job_id, x.node_names) for x in ref] != [
            (x.job.job_id, x.node_names) for x in inc
        ]:
            mismatches += 1

    def stats(times):
        ordered = sorted(times)
        return {
            "p50_ms": ordered[len(ordered) // 2] * 1e3,
            "p95_ms": ordered[int(len(ordered) * 0.95)] * 1e3,
            "mean_ms": statistics.fmean(times) * 1e3,
        }

    return {
        "n_nodes": n_nodes,
        "queue_depth": queue_depth,
        "passes": passes,
        "mismatches": mismatches,
        "reference": stats(ref_times),
        "incremental": stats(inc_times),
        "speedup": statistics.fmean(ref_times) / statistics.fmean(inc_times),
    }


# ---------------------------------------------------------------------------
# DES storm: batched submission, defer coalescing, compaction
# ---------------------------------------------------------------------------
def run_des_storm(n_nodes: int, n_jobs: int, *, queue_depth: int = 256) -> dict:
    """One full submit-storm simulation; returns throughput + engine stats.

    Every started job arms TWO events, the way slurmctld does: a
    wall-limit kill timer at ``start + time_limit`` and the actual
    completion at a fraction of the limit.  The completion cancels the
    kill timer, so the heap steadily accrues tombstones with most of
    their sim-lifetime still ahead — exactly the load the compactor
    exists for.  Finish times are quantized to whole seconds so the
    ``defer``-style coalesced pass event serves every completion in an
    instant with one scheduling pass, and the pass window is bounded by
    ``queue_depth`` so per-pass cost does not grow with the backlog.
    """
    cores = 32
    rng = random.Random(7)
    sim = Simulator()
    state = ClusterState(
        (f"node{i + 1:04d}", cores, cores) for i in range(n_nodes)
    )
    pending: dict[int, Job] = {}  # insertion-ordered FIFO queue
    live: dict[int, tuple] = {}  # job_id -> (kill_event, names, end)
    stats = {"started": 0, "finished": 0, "killed": 0, "passes": 0}
    pass_times: list[float] = []
    sched_event = [None]

    def schedule_pass() -> None:
        stats["passes"] += 1
        if not pending:
            return
        t0 = time.perf_counter()
        window = []
        for job in pending.values():
            window.append(job)
            if len(window) >= queue_depth:
                break
        placements = state.backfill_pass(window, sim.now, default_limit_s=600)
        for placement in placements:
            job = placement.job
            del pending[job.job_id]
            limit = job.descriptor.time_limit_s
            end = sim.now + limit
            state.on_job_start(
                placement.node_names, job.descriptor.tasks_per_node, end
            )
            kill = sim.call_at(
                end, lambda jid=job.job_id: finish(jid, killed=True)
            )
            live[job.job_id] = (kill, placement.node_names, end)
            # most jobs finish well inside their limit (quantized so
            # same-second completions coalesce into one pass)
            runtime = max(1.0, round(limit * rng.uniform(0.1, 0.4)))
            sim.call_at(
                sim.now + runtime, lambda jid=job.job_id: finish(jid)
            )
            stats["started"] += 1
        pass_times.append(time.perf_counter() - t0)

    def request_pass() -> None:
        # defer-style coalescing: all triggers inside one instant = 1 pass
        if sched_event[0] is not None:
            return

        def fire() -> None:
            sched_event[0] = None
            schedule_pass()

        sched_event[0] = sim.call_at(sim.now, fire)

    def finish(job_id: int, *, killed: bool = False) -> None:
        kill, names, end = live.pop(job_id)
        job = jobs[job_id - 1]
        if not killed:
            kill.cancel()  # tombstone: its heap slot is compactor food
        state.on_job_finish(names, job.descriptor.tasks_per_node, end)
        stats["killed" if killed else "finished"] += 1
        request_pass()

    def submit(job: Job) -> None:
        pending[job.job_id] = job
        request_pass()

    jobs = _queue(n_jobs, cores, rng)
    wall0 = time.perf_counter()
    # the storm front: 64 submissions per simulated second, one batch call
    sim.call_at_many(
        [(float(i // 64), lambda j=job: submit(j)) for i, job in enumerate(jobs)]
    )
    sim.run(max_events=50_000_000)
    wall = time.perf_counter() - wall0

    ordered = sorted(pass_times) or [0.0]
    return {
        "n_nodes": n_nodes,
        "n_jobs": n_jobs,
        "queue_depth": queue_depth,
        "wall_s": wall,
        "events": sim.processed_events,
        "events_per_sec": sim.processed_events / wall if wall > 0 else 0.0,
        "jobs_started": stats["started"],
        "jobs_finished": stats["finished"],
        "jobs_killed_at_limit": stats["killed"],
        "kill_timer_tombstones": stats["finished"],
        "compactions": sim.events.compactions,
        "passes": stats["passes"],
        "pass_ms": {
            "p50": ordered[len(ordered) // 2] * 1e3,
            "p95": ordered[int(len(ordered) * 0.95)] * 1e3,
            "max": ordered[-1] * 1e3,
        },
        "unfinished_jobs": len(pending) + len(live),
    }


def run_des_scaling(n_nodes: int, n_jobs: int) -> dict:
    """Throughput at quarter vs full storm size (near-linearity check)."""
    small = run_des_storm(n_nodes, max(1000, n_jobs // 4))
    large = run_des_storm(n_nodes, n_jobs)
    return {
        "small": small,
        "large": large,
        # events/sec at 4x the jobs, relative to the small storm: 1.0 is
        # perfectly linear, < 1 means per-event cost grew with scale
        "throughput_ratio": (
            large["events_per_sec"] / small["events_per_sec"]
            if small["events_per_sec"]
            else 0.0
        ),
    }


# ---------------------------------------------------------------------------
# serving storm through the shard router
# ---------------------------------------------------------------------------
def run_serving_storm(
    clients: int, shards: int, *, worker_threads: int = 64
) -> dict:
    sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
    from bench_serving import analytic_rows, make_service

    from repro.serving.router import ShardRouter
    from repro.serving.server import ChronusServer
    from repro.serving.transport import LocalTransport
    from repro.serving.protocol import PredictRequest, PredictResponse

    rows = analytic_rows([4, 8, 16, 24, 28, 32], [1_500_000, 2_200_000, 2_500_000])
    floors = [None, 0.5, 0.8, 0.9, 0.95, 1.0]
    requests = [
        PredictRequest(
            system_id=1,
            binary_hash=f"bin{i % (shards * 4)}",  # spread keys over shards
            min_perf=floors[i % len(floors)],
            job_name=f"storm-{i}",
        )
        for i in range(clients)
    ]

    oracle_service = make_service(rows)
    oracle = {}
    for request in requests:
        key = request.key()
        if key not in oracle:
            oracle[key] = oracle_service.predict(request)

    telemetry.reset()
    router = ShardRouter()
    servers = []
    for i in range(shards):
        server = ChronusServer(
            make_service(rows), max_batch=32, max_wait_ms=1.0,
            queue_limit=max(256, worker_threads * 4),
        )
        server.start()
        servers.append(server)
        router.add_shard(f"shard{i}", LocalTransport(server))
    router.probe_once()

    answers: list = [None] * clients
    latencies = [0.0] * clients
    cursor = [0]
    lock = threading.Lock()

    def worker() -> None:
        while True:
            with lock:
                i = cursor[0]
                if i >= clients:
                    return
                cursor[0] += 1
            t0 = time.perf_counter()
            answers[i] = router.predict(requests[i])
            latencies[i] = time.perf_counter() - t0

    wall0 = time.perf_counter()
    threads = [threading.Thread(target=worker) for _ in range(worker_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=300.0)
    wall = time.perf_counter() - wall0
    fleet = router.fleet_stats()
    for server in servers:
        server.stop()

    unanswered = sum(1 for a in answers if a is None)
    shed = sum(
        1 for a in answers if a is not None and getattr(a, "code", "") == "SHED"
    )
    errors = sum(
        1
        for a in answers
        if a is not None
        and not isinstance(a, PredictResponse)
        and getattr(a, "code", "") != "SHED"
    )
    mismatches = sum(
        1
        for request, got in zip(requests, answers)
        if isinstance(got, PredictResponse)
        and (got.cores, got.threads_per_core, got.frequency)
        != (
            oracle[request.key()].cores,
            oracle[request.key()].threads_per_core,
            oracle[request.key()].frequency,
        )
    )
    ordered = sorted(latencies)
    per_shard_requests = {
        name: info["requests"] for name, info in fleet["shards"].items()
    }
    return {
        "clients": clients,
        "shards": shards,
        "worker_threads": worker_threads,
        "wall_s": wall,
        "rps": clients / wall if wall > 0 else 0.0,
        "unanswered": unanswered,
        "shed_responses_seen": shed,
        "error_responses_seen": errors,
        "mismatches": mismatches,
        "latency_s": {
            "p50": ordered[clients // 2],
            "p95": ordered[int(clients * 0.95)],
            "max": ordered[-1],
        },
        "fleet": {
            "healthy_count": fleet["healthy_count"],
            "requests_total": fleet["requests_total"],
            "failures_total": fleet["failures_total"],
            "per_shard_requests": per_shard_requests,
            "models_cached_total": fleet["models_cached_total"],
        },
    }


# ---------------------------------------------------------------------------
# sweep re-benchmark with per-worker kernel-cache reuse
# ---------------------------------------------------------------------------
def run_sweep_rebench(quick: bool) -> dict:
    from repro.core.application.sweep_executor import (
        SweepExecutor,
        resolve_worker_count,
    )
    from repro.core.domain.configuration import Configuration
    from repro.core.repositories.memory_repository import MemoryRepository
    from repro.core.runners.sweep_worker import build_sweep_points, run_sweep_point
    from repro.core.services.lscpu_info import LscpuSystemInfo
    from repro.slurm.cluster import SimCluster

    core_counts = [4, 16, 32] if quick else [4, 8, 16, 24, 28, 32]
    configs = Configuration.sweep(
        core_counts=core_counts, frequencies=[1_500_000, 2_200_000, 2_500_000]
    )
    points = build_sweep_points(configs, base_seed=33)
    # the PR7 satellite requires a >= 2-worker pool section even on
    # single-core CI hosts (reuse is per-process, not per-core)
    workers = max(2, min(4, resolve_worker_count(None)))

    def run_with(n: int):
        cluster = SimCluster(seed=33)
        executor = SweepExecutor(
            MemoryRepository(),
            LscpuSystemInfo(cluster.node),
            run_sweep_point,
            workers=n,
        )
        t0 = time.perf_counter()
        result_rows = executor.run_sweep(points)
        return result_rows, time.perf_counter() - t0

    serial_rows, serial_wall = run_with(1)
    parallel_rows, parallel_wall = run_with(workers)

    # kernel-cache reuse: the second benchmark build at one problem size
    # must reuse the shared problem (same object, warm multicolor memos)
    from repro.hpcg.benchmark import HpcgBenchmark

    nx = 20 if quick else 24
    t0 = time.perf_counter()
    first = HpcgBenchmark(nx, reuse_problem=True)
    first_build = time.perf_counter() - t0
    t0 = time.perf_counter()
    second = HpcgBenchmark(nx, reuse_problem=True)
    second_build = time.perf_counter() - t0

    return {
        "points": len(points),
        "workers": workers,
        "serial_wall_s": serial_wall,
        "parallel_wall_s": parallel_wall,
        "speedup": serial_wall / parallel_wall if parallel_wall > 0 else float("inf"),
        "identical_results": serial_rows == parallel_rows,
        "kernel_cache": {
            "nx": nx,
            "first_build_s": first_build,
            "second_build_s": second_build,
            "problem_shared": first.problem is second.problem,
            "reuse_speedup": first_build / second_build if second_build > 0 else float("inf"),
        },
    }


# ---------------------------------------------------------------------------
def render(report: dict) -> str:
    sched = report["scheduler"]
    des = report["des_storm"]
    serve = report["serving_storm"]
    sweep = report["sweep"]
    lines = [
        f"scheduler: {sched['n_nodes']} nodes x queue {sched['queue_depth']} | "
        f"reference p50 {sched['reference']['p50_ms']:.1f}ms -> incremental "
        f"p50 {sched['incremental']['p50_ms']:.2f}ms "
        f"({sched['speedup']:.1f}x, mismatches={sched['mismatches']})",
        f"des storm: {des['large']['n_jobs']} jobs / {des['large']['n_nodes']} "
        f"nodes | {des['large']['events_per_sec']:,.0f} events/s "
        f"(ratio vs 1/4 size: {des['throughput_ratio']:.2f}, "
        f"compactions={des['large']['compactions']}, "
        f"unfinished={des['large']['unfinished_jobs']})",
        f"serving storm: {serve['clients']} clients over {serve['shards']} "
        f"shards | {serve['rps']:,.0f} rps, p95 "
        f"{serve['latency_s']['p95'] * 1e3:.1f}ms, shed={serve['shed_responses_seen']}, "
        f"mismatches={serve['mismatches']}",
        f"sweep: {sweep['points']} points, pool({sweep['workers']}) "
        f"identical={sweep['identical_results']}, kernel-cache reuse "
        f"{sweep['kernel_cache']['reuse_speedup']:.1f}x",
    ]
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="CI-sized run")
    parser.add_argument("--output", default=None, help="write JSON report here")
    args = parser.parse_args(argv)

    # the scheduler-pass comparison is sub-second even at fleet size, so
    # it always runs at the ISSUE's 1,000-node / 1,000-job-queue scale;
    # only the (minutes-long) DES storm shrinks under --smoke
    if args.smoke:
        storm_nodes, storm_jobs = 200, 8_000
    else:
        storm_nodes, storm_jobs = 1_000, 100_000
    clients, shards = 10_000, 4

    report = {
        "schema": "chronus-bench-pr7/1",
        "smoke": args.smoke,
        "host": {
            "python": platform.python_version(),
            "machine": platform.machine(),
            "cpu_count": os.cpu_count(),
        },
        "scheduler": run_scheduler_bench(1_000, 1_000, 5),
        "des_storm": run_des_scaling(storm_nodes, storm_jobs),
        "serving_storm": run_serving_storm(clients, shards),
        "sweep": run_sweep_rebench(quick=args.smoke),
    }

    print(render(report))
    if args.output:
        with open(args.output, "w") as fh:
            json.dump(report, fh, indent=1, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
