"""Ablation (ours) — the smooth-min exponent of the roofline blend.

DESIGN.md section 5 calls out ``smoothmin_n`` as a design choice: it
controls how sharply memory-bandwidth saturation bends the GFLOPS surface.
The bench sweeps the exponent and reports the Spearman correlation against
the paper's measured ranking plus whether the headline winner survives —
showing the shipped (fitted) value sits in the basin that reproduces both.
"""

import pytest

from repro.analysis.calibration import predicted_efficiency, spearman_rho
from repro.analysis.tables import TextTable
from repro.hardware.cpu import AMD_EPYC_7502P
from repro.hardware.power import PowerModel
from repro.hpcg import reference
from repro.hpcg.performance_model import HpcgPerformanceModel, PerformanceParams

EXPONENTS = (0.25, PerformanceParams().smoothmin_n, 0.6, 1.0, 2.0, 4.0)


def sweep_exponents():
    power = PowerModel(AMD_EPYC_7502P)
    out = []
    for n in EXPONENTS:
        perf = HpcgPerformanceModel().with_params(smoothmin_n=n)
        predicted = predicted_efficiency(perf, power)
        winner = max(predicted, key=predicted.get)
        out.append(
            {
                "n": n,
                "rho": spearman_rho(predicted),
                "winner": winner,
                "fig1_gflops": perf.gflops(32, 2_500_000, 1),
            }
        )
    return out


def test_ablation_roofline_exponent(benchmark):
    results = benchmark(sweep_exponents)

    fitted_n = PerformanceParams().smoothmin_n
    table = TextTable(
        ["smoothmin n", "Spearman rho", "Predicted winner", "GFLOPS @ std"],
        title="\nAblation — roofline smooth-min exponent",
    )
    for r in results:
        tag = " (shipped)" if r["n"] == fitted_n else ""
        table.add_row(
            f"{r['n']:.3f}{tag}", f"{r['rho']:.4f}",
            str(r["winner"]), f"{r['fig1_gflops']:.3f}",
        )
    print(table.render())

    by_n = {r["n"]: r for r in results}
    shipped = by_n[fitted_n]
    # the shipped exponent reproduces the winner and the rank order
    assert shipped["winner"] == reference.BEST_CONFIG
    assert shipped["rho"] > 0.93
    # a hard-min-like exponent (n >= 2) distorts the absolute level badly:
    # the blend collapses onto the (far too high) memory roof
    assert abs(by_n[4.0]["fig1_gflops"] - reference.FIG1_GFLOPS) > abs(
        shipped["fig1_gflops"] - reference.FIG1_GFLOPS
    )
    # and the shipped value is the best-correlating of the sweep
    assert shipped["rho"] == pytest.approx(max(r["rho"] for r in results), abs=0.01)
