"""Figure 14 (a/b/c) + appendix Figures 17/18 — GFLOPS/W surfaces.

The paper plots GFLOPS per watt against (cores, frequency) with and without
hyper-threading and observes (1) the 32c/2.2GHz peak, (2) HT hurting at
saturation, (3) HT helping at low core counts.  The bench regenerates both
surfaces from the sweep and prints them as grids (the textual equivalent
of the surface plots), then asserts the three observations.
"""


from repro.analysis.tables import TextTable


def build_surfaces(rows):
    """(ht -> {(cores, ghz) -> efficiency}) from sweep rows."""
    surfaces = {False: {}, True: {}}
    for row in rows:
        cfg = row.configuration
        surfaces[cfg.hyperthread][(cfg.cores, cfg.frequency_ghz)] = row.gflops_per_watt
    return surfaces


def render_surface(surface, title):
    cores = sorted({c for c, _ in surface})
    freqs = sorted({f for _, f in surface})
    table = TextTable(["cores \\ GHz"] + [f"{f:.1f}" for f in freqs], title=title)
    for c in cores:
        table.add_row(c, *[f"{surface[(c, f)]:.5f}" for f in freqs])
    return table.render()


def test_fig14_gflops_per_watt_surfaces(benchmark, sweep_rows):
    surfaces = benchmark(build_surfaces, sweep_rows)

    print()
    print(render_surface(surfaces[False], "Figure 14b — GFLOPS/W without hyper-threading"))
    print()
    print(render_surface(surfaces[True], "Figure 14a — GFLOPS/W with hyper-threading"))

    no_ht = surfaces[False]
    ht = surfaces[True]

    # Observation 1: the surface peaks at 32 cores / 2.2 GHz (no-HT plot).
    peak = max(no_ht, key=no_ht.get)
    assert peak == (32, 2.2)

    # Observation 2: at full core count HT is never better (within noise).
    for f in (1.5, 2.2, 2.5):
        assert ht[(32, f)] < no_ht[(32, f)] * 1.01

    # Observation 3: at low core counts HT helps for the lower frequencies
    # (the paper calls out 7 cores).
    assert ht[(7, 2.2)] > no_ht[(7, 2.2)] * 0.995
    assert ht[(7, 1.5)] > no_ht[(7, 1.5)] * 0.995

    # Monotone rise along the core axis at fixed 2.2 GHz (surface shape).
    cores = sorted({c for c, _ in no_ht})
    values = [no_ht[(c, 2.2)] for c in cores]
    assert all(b > a * 0.98 for a, b in zip(values, values[1:]))
