"""Tables 4/5/6 — the full 138-row GFLOPS/W ranking.

The reproduction criterion is shape: the simulated ranking must correlate
strongly with the paper's measured ranking (Spearman), the extremes must
match (32-core 2.2 GHz family on top, 1-2 core 1.5 GHz rows at the bottom)
and every value must be in the right absolute ballpark.
"""

import numpy as np
import pytest

from repro.analysis.tables import TextTable
from repro.hpcg import reference


def build_full_ranking(rows):
    ranked = sorted(rows, key=lambda r: -r.gflops_per_watt)
    measured = {
        (r.configuration.cores, r.configuration.frequency_ghz, r.configuration.hyperthread):
        r.gflops_per_watt
        for r in rows
    }
    ref_vals = []
    sim_vals = []
    for p in reference.GFLOPS_PER_WATT:
        ref_vals.append(p.gflops_per_watt)
        sim_vals.append(measured[(p.cores, p.freq_ghz, p.hyperthread)])
    ref_rank = np.argsort(np.argsort(ref_vals))
    sim_rank = np.argsort(np.argsort(sim_vals))
    n = len(ref_vals)
    rho = 1.0 - 6.0 * float(np.sum((ref_rank - sim_rank) ** 2)) / (n * (n * n - 1))
    return ranked, measured, rho


def test_tables456_full_sweep(benchmark, sweep_rows):
    ranked, measured, rho = benchmark(build_full_ranking, sweep_rows)

    table = TextTable(
        ["#", "Cores", "GHz", "GFLOPS/W (sim)", "GFLOPS/W (paper)", "HT"],
        title="\nTables 4-6 reproduction — full ranking (every 6th row shown)",
    )
    for i, r in enumerate(ranked, 1):
        cfg = r.configuration
        paper = reference.lookup(cfg.cores, cfg.frequency_ghz, cfg.hyperthread)
        if i % 6 == 1 or i == len(ranked):
            table.add_row(
                i, cfg.cores, f"{cfg.frequency_ghz:.1f}",
                f"{r.gflops_per_watt:.6f}", f"{paper.gflops_per_watt:.6f}",
                cfg.hyperthread,
            )
    print(table.render())
    print(f"\nSpearman rank correlation vs paper (138 points): {rho:.4f}")

    assert len(ranked) == 138
    assert rho > 0.93

    # extremes match the paper
    top = ranked[0].configuration
    assert (top.cores, top.frequency_ghz) == (32, 2.2)
    bottom_cores = {r.configuration.cores for r in ranked[-6:]}
    assert bottom_cores <= {1, 2, 3}

    # absolute values within 40% for >=4 cores.  The paper's 1-3 core
    # rows show non-physical frequency scaling (e.g. a 39% GFLOPS/W jump
    # for a 14% frequency step at 1 core) that no calibrated physical
    # model reproduces; they are excluded from the absolute check but
    # still count in the rank correlation above (see DESIGN.md section 6).
    for p in reference.GFLOPS_PER_WATT:
        if p.cores < 4:
            continue
        sim = measured[(p.cores, p.freq_ghz, p.hyperthread)]
        assert sim == pytest.approx(p.gflops_per_watt, rel=0.40)

    # top-13 values within 7%
    for key in reference.TABLE1_RELATIVE:
        c, f, ht = key
        assert measured[key] == pytest.approx(
            reference.lookup(c, f, ht).gflops_per_watt, rel=0.07
        )
