"""Ablation (ours) — optimizer quality and cost.

The paper ships three optimizers (brute force, linear regression, random
forest) and never compares them; we add the related-work-style genetic
optimizer and compare all four on:

* **pick regret** — how much true GFLOPS/W is lost by deploying each
  optimizer's chosen configuration instead of the true optimum;
* **sparse-data regret** — the same when trained on only 1/4 of the sweep
  (the realistic production case: benchmarks are expensive);
* **fit time** — measured by pytest-benchmark on the slowest (forest).
"""

import pytest

from repro.analysis.tables import TextTable
from repro.core.optimizers import (
    BruteForceOptimizer,
    GeneticOptimizer,
    LinearRegressionOptimizer,
    RandomForestOptimizer,
)

OPTIMIZERS = [
    ("brute-force", BruteForceOptimizer),
    ("linear-regression", LinearRegressionOptimizer),
    ("random-forest", RandomForestOptimizer),
    ("genetic", GeneticOptimizer),
]


def evaluate_optimizers(rows):
    truth = {r.configuration: r.gflops_per_watt for r in rows}
    best_true = max(truth.values())
    results = {}
    for name, cls in OPTIMIZERS:
        full = cls()
        full.fit(rows)
        pick_full = full.best_configuration()
        sparse = cls()
        sparse.fit(rows[::4])
        pick_sparse = sparse.best_configuration()
        results[name] = {
            "full_pick": pick_full,
            "full_regret": 1.0 - truth[pick_full] / best_true,
            "sparse_pick": pick_sparse,
            "sparse_regret": 1.0 - truth.get(pick_sparse, 0.0) / best_true,
        }
    return results


def test_ablation_optimizer_quality(benchmark, sweep_rows):
    results = benchmark(evaluate_optimizers, sweep_rows)

    table = TextTable(
        ["Optimizer", "Pick (full sweep)", "Regret", "Pick (1/4 sweep)", "Regret"],
        title="\nAblation — optimizer pick quality (regret vs true optimum)",
    )
    for name, r in results.items():
        table.add_row(
            name,
            r["full_pick"].to_json(),
            f"{r['full_regret'] * 100:.2f}%",
            r["sparse_pick"].to_json(),
            f"{r['sparse_regret'] * 100:.2f}%",
        )
    print(table.render())

    # trained on the full sweep, nobody loses more than 2% efficiency
    for name, r in results.items():
        assert r["full_regret"] < 0.02, name
    # brute force is exact by construction on the full sweep
    assert results["brute-force"]["full_regret"] == pytest.approx(0.0, abs=1e-12)
    # on sparse data everyone still lands within 6% of the optimum
    for name, r in results.items():
        assert r["sparse_regret"] < 0.06, name


def test_ablation_forest_fit_time(benchmark, sweep_rows):
    """Fit cost of the heaviest optimizer (must stay interactive)."""

    def fit_forest():
        opt = RandomForestOptimizer(n_trees=40)
        opt.fit(sweep_rows)
        return opt

    opt = benchmark(fit_forest)
    assert opt.best_configuration().cores == 32
