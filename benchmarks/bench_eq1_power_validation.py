"""Equation 1 / Figures 13 & 16 — IPMI vs wattmeter measurement validation.

Paper: PSU 1 = 129.7 W, PSU 2 = 143.7 W (wattmeter total 273.4 W) while the
IPMI ``Total_Power`` sensor reported 258 W, a 5.96% percentage difference
normalised by the IPMI reading.
"""

import pytest

from repro.analysis.metrics import percentage_difference
from repro.analysis.tables import TextTable
from repro.hardware.node import ConstantWorkload
from repro.hpcg import reference
from repro.slurm.cluster import SimCluster


def measure_once(seed: int = 4):
    cluster = SimCluster(seed=seed)
    cluster.node.start_workload(
        ConstantWorkload(cores=32, compute_fraction=0.05, bandwidth_gbs=37.0),
        freq_min_khz=2_500_000,
    )
    cluster.sim.call_at(900.0, lambda: None)
    cluster.sim.run()
    ipmi = cluster.ipmi.total_power_watts()
    psu = cluster.wattmeter.read()
    return ipmi, psu


def test_eq1_power_validation(benchmark):
    ipmi, psu = benchmark(measure_once)
    diff = percentage_difference(ipmi, psu.total_w)

    table = TextTable(
        ["Quantity", "Measured (sim)", "Paper"],
        title="\nEquation 1 reproduction — IPMI vs wattmeter",
    )
    table.add_row("PSU 1 (W)", f"{psu.psu1_w:.1f}", "129.7")
    table.add_row("PSU 2 (W)", f"{psu.psu2_w:.1f}", "143.7")
    table.add_row("Wattmeter total (W)", f"{psu.total_w:.1f}", f"{reference.EQ1_WATTMETER_WATTS:.1f}")
    table.add_row("IPMI Total_Power (W)", f"{ipmi:.0f}", f"{reference.EQ1_IPMI_WATTS:.0f}")
    table.add_row("Percentage difference", f"{diff:.2f}%", f"{reference.EQ1_PERCENT_DIFFERENCE:.2f}%")
    print(table.render())

    assert diff == pytest.approx(reference.EQ1_PERCENT_DIFFERENCE, abs=0.8)
    # the split between PSUs is visibly imbalanced, like the paper's setup
    assert abs(psu.psu1_w - psu.psu2_w) > 5.0
