"""Sweep executor — serial vs process-pool execution of a config sweep.

Times a reduced (deterministically seeded) sweep through
:class:`~repro.core.application.sweep_executor.SweepExecutor` on one worker
and on ``min(4, os.cpu_count())`` workers, and asserts the two produce
identical rows.  The wall-clock ratio depends on the host's core count —
``scripts/run_bench_suite.py`` records it (with ``cpu_count``) into
``BENCH_PR2.json``; near-linear scaling needs a multi-core host.
"""

import os
import time

import pytest

from benchmarks.conftest import paper_configurations
from repro.analysis.tables import TextTable
from repro.core.application.sweep_executor import SweepExecutor
from repro.core.repositories.memory_repository import MemoryRepository
from repro.core.runners.sweep_worker import build_sweep_points, run_sweep_point
from repro.core.services.lscpu_info import LscpuSystemInfo
from repro.slurm.cluster import SimCluster

PARALLEL_WORKERS = min(4, os.cpu_count() or 1)


def make_executor(workers: int) -> SweepExecutor:
    cluster = SimCluster(seed=33)
    return SweepExecutor(
        MemoryRepository(),
        LscpuSystemInfo(cluster.node),
        run_sweep_point,
        workers=workers,
    )


@pytest.fixture(scope="module")
def bench_points():
    # every 6th paper configuration: 23 points, same spread of cores/freqs
    return build_sweep_points(
        paper_configurations()[::6], base_seed=33, duration_s=1200.0
    )


def test_sweep_serial(benchmark, bench_points):
    rows = benchmark.pedantic(
        lambda: make_executor(workers=1).run_sweep(bench_points),
        rounds=2,
        warmup_rounds=0,
    )
    assert len(rows) == len(bench_points)


def test_sweep_parallel_matches_serial(benchmark, bench_points):
    serial_started = time.perf_counter()
    serial = make_executor(workers=1).run_sweep(bench_points)
    serial_wall = time.perf_counter() - serial_started

    parallel = benchmark.pedantic(
        lambda: make_executor(workers=PARALLEL_WORKERS).run_sweep(bench_points),
        rounds=2,
        warmup_rounds=0,
    )
    assert parallel == serial

    table = TextTable(
        ["Path", "Workers", "Wall (s)"],
        title=f"\nSweep executor ({len(bench_points)} points, cpu_count={os.cpu_count()})",
    )
    table.add_row("serial", 1, f"{serial_wall:.3f}")
    table.add_row("parallel", PARALLEL_WORKERS, "(see benchmark stats)")
    print(table.render())
