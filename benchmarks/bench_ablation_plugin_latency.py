"""Ablation (ours) — job_submit_eco latency vs Slurm's plugin budget.

The paper pre-loads models to local disk "as Slurm has a very short time to
make a decision when a job is submitted".  This bench quantifies it: the
per-submission prediction latency with the pre-loaded (cached) model path
must sit orders of magnitude under the budget; the cold path (first
deserialization) is reported for comparison.
"""

import pytest

from repro.core.domain.configuration import Configuration
from repro.core.factory import ChronusApp
from repro.slurm.batch_script import build_script
from repro.slurm.cluster import HPCG_BINARY, SimCluster
from repro.slurm.config import SlurmConfig

SWEEP = [
    Configuration(c, t, f)
    for c in (8, 16, 32)
    for f in (1_500_000, 2_200_000, 2_500_000)
    for t in (1, 2)
]


@pytest.fixture(scope="module")
def prepared(tmp_path_factory):
    cluster = SimCluster(
        seed=5,
        config=SlurmConfig.parse("JobSubmitPlugins=eco\n"),
        hpcg_duration_s=300.0,
    )
    app = ChronusApp(cluster, str(tmp_path_factory.mktemp("ws")))
    app.benchmark_service.run_benchmarks(SWEEP, clock=app.clock)
    meta = app.init_model_service.run("random-forest", 1)
    app.load_model_service.run(meta.model_id)
    app.enable_eco_plugin()
    return cluster, app


def test_ablation_plugin_latency(benchmark, prepared):
    cluster, app = prepared
    script = build_script(8, 2_500_000, 2, HPCG_BINARY, comment="chronus",
                          time_limit="0:10:00")

    def submit_once():
        return cluster.commands.sbatch(script)

    benchmark(submit_once)

    budget = cluster.config.plugin_time_budget_s
    invocations = cluster.ctld.plugin_chain.invocations
    walls = [inv.wall_seconds for inv in invocations if inv.plugin == "eco"]
    cold, warm = walls[0], walls[-1]
    print()
    print("Ablation — job_submit_eco latency (pre-loaded random forest)")
    print(f"  plugin time budget : {budget * 1000:.0f} ms")
    print(f"  cold prediction    : {cold * 1000:.3f} ms (first call, deserialize)")
    print(f"  warm prediction    : {warm * 1000:.3f} ms (cached optimizer)")

    assert not any(inv.over_budget for inv in invocations)
    # the warm path must be far inside the budget (>50x headroom)
    assert warm < budget / 50.0
    # caching matters: warm must beat cold
    assert warm <= cold
