"""Mini-HPCG validation — the real numerics under pytest-benchmark.

Unlike every other bench (which drives the simulated cluster), this one
executes genuine floating-point work: the from-scratch multigrid-
preconditioned CG at laptop problem sizes, rating it exactly the way HPCG
does (accounted flops / wall time).  It validates both the solver and the
flop bookkeeping the simulator's ratings rely on.
"""

import pytest

from repro.analysis.tables import TextTable
from repro.hpcg.benchmark import HpcgBenchmark
from repro.hpcg.cg import pcg
from repro.hpcg.problem import generate_problem


@pytest.fixture(scope="module")
def bench24():
    return HpcgBenchmark(24, levels=3)


def test_mini_hpcg_rating(benchmark, bench24):
    rating = benchmark.pedantic(bench24.run, rounds=3, warmup_rounds=1)
    table = TextTable(
        ["Metric", "Value"], title="\nMini-HPCG (24^3, 3-level multigrid PCG)"
    )
    table.add_row("GFLOP/s", f"{rating.gflops:.4f}")
    table.add_row("iterations", rating.iterations)
    table.add_row("total flops", rating.total_flops)
    table.add_row("rel. residual", f"{rating.final_relative_residual:.2e}")
    print(table.render())

    assert rating.converged
    assert rating.gflops > 0.01
    assert rating.final_relative_residual < 1e-8


def test_mini_hpcg_flop_accounting(benchmark):
    """The accounted flops must track the analytic per-iteration count."""
    problem = generate_problem(16)

    def solve():
        return pcg(problem.matrix, problem.b, tol=1e-8, max_iter=60)

    result = benchmark(solve)
    assert result.converged
    nnz = problem.matrix.nnz
    n = problem.nrows
    iters = result.iterations
    # per unpreconditioned iteration: 1 spmv + 2 dots + 3 waxpby (+norm)
    expected_spmv = 2 * nnz * (iters + 1)  # +1 initial residual
    assert result.flops.by_kernel["spmv"] == expected_spmv
    per_iter_vec = 2 * n * (2 + 3 + 1)  # dots + waxpbys + norm
    assert result.flops.total == pytest.approx(
        expected_spmv + per_iter_vec * iters, rel=0.1
    )


def test_mini_hpcg_scaling(benchmark):
    """Rating stays in the same ballpark across problem sizes (throughput
    is size-independent once caches are exceeded)."""

    def run_sizes():
        ratings = {}
        for nx in (12, 16, 24):
            ratings[nx] = HpcgBenchmark(nx, levels=2).run(max_iter=30)
        return ratings

    ratings = benchmark.pedantic(run_sizes, rounds=1, warmup_rounds=0)
    table = TextTable(["nx", "GFLOP/s", "iterations"], title="\nMini-HPCG size scaling")
    for nx, r in ratings.items():
        table.add_row(nx, f"{r.gflops:.4f}", r.iterations)
    print(table.render())
    values = [r.gflops for r in ratings.values()]
    assert max(values) < 30 * min(values)  # same order of magnitude
    for r in ratings.values():
        assert r.converged
