"""Tests for the multifactor priority plugin and job arrays."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.slurm.batch_script import BatchScriptError, parse_array_spec
from repro.slurm.cluster import HPCG_BINARY, SimCluster
from repro.slurm.commands import parse_sbatch_output
from repro.slurm.config import SlurmConfig
from repro.slurm.job import Job, JobDescriptor, JobState
from repro.slurm.priority import (
    PriorityWeights,
    multifactor_priority,
    order_by_priority,
)


def pending_job(job_id: int, tasks: int = 4, uid: int = 1000, submit: float = 0.0) -> Job:
    return Job(
        job_id=job_id,
        descriptor=JobDescriptor(num_tasks=tasks, uid=uid),
        submit_time=submit,
    )


class TestMultifactorPriority:
    W = PriorityWeights()

    def test_age_raises_priority(self):
        old = pending_job(1, submit=0.0)
        new = pending_job(2, submit=90_000.0)
        now = 100_000.0
        assert multifactor_priority(
            old, now, total_cores=32, usage_by_uid={}, weights=self.W
        ) > multifactor_priority(
            new, now, total_cores=32, usage_by_uid={}, weights=self.W
        )

    def test_age_saturates(self):
        w = PriorityWeights(max_age_s=100.0)
        old = pending_job(1, submit=0.0)
        p1 = multifactor_priority(old, 100.0, total_cores=32, usage_by_uid={}, weights=w)
        p2 = multifactor_priority(old, 1e6, total_cores=32, usage_by_uid={}, weights=w)
        assert p1 == p2

    def test_bigger_jobs_rank_higher(self):
        small = pending_job(1, tasks=2)
        big = pending_job(2, tasks=32)
        assert multifactor_priority(
            big, 0.0, total_cores=32, usage_by_uid={}, weights=self.W
        ) > multifactor_priority(
            small, 0.0, total_cores=32, usage_by_uid={}, weights=self.W
        )

    def test_heavy_user_sinks(self):
        light = pending_job(1, uid=1000)
        heavy = pending_job(2, uid=2000)
        usage = {2000: 500_000.0}
        assert multifactor_priority(
            light, 0.0, total_cores=32, usage_by_uid=usage, weights=self.W
        ) > multifactor_priority(
            heavy, 0.0, total_cores=32, usage_by_uid=usage, weights=self.W
        )

    def test_order_stable_on_ties(self):
        jobs = [pending_job(i) for i in (1, 2, 3)]
        ordered = order_by_priority(
            jobs, 0.0, total_cores=32, usage_by_uid={}, weights=self.W
        )
        assert [j.job_id for j in ordered] == [1, 2, 3]

    def test_weights_validation(self):
        with pytest.raises(ValueError):
            PriorityWeights(max_age_s=0.0)
        with pytest.raises(ValueError):
            multifactor_priority(
                pending_job(1), 0.0, total_cores=0, usage_by_uid={}, weights=self.W
            )

    @settings(max_examples=40, deadline=None)
    @given(
        tasks=st.integers(1, 32),
        age=st.floats(0, 1e7),
        usage=st.floats(0, 1e7),
    )
    def test_priority_positive_finite(self, tasks, age, usage):
        job = pending_job(1, tasks=tasks, submit=0.0)
        p = multifactor_priority(
            job, age, total_cores=32, usage_by_uid={1000: usage},
            weights=PriorityWeights(),
        )
        assert 0.0 <= p < 1e6


class TestFairShareIntegration:
    def test_light_user_jumps_heavy_users_queue(self):
        """After uid 2000 burned the node for hours, uid 1000's queued job
        outranks uid 2000's next one."""
        cluster = SimCluster(
            seed=5,
            config=SlurmConfig.parse("PriorityType=priority/multifactor\n"),
            hpcg_duration_s=600.0,
        )
        from repro.slurm.batch_script import build_script

        # heavy user consumes the machine first
        cluster.submit_and_wait(build_script(32, 2_500_000, 1, HPCG_BINARY))
        # both users queue behind a running blocker
        blocker = parse_sbatch_output(cluster.commands.sbatch(
            build_script(32, 2_500_000, 1, HPCG_BINARY)))
        heavy_desc = JobDescriptor(num_tasks=32, binary=HPCG_BINARY, uid=1000)
        light_desc = JobDescriptor(num_tasks=32, binary=HPCG_BINARY, uid=2000)
        heavy_id = cluster.ctld.submit(heavy_desc, submit_uid=1000)
        light_id = cluster.ctld.submit(light_desc, submit_uid=2000)
        # heavy submitted first, but light (no usage) should start first
        cluster.ctld.wait_for_job(blocker)
        assert cluster.ctld.get_job(light_id).state is JobState.RUNNING
        assert cluster.ctld.get_job(heavy_id).state is JobState.PENDING


class TestArraySpecParsing:
    @pytest.mark.parametrize(
        "spec,expected",
        [
            ("0-3", (0, 1, 2, 3)),
            ("1,5,9", (1, 5, 9)),
            ("0-9:3", (0, 3, 6, 9)),
            ("0-7%2", (0, 1, 2, 3, 4, 5, 6, 7)),
            ("2,0-1", (0, 1, 2)),
            ("3,3,3", (3,)),
        ],
    )
    def test_valid_specs(self, spec, expected):
        assert parse_array_spec(spec) == expected

    @pytest.mark.parametrize("bad", ["", "a-b", "5-2", "1,,2", "0-9:0", "x"])
    def test_invalid_specs(self, bad):
        with pytest.raises(BatchScriptError):
            parse_array_spec(bad)


ARRAY_SCRIPT = f"""#!/bin/bash
#SBATCH --ntasks=8
#SBATCH --array=0-3
#SBATCH --cpu-freq=2200000
#SBATCH --time=0:05:00

srun --mpi=pmix_v4 --ntasks-per-core=1 {HPCG_BINARY}
"""


class TestJobArrays:
    def test_array_expands_to_tasks(self, sweep_cluster):
        master = parse_sbatch_output(sweep_cluster.commands.sbatch(ARRAY_SCRIPT))
        tasks = sweep_cluster.ctld.array_tasks(master)
        assert len(tasks) == 4
        assert [t.array_task_id for t in tasks] == [0, 1, 2, 3]
        assert all(t.array_job_id == master for t in tasks)

    def test_all_tasks_run_concurrently_when_cores_allow(self, sweep_cluster):
        master = parse_sbatch_output(sweep_cluster.commands.sbatch(ARRAY_SCRIPT))
        tasks = sweep_cluster.ctld.array_tasks(master)
        # 4 tasks x 8 cores = 32 cores: all fit at once
        assert all(t.state is JobState.RUNNING for t in tasks)

    def test_squeue_shows_master_index_ids(self, sweep_cluster):
        master = parse_sbatch_output(sweep_cluster.commands.sbatch(ARRAY_SCRIPT))
        text = sweep_cluster.commands.squeue()
        assert f"{master}_0" in text
        assert f"{master}_3" in text

    def test_wait_for_array(self, sweep_cluster):
        master = parse_sbatch_output(sweep_cluster.commands.sbatch(ARRAY_SCRIPT))
        tasks = sweep_cluster.ctld.wait_for_array(master)
        assert all(t.state is JobState.TIMEOUT for t in tasks)  # 5 min < 10 min run
        assert len(sweep_cluster.accounting.all()) == 4

    def test_tasks_do_not_share_descriptor(self, sweep_cluster):
        master = parse_sbatch_output(sweep_cluster.commands.sbatch(ARRAY_SCRIPT))
        tasks = sweep_cluster.ctld.array_tasks(master)
        tasks[0].descriptor.num_tasks = 99
        assert tasks[1].descriptor.num_tasks == 8

    def test_unknown_master_raises(self, sweep_cluster):
        with pytest.raises(KeyError):
            sweep_cluster.ctld.array_tasks(404)

    def test_plain_job_display_id(self, sweep_cluster):
        from repro.slurm.batch_script import build_script

        jid = parse_sbatch_output(sweep_cluster.commands.sbatch(
            build_script(4, 2_200_000, 1, HPCG_BINARY)))
        assert sweep_cluster.ctld.get_job(jid).display_id == str(jid)
