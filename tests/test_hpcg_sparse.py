"""Unit + property tests for the CSR kernels and flop accounting."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.hpcg.sparse import CsrMatrix, FlopCounter, axpby, dot


def random_coo(rng: np.random.Generator, n: int, density: float = 0.3):
    mask = rng.random((n, n)) < density
    rows, cols = np.nonzero(mask)
    vals = rng.normal(size=rows.size)
    return rows, cols, vals


class TestConstruction:
    def test_from_coo_matches_dense(self):
        rng = np.random.default_rng(0)
        rows, cols, vals = random_coo(rng, 6)
        m = CsrMatrix.from_coo(rows, cols, vals, (6, 6))
        dense = np.zeros((6, 6))
        for r, c, v in zip(rows, cols, vals):
            dense[r, c] += v
        np.testing.assert_allclose(m.todense(), dense)

    def test_duplicates_summed(self):
        m = CsrMatrix.from_coo(
            np.array([0, 0]), np.array([1, 1]), np.array([2.0, 3.0]), (2, 2)
        )
        assert m.nnz == 1
        assert m.todense()[0, 1] == 5.0

    def test_empty_matrix(self):
        m = CsrMatrix.from_coo(np.array([]), np.array([]), np.array([]), (3, 3))
        assert m.nnz == 0
        np.testing.assert_allclose(m.matvec(np.ones(3)), np.zeros(3))

    def test_columns_sorted_within_rows(self):
        rng = np.random.default_rng(1)
        rows, cols, vals = random_coo(rng, 8)
        m = CsrMatrix.from_coo(rows, cols, vals, (8, 8))
        for i in range(8):
            idx, _ = m.row(i)
            assert list(idx) == sorted(idx)

    def test_validation(self):
        with pytest.raises(ValueError):
            CsrMatrix(np.array([0, 1]), np.array([5]), np.array([1.0]), (1, 2))
        with pytest.raises(ValueError):
            CsrMatrix(np.array([1, 1]), np.array([]), np.array([]), (1, 1))
        with pytest.raises(ValueError):
            CsrMatrix(np.array([0, 2, 1]), np.array([0, 0]), np.array([1.0, 1.0]), (2, 1))


class TestMatvec:
    def test_identity(self):
        n = 5
        m = CsrMatrix.from_coo(
            np.arange(n), np.arange(n), np.ones(n), (n, n)
        )
        x = np.arange(n, dtype=float)
        np.testing.assert_allclose(m.matvec(x), x)

    def test_shape_mismatch(self):
        m = CsrMatrix.from_coo(np.array([0]), np.array([0]), np.array([1.0]), (2, 2))
        with pytest.raises(ValueError):
            m.matvec(np.ones(3))

    def test_flop_count(self):
        rng = np.random.default_rng(2)
        rows, cols, vals = random_coo(rng, 10)
        m = CsrMatrix.from_coo(rows, cols, vals, (10, 10))
        flops = FlopCounter()
        m.matvec(np.ones(10), flops)
        assert flops.total == 2 * m.nnz

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 10_000), n=st.integers(2, 12))
    def test_matches_dense_matvec(self, seed, n):
        rng = np.random.default_rng(seed)
        rows, cols, vals = random_coo(rng, n)
        m = CsrMatrix.from_coo(rows, cols, vals, (n, n))
        x = rng.normal(size=n)
        np.testing.assert_allclose(m.matvec(x), m.todense() @ x, atol=1e-12)

    def test_subset_matvec(self):
        rng = np.random.default_rng(3)
        rows, cols, vals = random_coo(rng, 10)
        m = CsrMatrix.from_coo(rows, cols, vals, (10, 10))
        x = rng.normal(size=10)
        subset = np.array([1, 4, 7])
        full = m.matvec(x)
        np.testing.assert_allclose(m.subset_matvec(subset, x), full[subset])


class TestDiagonal:
    def test_extracts_diagonal(self):
        m = CsrMatrix.from_coo(
            np.array([0, 1, 1]), np.array([0, 0, 1]), np.array([4.0, -1.0, 5.0]), (2, 2)
        )
        np.testing.assert_allclose(m.diagonal(), [4.0, 5.0])

    def test_missing_diagonal_is_zero(self):
        m = CsrMatrix.from_coo(np.array([0]), np.array([1]), np.array([1.0]), (2, 2))
        np.testing.assert_allclose(m.diagonal(), [0.0, 0.0])


class TestVectorKernels:
    def test_dot_value_and_flops(self):
        flops = FlopCounter()
        assert dot(np.array([1.0, 2.0]), np.array([3.0, 4.0]), flops) == 11.0
        assert flops.total == 4

    def test_dot_shape_mismatch(self):
        with pytest.raises(ValueError):
            dot(np.ones(2), np.ones(3))

    def test_axpby(self):
        flops = FlopCounter()
        out = axpby(2.0, np.array([1.0, 1.0]), -1.0, np.array([1.0, 2.0]), flops)
        np.testing.assert_allclose(out, [1.0, 0.0])
        assert flops.total == 4

    def test_axpby_shape_mismatch(self):
        with pytest.raises(ValueError):
            axpby(1.0, np.ones(2), 1.0, np.ones(3))


class TestFlopCounter:
    def test_accumulates_by_kernel(self):
        fc = FlopCounter()
        fc.add("spmv", 10)
        fc.add("spmv", 5)
        fc.add("dot", 2)
        assert fc.by_kernel == {"spmv": 15, "dot": 2}
        assert fc.total == 17

    def test_reset(self):
        fc = FlopCounter()
        fc.add("x", 1)
        fc.reset()
        assert fc.total == 0

    def test_merged(self):
        a = FlopCounter({"x": 1})
        b = FlopCounter({"x": 2, "y": 3})
        merged = a.merged(b)
        assert merged.by_kernel == {"x": 3, "y": 3}
        assert a.by_kernel == {"x": 1}  # originals untouched
