"""Fast-path equivalence tests: vectorized kernels vs straightforward oracles.

The PR-2 fast path vectorized ``diagonal``/``subset_matvec``/``todense``,
added cached triangular splits and memoised the multicolor Gauss–Seidel
partitions.  These tests pin the contract: identical numerics, identical
flop accounting, and genuinely shared caches.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.hpcg.problem import generate_problem
from repro.hpcg.sparse import CsrMatrix, FlopCounter
from repro.hpcg.symgs import MulticolorSymgs, symgs_multicolor, symgs_reference


def random_csr(seed: int, n: int, density: float = 0.3) -> CsrMatrix:
    rng = np.random.default_rng(seed)
    mask = rng.random((n, n)) < density
    rows, cols = np.nonzero(mask)
    vals = rng.normal(size=rows.size)
    return CsrMatrix.from_coo(rows, cols, vals, (n, n))


class TestVectorizedKernels:
    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 10_000), n=st.integers(2, 14))
    def test_diagonal_matches_dense(self, seed, n):
        m = random_csr(seed, n)
        np.testing.assert_array_equal(m.diagonal(), np.diag(m.todense()))

    def test_diagonal_with_missing_entries(self):
        # rows 0 and 2 have no diagonal entry at all
        m = CsrMatrix.from_coo(
            np.array([0, 1, 2]), np.array([1, 1, 0]), np.array([7.0, 3.0, 5.0]), (3, 3)
        )
        np.testing.assert_array_equal(m.diagonal(), [0.0, 3.0, 0.0])

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 10_000), n=st.integers(2, 14))
    def test_subset_matvec_matches_full_matvec(self, seed, n):
        m = random_csr(seed, n)
        rng = np.random.default_rng(seed + 1)
        x = rng.normal(size=n)
        rows = rng.integers(0, n, size=rng.integers(0, 2 * n))  # duplicates allowed
        full = m.matvec(x)
        np.testing.assert_allclose(m.subset_matvec(rows, x), full[rows], atol=1e-12)

    def test_subset_matvec_flops_count_only_touched_rows(self):
        m = random_csr(3, 10)
        rows = np.array([0, 3, 3, 7])
        nnz_touched = sum(int(m.indptr[i + 1] - m.indptr[i]) for i in rows)
        flops = FlopCounter()
        m.subset_matvec(rows, np.ones(10), flops)
        assert flops.by_kernel == {"spmv": 2 * nnz_touched}

    def test_subset_matvec_empty_rows(self):
        m = random_csr(4, 8)
        out = m.subset_matvec(np.array([], dtype=np.int64), np.ones(8))
        assert out.shape == (0,)


class TestTriangularSplits:
    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 10_000), n=st.integers(2, 14))
    def test_strict_triangles_partition_the_matrix(self, seed, n):
        m = random_csr(seed, n)
        dense = m.todense()
        lower = m.lower_triangle()
        upper = m.upper_triangle()
        np.testing.assert_array_equal(lower.todense(), np.tril(dense, k=-1))
        np.testing.assert_array_equal(upper.todense(), np.triu(dense, k=1))
        recombined = lower.todense() + upper.todense() + np.diag(m.diagonal())
        np.testing.assert_array_equal(recombined, dense)

    def test_splits_are_cached(self):
        m = random_csr(5, 6)
        assert m.lower_triangle() is m.lower_triangle()
        assert m.upper_triangle() is m.upper_triangle()


class TestMulticolorPartitionCache:
    def test_partitions_shared_across_smoothers(self):
        p = generate_problem(4)
        first = MulticolorSymgs(p)
        second = MulticolorSymgs(p)
        for (ia, xa, da), (ib, xb, db) in zip(first._per_color, second._per_color):
            assert ia is ib and xa is xb and da is db
        for ra, rb in zip(first.color_rows, second.color_rows):
            assert ra is rb

    def test_partitions_cover_all_rows_once(self):
        p = generate_problem(3, 5, 7)
        rows = np.concatenate([p.color_rows(c) for c in range(8)])
        assert rows.size == p.nrows
        assert np.array_equal(np.sort(rows), np.arange(p.nrows))


class TestSymgsFixedPoint:
    """Reference and multicolor sweeps share the fixed point x* = A^-1 b."""

    @pytest.mark.parametrize("dims", [(3, 5, 7), (4, 3, 6), (2, 2, 9)])
    def test_identical_fixed_points_on_asymmetric_grids(self, dims):
        p = generate_problem(*dims)
        x_ref = np.zeros(p.nrows)
        x_mc = np.zeros(p.nrows)
        for _ in range(200):
            x_ref = symgs_reference(p.matrix, p.b, x_ref)
            x_mc = symgs_multicolor(p, p.b, x_mc)
        # both converged to the system's solution (the all-ones vector)
        np.testing.assert_allclose(x_ref, p.x_exact, atol=1e-8)
        np.testing.assert_allclose(x_mc, p.x_exact, atol=1e-8)
        np.testing.assert_allclose(x_ref, x_mc, atol=1e-8)

    def test_reference_single_sweep_unchanged_by_row_cache(self):
        """One sweep must equal the textbook per-row recurrence exactly."""
        p = generate_problem(3, 4, 5)
        m, b = p.matrix, p.b
        x = np.linspace(-1.0, 1.0, p.nrows)
        expected = x.copy()
        diag = np.diag(m.todense())
        for i in range(p.nrows):
            cols, vals = m.row(i)
            expected[i] += (b[i] - np.dot(vals, expected[cols])) / diag[i]
        for i in range(p.nrows - 1, -1, -1):
            cols, vals = m.row(i)
            expected[i] += (b[i] - np.dot(vals, expected[cols])) / diag[i]
        np.testing.assert_array_equal(symgs_reference(m, b, x), expected)


class TestFlopAccounting:
    """Flop totals are analytic; the fast path must not move them a byte."""

    def test_kernel_counts_match_textbook_formulas(self):
        p = generate_problem(3, 5, 7)
        m = p.matrix
        n, nnz = p.nrows, p.nnz
        x = np.ones(n)

        flops = FlopCounter()
        m.matvec(x, flops)
        assert flops.by_kernel == {"spmv": 2 * nnz}

        flops = FlopCounter()
        symgs_reference(m, p.b, x, flops)
        assert flops.by_kernel == {"symgs": 4 * nnz}

        flops = FlopCounter()
        symgs_multicolor(p, p.b, x, flops)
        assert flops.by_kernel == {"symgs": 4 * nnz}

    def test_pcg_flop_totals_are_analytic_and_cache_invariant(self):
        """The CG driver's accounted totals are a pure function of the
        iteration count (HPCG's official accounting) — so warm caches and
        vectorized kernels cannot move them a byte.  A repeated solve on
        the same problem (every partition/diagonal cache hot) must report
        byte-identical counts, and both must equal the textbook formula."""
        from repro.hpcg.cg import pcg

        p = generate_problem(3, 5, 7)
        n, nnz = p.nrows, p.nnz

        def mc_precond(r, flops):
            return symgs_multicolor(p, r, np.zeros_like(r), flops)

        cold = pcg(p.matrix, p.b, preconditioner=mc_precond, tol=1e-10)
        warm = pcg(p.matrix, p.b, preconditioner=mc_precond, tol=1e-10)
        assert cold.iterations == warm.iterations
        assert cold.flops.by_kernel == warm.flops.by_kernel

        it = cold.iterations
        # per solve: 1+it SpMVs, it SymGS sweeps (initial + it-1 in-loop),
        # 3+2·it+(it-1) dots, 1+2·it+(it-1) WAXPBYs
        expected = {
            "spmv": 2 * nnz * (1 + it),
            "symgs": 4 * nnz * it,
            "dot": 2 * n * (3 + 2 * it + (it - 1)),
            "waxpby": 2 * n * (1 + 2 * it + (it - 1)),
        }
        assert cold.flops.by_kernel == expected
