"""Unit tests for BMC sensors, the ipmitool facade and the wattmeter."""

import pytest

from repro.analysis.metrics import percentage_difference
from repro.hardware.bmc import BoardManagementController
from repro.hardware.ipmi import IpmiPermissionError, IpmiTool
from repro.hardware.node import ConstantWorkload, SimulatedNode
from repro.hardware.wattmeter import WattMeter


@pytest.fixture
def loaded_node(sim) -> SimulatedNode:
    node = SimulatedNode(sim)
    node.start_workload(
        ConstantWorkload(cores=32, compute_fraction=0.06, bandwidth_gbs=37.4),
        freq_min_khz=2_500_000,
    )
    sim.call_at(600.0, lambda: None)
    sim.run()
    return node


class TestBmc:
    def test_sensor_names(self, loaded_node, streams):
        bmc = BoardManagementController(loaded_node, streams)
        for name in bmc.SENSORS:
            reading = bmc.read_sensor(name)
            assert reading.name == name
            assert reading.value >= 0

    def test_unknown_sensor(self, loaded_node, streams):
        bmc = BoardManagementController(loaded_node, streams)
        with pytest.raises(KeyError):
            bmc.read_sensor("GPU_Power")

    def test_power_sensors_quantised_to_watts(self, loaded_node, streams):
        bmc = BoardManagementController(loaded_node, streams)
        value = bmc.read_sensor("Total_Power").value
        assert value == int(value)

    def test_sdr_list_format(self, loaded_node, streams):
        bmc = BoardManagementController(loaded_node, streams)
        text = bmc.sdr_list()
        assert "Total_Power" in text
        assert "Watts" in text
        assert "degrees C" in text

    def test_reading_tracks_true_power(self, loaded_node, streams):
        bmc = BoardManagementController(loaded_node, streams, noise_w=0.0)
        true = loaded_node.instantaneous_power().system_w
        assert bmc.read_sensor("Total_Power").value == pytest.approx(true, abs=1.0)

    def test_power_scale_applied(self, loaded_node, streams):
        bmc = BoardManagementController(loaded_node, streams, power_scale=0.5, noise_w=0.0)
        true = loaded_node.instantaneous_power().system_w
        assert bmc.read_sensor("Total_Power").value == pytest.approx(true * 0.5, abs=1.0)

    def test_invalid_power_scale(self, loaded_node):
        with pytest.raises(ValueError):
            BoardManagementController(loaded_node, power_scale=0.0)

    def test_render_line_shape(self, loaded_node, streams):
        bmc = BoardManagementController(loaded_node, streams)
        line = bmc.read_sensor("Total_Power").render()
        assert line.startswith("Total_Power")
        assert line.endswith("Watts")
        assert "|" in line


class TestIpmiTool:
    def test_permission_denied_without_device_access(self, loaded_node, streams):
        ipmi = IpmiTool(BoardManagementController(loaded_node, streams), device_readable=False)
        with pytest.raises(IpmiPermissionError, match="chmod o\\+r /dev/ipmi0"):
            ipmi.total_power_watts()

    def test_chmod_grants_access(self, loaded_node, streams):
        ipmi = IpmiTool(BoardManagementController(loaded_node, streams), device_readable=False)
        ipmi.chmod_device(True)
        assert ipmi.total_power_watts() > 0

    def test_convenience_readers(self, loaded_node, streams):
        ipmi = IpmiTool(BoardManagementController(loaded_node, streams))
        assert ipmi.total_power_watts() > ipmi.cpu_power_watts() > 0
        assert 20 < ipmi.cpu_temp_c() < 95

    def test_sdr_list_passthrough(self, loaded_node, streams):
        ipmi = IpmiTool(BoardManagementController(loaded_node, streams))
        assert "Total_Power" in ipmi.sdr_list()


class TestWattMeter:
    def test_two_psu_split(self, loaded_node, streams):
        meter = WattMeter(loaded_node, streams)
        reading = meter.read()
        assert reading.psu1_w > 0 and reading.psu2_w > 0
        assert reading.psu1_w != reading.psu2_w  # imbalanced share

    def test_ac_side_reads_above_ipmi(self, loaded_node, streams):
        """Equation 1: the wattmeter reads ~6% above IPMI."""
        ipmi = IpmiTool(BoardManagementController(loaded_node, streams, noise_w=0.0))
        meter = WattMeter(loaded_node, streams, noise_w=0.0)
        diff = percentage_difference(ipmi.total_power_watts(), meter.total_watts())
        assert diff == pytest.approx(5.96, abs=0.5)

    def test_validation(self, loaded_node):
        with pytest.raises(ValueError):
            WattMeter(loaded_node, psu1_share=0.0)
        with pytest.raises(ValueError):
            WattMeter(loaded_node, ac_side_factor=0.0)
