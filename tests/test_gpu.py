"""Tests for the GPU frequency-tuning extension (paper section 6.2.2)."""

import pytest
from hypothesis import given, strategies as st

from repro.gpu import (
    DcgmTelemetry,
    GpuFrequencyTuner,
    GpuKernel,
    NVIDIA_A100,
    SimulatedGpu,
)
from repro.gpu.spec import GpuSpec
from repro.simkernel.random import RandomStreams


def memory_bound_kernel(work: float = 1e6) -> GpuKernel:
    """A stencil-like kernel whose memory roof sits near 850 MHz SM."""
    return GpuKernel(
        "stencil", compute_per_mhz=1.0, memory_per_mhz=0.6,
        work_units=work, smoothmin_n=16.0,
    )


def compute_bound_kernel(work: float = 1e6) -> GpuKernel:
    return GpuKernel(
        "gemm", compute_per_mhz=1.0, memory_per_mhz=5.0,
        work_units=work, smoothmin_n=16.0,
    )


@pytest.fixture
def gpu() -> SimulatedGpu:
    return SimulatedGpu(streams=RandomStreams(1), noise_sigma=0.0)


class TestGpuSpec:
    def test_a100_clock_states(self):
        assert NVIDIA_A100.max_sm_mhz == 1410
        assert NVIDIA_A100.max_mem_mhz == 1215
        assert 510 in NVIDIA_A100.sm_clocks_mhz

    def test_validate_clocks(self):
        NVIDIA_A100.validate_clocks(1410, 1215)
        with pytest.raises(ValueError, match="SM clock"):
            NVIDIA_A100.validate_clocks(1400, 1215)
        with pytest.raises(ValueError, match="memory clock"):
            NVIDIA_A100.validate_clocks(1410, 1000)

    def test_voltage_monotone(self):
        volts = [NVIDIA_A100.sm_voltage(f) for f in NVIDIA_A100.sm_clocks_mhz]
        assert volts == sorted(volts)
        assert volts[0] == NVIDIA_A100.v_min
        assert volts[-1] == NVIDIA_A100.v_max

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            GpuSpec("x", (), (810,), 250, 38, 0.7, 1.1, 100, 28)
        with pytest.raises(ValueError):
            GpuSpec("x", (1410, 510), (810,), 250, 38, 0.7, 1.1, 100, 28)
        with pytest.raises(ValueError):
            GpuSpec("x", (510,), (810,), 250, 38, 1.1, 0.7, 100, 28)


class TestGpuKernel:
    def test_throughput_below_both_roofs(self):
        k = memory_bound_kernel()
        t = k.throughput(1410, 1215)
        assert t < 1410 * k.compute_per_mhz
        assert t < 1215 * k.memory_per_mhz

    def test_memory_bound_insensitive_to_sm_at_top(self):
        k = memory_bound_kernel()
        assert k.throughput(1410, 1215) < k.throughput(1050, 1215) * 1.02

    def test_compute_bound_tracks_sm(self):
        k = compute_bound_kernel()
        assert k.throughput(1410, 1215) > 1.3 * k.throughput(1050, 1215)

    def test_validation(self):
        with pytest.raises(ValueError):
            GpuKernel("x", 0.0, 1.0, 1.0)
        with pytest.raises(ValueError):
            GpuKernel("x", 1.0, 1.0, 0.0)
        with pytest.raises(ValueError):
            GpuKernel("x", 1.0, 1.0, 1.0, utilization=0.0)


class TestSimulatedGpu:
    def test_default_clocks_are_max(self, gpu):
        assert (gpu.sm_mhz, gpu.mem_mhz) == (1410, 1215)

    def test_set_and_reset_clocks(self, gpu):
        gpu.set_application_clocks(810, 810)
        assert (gpu.sm_mhz, gpu.mem_mhz) == (810, 810)
        gpu.reset_application_clocks()
        assert (gpu.sm_mhz, gpu.mem_mhz) == (1410, 1215)

    def test_idle_vs_busy_power(self, gpu):
        assert gpu.power_w() == NVIDIA_A100.idle_w
        assert gpu.power_w(memory_bound_kernel()) > 2 * NVIDIA_A100.idle_w

    def test_power_capped_at_tdp(self, gpu):
        assert gpu.power_w(compute_bound_kernel()) <= NVIDIA_A100.tdp_w

    def test_lower_clocks_lower_power(self, gpu):
        k = memory_bound_kernel()
        p_max = gpu.power_w(k)
        gpu.set_application_clocks(810, 1215)
        assert gpu.power_w(k) < p_max

    def test_run_kernel_accounts_energy(self, gpu):
        run = gpu.run_kernel(memory_bound_kernel())
        assert run.runtime_s > 0
        assert gpu.total_energy_j == pytest.approx(run.energy_j)

    def test_runs_deterministic_per_seed(self):
        a = SimulatedGpu(streams=RandomStreams(9)).run_kernel(memory_bound_kernel())
        b = SimulatedGpu(streams=RandomStreams(9)).run_kernel(memory_bound_kernel())
        assert a.runtime_s == b.runtime_s

    @given(
        sm=st.sampled_from(NVIDIA_A100.sm_clocks_mhz),
        mem=st.sampled_from(NVIDIA_A100.mem_clocks_mhz),
    )
    def test_power_positive_and_bounded(self, sm, mem):
        gpu = SimulatedGpu(noise_sigma=0.0)
        gpu.set_application_clocks(sm, mem)
        p = gpu.power_w(memory_bound_kernel())
        assert NVIDIA_A100.idle_w < p <= NVIDIA_A100.tdp_w


class TestDcgm:
    def test_fields(self, gpu):
        telemetry = DcgmTelemetry(gpu)
        assert telemetry.field("DCGM_FI_DEV_POWER_USAGE") == NVIDIA_A100.idle_w
        assert telemetry.field("DCGM_FI_DEV_SM_CLOCK") == 1410.0
        assert telemetry.field("DCGM_FI_DEV_GPU_UTIL") == 0.0

    def test_active_kernel_changes_readings(self, gpu):
        telemetry = DcgmTelemetry(gpu)
        telemetry.set_active_kernel(memory_bound_kernel())
        assert telemetry.field("DCGM_FI_DEV_GPU_UTIL") == 100.0
        assert telemetry.field("DCGM_FI_DEV_POWER_USAGE") > NVIDIA_A100.idle_w

    def test_energy_in_millijoules(self, gpu):
        telemetry = DcgmTelemetry(gpu)
        run = gpu.run_kernel(memory_bound_kernel())
        assert telemetry.field("DCGM_FI_DEV_TOTAL_ENERGY_CONSUMPTION") == pytest.approx(
            run.energy_j * 1000.0
        )

    def test_unknown_field(self, gpu):
        with pytest.raises(KeyError):
            DcgmTelemetry(gpu).field("DCGM_FI_DEV_FAN_SPEED")


class TestGpuFrequencyTuner:
    def test_reproduces_cited_28_percent_for_1_percent(self, gpu):
        """Paper 6.2.2: '28% energy for 1% performance loss' [Abe et al.]."""
        result = GpuFrequencyTuner(gpu).tune(memory_bound_kernel(), max_perf_loss=0.01)
        assert 0.24 <= result.energy_saving_fraction <= 0.33
        assert result.perf_loss_fraction <= 0.01
        # the tuner drops the SM clock, not the memory clock (the kernel
        # is memory bound)
        assert result.best.sm_mhz < NVIDIA_A100.max_sm_mhz
        assert result.best.mem_mhz == NVIDIA_A100.max_mem_mhz

    def test_compute_bound_kernel_keeps_max_clocks(self, gpu):
        result = GpuFrequencyTuner(gpu).tune(compute_bound_kernel(), max_perf_loss=0.01)
        assert result.best.sm_mhz == NVIDIA_A100.max_sm_mhz
        assert result.energy_saving_fraction < 0.05

    def test_bigger_budget_bigger_saving(self, gpu):
        tight = GpuFrequencyTuner(gpu).tune(memory_bound_kernel(), max_perf_loss=0.01)
        loose = GpuFrequencyTuner(gpu).tune(memory_bound_kernel(), max_perf_loss=0.20)
        assert loose.energy_saving_fraction >= tight.energy_saving_fraction

    def test_sweep_covers_all_pairs(self, gpu):
        runs = GpuFrequencyTuner(gpu).sweep(memory_bound_kernel())
        assert len(runs) == len(NVIDIA_A100.sm_clocks_mhz) * len(NVIDIA_A100.mem_clocks_mhz)

    def test_sweep_restores_clocks(self, gpu):
        gpu.set_application_clocks(810, 810)
        GpuFrequencyTuner(gpu).sweep(memory_bound_kernel())
        assert (gpu.sm_mhz, gpu.mem_mhz) == (810, 810)

    def test_never_picks_worse_than_baseline(self, gpu):
        result = GpuFrequencyTuner(gpu).tune(memory_bound_kernel(), max_perf_loss=0.0)
        assert result.energy_saving_fraction >= 0.0

    def test_negative_budget_rejected(self, gpu):
        with pytest.raises(ValueError):
            GpuFrequencyTuner(gpu).tune(memory_bound_kernel(), max_perf_loss=-0.1)
