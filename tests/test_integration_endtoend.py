"""Integration tests: the paper's full workflow on one simulated cluster.

The sequence of the paper's Figure 4: benchmark -> init-model ->
load-model -> (user sbatch with --comment "chronus") -> job_submit_eco
asks Chronus -> the job runs with the energy-efficient configuration.
"""

import json

import pytest

from repro.core.domain.configuration import Configuration
from repro.core.factory import ChronusApp
from repro.slurm.batch_script import build_script
from repro.slurm.cluster import HPCG_BINARY, SimCluster
from repro.slurm.commands import parse_sbatch_output
from repro.slurm.config import SlurmConfig
from repro.slurm.job import JobState

SWEEP = [
    Configuration(c, t, f)
    for c in (8, 16, 28, 32)
    for f in (1_500_000, 2_200_000, 2_500_000)
    for t in (1, 2)
]


@pytest.fixture
def eco_cluster(tmp_path):
    """Cluster with the eco plugin enabled + a fully-prepared ChronusApp."""
    cluster = SimCluster(
        seed=11,
        config=SlurmConfig.parse("JobSubmitPlugins=eco\n"),
        hpcg_duration_s=300.0,
    )
    app = ChronusApp(cluster, str(tmp_path / "ws"))
    app.benchmark_service.run_benchmarks(SWEEP, clock=app.clock)
    meta = app.init_model_service.run("brute-force", 1, created_at=app.clock())
    app.load_model_service.run(meta.model_id)
    app.enable_eco_plugin()
    # switch back to completion-mode jobs for the "user" submissions
    cluster.hpcg_duration_s = None
    return cluster, app


class TestPaperWorkflow:
    def test_benchmarks_persisted(self, eco_cluster):
        _, app = eco_cluster
        rows = app.repository.benchmarks_for_system(1, "hpcg")
        assert len(rows) == len(SWEEP)

    def test_opted_in_job_gets_rewritten(self, eco_cluster):
        cluster, _ = eco_cluster
        script = build_script(
            8, 2_500_000, 2, HPCG_BINARY, comment="chronus", job_name="user-job"
        )
        job_id = parse_sbatch_output(cluster.commands.sbatch(script))
        job = cluster.ctld.get_job(job_id)
        # the plugin must have overridden the user's wasteful request with
        # the benchmark winner: 32 cores @ 2.2 GHz.  The HT/no-HT gap at 32
        # cores is <1% in the paper — inside measurement noise — so either
        # threads_per_core is an acceptable outcome of a noisy sweep.
        assert job.descriptor.num_tasks == 32
        assert job.descriptor.threads_per_core in (1, 2)
        assert job.descriptor.cpu_freq_min == 2_200_000
        assert job.descriptor.cpu_freq_max == 2_200_000

    def test_non_opted_job_untouched(self, eco_cluster):
        cluster, _ = eco_cluster
        script = build_script(8, 2_500_000, 2, HPCG_BINARY, job_name="plain")
        job_id = parse_sbatch_output(cluster.commands.sbatch(script))
        job = cluster.ctld.get_job(job_id)
        assert job.descriptor.num_tasks == 8
        assert job.descriptor.cpu_freq_min == 2_500_000

    def test_rewritten_job_actually_runs_at_config(self, eco_cluster):
        cluster, _ = eco_cluster
        script = build_script(8, 2_500_000, 2, HPCG_BINARY, comment="chronus")
        job_id = parse_sbatch_output(cluster.commands.sbatch(script))
        job = cluster.ctld.get_job(job_id)
        assert job.state is JobState.RUNNING
        core = job.descriptor and next(iter(cluster.node.allocated_core_ids()))
        freq = cluster.node.read_file(
            f"/sys/devices/system/cpu/cpu{core}/cpufreq/scaling_cur_freq"
        )
        assert freq.strip() == "2200000"
        finished = cluster.ctld.wait_for_job(job_id)
        assert finished.state is JobState.COMPLETED

    def test_eco_job_saves_energy_vs_standard(self, eco_cluster):
        """The headline: the eco-scheduled run consumes ~10% less energy."""
        cluster, _ = eco_cluster
        eco_job = cluster.submit_and_wait(
            build_script(32, 2_500_000, 1, HPCG_BINARY, comment="chronus")
        )
        std_job = cluster.submit_and_wait(
            build_script(32, 2_500_000, 1, HPCG_BINARY)
        )
        saving = 1.0 - eco_job.consumed_energy_j / std_job.consumed_energy_j
        assert 0.07 < saving < 0.14
        # and it costs only a little time (paper: ~2%)
        slowdown = eco_job.elapsed_s / std_job.elapsed_s - 1.0
        assert 0.0 < slowdown < 0.06

    def test_plugin_state_deactivated_via_settings(self, eco_cluster):
        cluster, app = eco_cluster
        app.settings_service.set_state("deactivated")
        app.sync_plugin_state()
        script = build_script(8, 2_500_000, 2, HPCG_BINARY, comment="chronus")
        job_id = parse_sbatch_output(cluster.commands.sbatch(script))
        assert cluster.ctld.get_job(job_id).descriptor.num_tasks == 8

    def test_plugin_state_activated_applies_to_all(self, eco_cluster):
        cluster, app = eco_cluster
        app.settings_service.set_state("activated")
        app.sync_plugin_state()
        script = build_script(8, 2_500_000, 2, HPCG_BINARY, job_name="no-comment")
        job_id = parse_sbatch_output(cluster.commands.sbatch(script))
        assert cluster.ctld.get_job(job_id).descriptor.num_tasks == 32

    def test_perf_floor_comment_picks_faster_config(self, eco_cluster):
        """'chronus perf=0.99' must refuse the 2% slowdown of 2.2 GHz and
        fall back to the fastest family (2.5 GHz)."""
        cluster, _ = eco_cluster
        script = build_script(
            8, 1_500_000, 2, HPCG_BINARY, comment="chronus perf=0.99"
        )
        job_id = parse_sbatch_output(cluster.commands.sbatch(script))
        job = cluster.ctld.get_job(job_id)
        assert job.descriptor.cpu_freq_max == 2_500_000
        assert job.descriptor.num_tasks == 32

    def test_loose_perf_floor_keeps_efficiency_winner(self, eco_cluster):
        cluster, _ = eco_cluster
        script = build_script(
            8, 1_500_000, 2, HPCG_BINARY, comment="chronus perf=0.90"
        )
        job_id = parse_sbatch_output(cluster.commands.sbatch(script))
        job = cluster.ctld.get_job(job_id)
        assert job.descriptor.cpu_freq_max == 2_200_000

    def test_plugin_latency_within_budget(self, eco_cluster):
        """Predictions must fit Slurm's plugin time budget (pre-loaded
        model, no repository access)."""
        cluster, _ = eco_cluster
        script = build_script(8, 2_500_000, 2, HPCG_BINARY, comment="chronus")
        cluster.commands.sbatch(script)
        invocations = cluster.ctld.plugin_chain.invocations
        assert invocations
        assert all(not inv.over_budget for inv in invocations)
        assert all(inv.wall_seconds < 0.5 for inv in invocations)


class TestChronusDownResilience:
    def test_submission_survives_missing_model(self, tmp_path):
        """eco plugin enabled but no model loaded: jobs pass through."""
        cluster = SimCluster(seed=2, config=SlurmConfig.parse("JobSubmitPlugins=eco\n"))
        app = ChronusApp(cluster, str(tmp_path / "ws"))
        app.enable_eco_plugin()
        script = build_script(8, 2_500_000, 1, HPCG_BINARY, comment="chronus")
        job_id = parse_sbatch_output(cluster.commands.sbatch(script))
        job = cluster.ctld.get_job(job_id)
        assert job.descriptor.num_tasks == 8  # unmodified
        assert job.state is JobState.RUNNING


class TestSqlitePersistenceAcrossApps:
    def test_second_app_sees_first_apps_data(self, tmp_path):
        """Each CLI invocation is a fresh process; state must persist in
        the workspace (database + blob + settings)."""
        ws = str(tmp_path / "ws")
        c1 = SimCluster(seed=1, hpcg_duration_s=300.0)
        app1 = ChronusApp(c1, ws)
        app1.benchmark_service.run_benchmarks(SWEEP[:4], clock=app1.clock)
        meta = app1.init_model_service.run("linear-regression", 1)
        app1.load_model_service.run(meta.model_id)

        c2 = SimCluster(seed=2)
        app2 = ChronusApp(c2, ws)
        assert len(app2.repository.benchmarks_for_system(1, "hpcg")) == 4
        cfg = json.loads(app2.slurm_config(1, 0))
        assert set(cfg) == {"cores", "threads_per_core", "frequency"}
