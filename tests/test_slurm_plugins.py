"""Tests for simple_hash, the plugin chain, and job_submit_eco."""

import json
import time

import pytest
from hypothesis import given, strategies as st

from repro.slurm.job import JobDescriptor
from repro.slurm.plugins.base import (
    SLURM_ERROR,
    SLURM_SUCCESS,
    JobSubmitPlugin,
    PluginChain,
)
from repro.slurm.plugins.chash import simple_hash
from repro.slurm.plugins.eco import JobSubmitEco, PluginState, system_hash_from_node


class TestSimpleHash:
    def test_known_value(self):
        # djb2 with seed 53871: hash("a") = 53871*33 + 97
        assert simple_hash("a") == 53871 * 33 + 97

    def test_empty_string_is_seed(self):
        assert simple_hash("") == 53871

    def test_deterministic(self):
        assert simple_hash("chronus") == simple_hash("chronus")

    def test_different_inputs_differ(self):
        assert simple_hash("/bin/a") != simple_hash("/bin/b")

    def test_nul_terminates(self):
        assert simple_hash("abc\x00def") == simple_hash("abc")

    def test_bytes_accepted(self):
        assert simple_hash(b"abc") == simple_hash("abc")

    @given(st.text(max_size=200))
    def test_fits_in_64_bits(self, text):
        assert 0 <= simple_hash(text) < 2**64

    @given(st.text(min_size=1, max_size=50))
    def test_prefix_changes_hash(self, text):
        assert simple_hash("x" + text) != simple_hash(text)


class _Recorder(JobSubmitPlugin):
    name = "recorder"

    def __init__(self):
        self.calls = 0

    def job_submit(self, job_desc, submit_uid):
        self.calls += 1
        return SLURM_SUCCESS


class _Rejector(JobSubmitPlugin):
    name = "rejector"

    def job_submit(self, job_desc, submit_uid):
        return SLURM_ERROR


class _Crasher(JobSubmitPlugin):
    name = "crasher"

    def job_submit(self, job_desc, submit_uid):
        raise RuntimeError("plugin bug")


class _Sleeper(JobSubmitPlugin):
    name = "sleeper"

    def job_submit(self, job_desc, submit_uid):
        time.sleep(0.02)
        return SLURM_SUCCESS


class TestPluginChain:
    def test_success_path(self):
        chain = PluginChain()
        rec = _Recorder()
        chain.register(rec)
        rc, msg = chain.run(JobDescriptor(), 1000)
        assert rc == SLURM_SUCCESS
        assert rec.calls == 1

    def test_rejection_aborts_chain(self):
        chain = PluginChain()
        rec = _Recorder()
        chain.register(_Rejector())
        chain.register(rec)
        rc, msg = chain.run(JobDescriptor(), 1000)
        assert rc == SLURM_ERROR
        assert rec.calls == 0

    def test_exception_treated_as_rejection(self):
        chain = PluginChain()
        chain.register(_Crasher())
        rc, msg = chain.run(JobDescriptor(), 1000)
        assert rc == SLURM_ERROR
        assert "plugin bug" in msg

    def test_duplicate_registration_rejected(self):
        chain = PluginChain()
        chain.register(_Recorder())
        with pytest.raises(ValueError):
            chain.register(_Recorder())

    def test_time_budget_warning(self):
        chain = PluginChain(time_budget_s=0.001)
        chain.register(_Sleeper())
        rc, _ = chain.run(JobDescriptor(), 1000)
        assert rc == SLURM_SUCCESS  # slow, not fatal
        assert chain.invocations[-1].over_budget
        assert any("stalled" in line for line in chain.log)

    def test_invocations_recorded(self):
        chain = PluginChain()
        chain.register(_Recorder())
        chain.run(JobDescriptor(name="abc"), 1000)
        inv = chain.invocations[0]
        assert inv.plugin == "recorder"
        assert inv.job_name == "abc"
        assert inv.wall_seconds >= 0


class _StubProvider:
    """ChronusConfigProvider stub."""

    def __init__(self, payload):
        self.payload = payload
        self.calls = []

    def slurm_config(self, system_id, binary_hash, min_perf=None):
        self.calls.append((system_id, binary_hash, min_perf))
        if isinstance(self.payload, Exception):
            raise self.payload
        return self.payload


GOOD = json.dumps({"cores": 32, "threads_per_core": 1, "frequency": 2_200_000})


class TestParseChronusComment:

    @staticmethod
    def parse(comment):
        from repro.slurm.plugins.eco import parse_chronus_comment

        return parse_chronus_comment(comment)

    def test_plain_opt_in(self):
        assert self.parse("chronus") == (True, None)
        assert self.parse("  ChRoNuS  ") == (True, None)

    def test_perf_floor(self):
        assert self.parse("chronus perf=0.95") == (True, 0.95)

    def test_not_opted_in(self):
        assert self.parse("") == (False, None)
        assert self.parse("my job") == (False, None)
        assert self.parse("perf=0.9") == (False, None)

    def test_malformed_perf_still_opts_in(self):
        assert self.parse("chronus perf=fast") == (True, None)
        assert self.parse("chronus perf=2.0") == (True, None)
        assert self.parse("chronus perf=0") == (True, None)

    def test_unknown_tokens_ignored(self):
        assert self.parse("chronus deadline=soon perf=0.9") == (True, 0.9)

    def test_perf_zero_opts_in_without_floor(self):
        # perf=0 would mean "no performance at all"; treat as absent
        assert self.parse("chronus perf=0") == (True, None)

    def test_perf_above_one_rejected_as_floor(self):
        assert self.parse("chronus perf=1.5") == (True, None)

    def test_perf_exactly_one_accepted(self):
        assert self.parse("chronus perf=1.0") == (True, 1.0)

    def test_mixed_case_tokens(self):
        assert self.parse("ChRoNuS PeRf=0.9") == (True, 0.9)

    def test_duplicate_perf_tokens_last_wins(self):
        assert self.parse("chronus perf=0.8 perf=0.9") == (True, 0.9)

    def test_duplicate_with_trailing_malformed_keeps_valid(self):
        # a later malformed token must not wipe an earlier valid floor
        assert self.parse("chronus perf=0.8 perf=oops") == (True, 0.8)


class TestJobSubmitEco:
    def test_opt_in_via_comment(self, node):
        plugin = JobSubmitEco(node, _StubProvider(GOOD))
        desc = JobDescriptor(comment="chronus", binary="/opt/hpcg/xhpcg")
        assert plugin.job_submit(desc, 1000) == SLURM_SUCCESS
        assert desc.num_tasks == 32
        assert desc.threads_per_core == 1
        assert desc.cpu_freq_min == desc.cpu_freq_max == 2_200_000

    def test_no_comment_means_untouched(self, node):
        provider = _StubProvider(GOOD)
        plugin = JobSubmitEco(node, provider)
        desc = JobDescriptor(num_tasks=4, binary="/opt/hpcg/xhpcg")
        plugin.job_submit(desc, 1000)
        assert desc.num_tasks == 4
        assert provider.calls == []

    def test_activated_state_applies_to_all(self, node):
        plugin = JobSubmitEco(node, _StubProvider(GOOD), PluginState("activated"))
        desc = JobDescriptor(num_tasks=4, binary="/x")
        plugin.job_submit(desc, 1000)
        assert desc.num_tasks == 32

    def test_deactivated_state_blocks_even_opted_in(self, node):
        plugin = JobSubmitEco(node, _StubProvider(GOOD), PluginState("deactivated"))
        desc = JobDescriptor(num_tasks=4, comment="chronus", binary="/x")
        plugin.job_submit(desc, 1000)
        assert desc.num_tasks == 4

    def test_invalid_state_rejected(self):
        with pytest.raises(ValueError):
            PluginState("sometimes")

    def test_provider_failure_leaves_job_unmodified(self, node):
        logs = []
        plugin = JobSubmitEco(
            node, _StubProvider(RuntimeError("chronus down")), log=logs.append
        )
        desc = JobDescriptor(num_tasks=4, comment="chronus", binary="/x")
        assert plugin.job_submit(desc, 1000) == SLURM_SUCCESS
        assert desc.num_tasks == 4
        assert any("unmodified" in line for line in logs)

    def test_garbage_json_leaves_job_unmodified(self, node):
        plugin = JobSubmitEco(node, _StubProvider("not json"))
        desc = JobDescriptor(num_tasks=4, comment="chronus", binary="/x")
        assert plugin.job_submit(desc, 1000) == SLURM_SUCCESS
        assert desc.num_tasks == 4

    def test_implausible_config_rejected(self, node):
        bad = json.dumps({"cores": 0, "threads_per_core": 1, "frequency": 2_200_000})
        plugin = JobSubmitEco(node, _StubProvider(bad))
        desc = JobDescriptor(num_tasks=4, comment="chronus", binary="/x")
        plugin.job_submit(desc, 1000)
        assert desc.num_tasks == 4

    def test_system_hash_from_proc_files(self, node):
        h = system_hash_from_node(node)
        expected = simple_hash(
            node.read_file("/proc/cpuinfo") + node.read_file("/proc/meminfo")
        )
        assert h == expected

    def test_system_hash_cached(self, node):
        plugin = JobSubmitEco(node, _StubProvider(GOOD))
        assert plugin.system_hash() == plugin.system_hash()

    def test_perf_floor_forwarded_to_provider(self, node):
        provider = _StubProvider(GOOD)
        plugin = JobSubmitEco(node, provider)
        desc = JobDescriptor(comment="chronus perf=0.97", binary="/x")
        plugin.job_submit(desc, 1000)
        assert provider.calls[0][2] == 0.97

    def test_provider_receives_hashes(self, node):
        provider = _StubProvider(GOOD)
        plugin = JobSubmitEco(node, provider)
        desc = JobDescriptor(comment="chronus", binary="/opt/hpcg/xhpcg")
        plugin.job_submit(desc, 1000)
        system_id, binary_hash, min_perf = provider.calls[0]
        assert system_id == system_hash_from_node(node)
        assert binary_hash == simple_hash("/opt/hpcg/xhpcg")
        assert min_perf is None


class TestValidateChronusConfig:
    """Schema validation of the slurm-config JSON answer."""

    @staticmethod
    def validate(raw, node):
        from repro.slurm.plugins.eco import validate_chronus_config

        return validate_chronus_config(raw, node)

    def errors(self):
        from repro.core.domain.errors import ConfigValidationError

        return ConfigValidationError

    def test_good_config_passes(self, node):
        assert self.validate(GOOD, node) == (32, 1, 2_200_000)

    def test_negative_cores_rejected(self, node):
        bad = json.dumps({"cores": -1, "threads_per_core": 1, "frequency": 2_200_000})
        with pytest.raises(self.errors(), match="cores=-1"):
            self.validate(bad, node)

    def test_cores_above_node_rejected(self, node):
        bad = json.dumps({"cores": 64, "threads_per_core": 1, "frequency": 2_200_000})
        with pytest.raises(self.errors(), match="cores=64"):
            self.validate(bad, node)

    @pytest.mark.parametrize("missing", ["cores", "threads_per_core", "frequency"])
    def test_missing_key_rejected(self, node, missing):
        config = {"cores": 32, "threads_per_core": 1, "frequency": 2_200_000}
        del config[missing]
        with pytest.raises(self.errors(), match=missing):
            self.validate(json.dumps(config), node)

    def test_non_dict_json_rejected(self, node):
        with pytest.raises(self.errors(), match="JSON object"):
            self.validate(json.dumps([32, 1, 2_200_000]), node)

    def test_invalid_json_rejected(self, node):
        with pytest.raises(self.errors(), match="not valid JSON"):
            self.validate('{"cores": "all of them"', node)

    def test_boolean_value_rejected(self, node):
        bad = json.dumps({"cores": True, "threads_per_core": 1, "frequency": 2_200_000})
        with pytest.raises(self.errors(), match="must be a number"):
            self.validate(bad, node)

    def test_fractional_value_rejected(self, node):
        bad = json.dumps(
            {"cores": 1.5, "threads_per_core": 1, "frequency": 2_200_000}
        )
        with pytest.raises(self.errors(), match="integer"):
            self.validate(bad, node)

    def test_string_value_rejected(self, node):
        bad = json.dumps(
            {"cores": "32", "threads_per_core": 1, "frequency": 2_200_000}
        )
        with pytest.raises(self.errors(), match="number"):
            self.validate(bad, node)

    def test_smt_depth_beyond_cpu_rejected(self, node):
        bad = json.dumps({"cores": 32, "threads_per_core": 4, "frequency": 2_200_000})
        with pytest.raises(self.errors(), match="threads_per_core=4"):
            self.validate(bad, node)

    def test_frequency_outside_window_rejected(self, node):
        for freq in (999, 9_999_999):
            bad = json.dumps({"cores": 32, "threads_per_core": 1, "frequency": freq})
            with pytest.raises(self.errors(), match="frequency"):
                self.validate(bad, node)

    def test_negative_cores_leaves_job_unmodified(self, node):
        bad = json.dumps({"cores": -1, "threads_per_core": 1, "frequency": 2_200_000})
        plugin = JobSubmitEco(node, _StubProvider(bad))
        desc = JobDescriptor(num_tasks=4, comment="chronus", binary="/x")
        assert plugin.job_submit(desc, 1000) == SLURM_SUCCESS
        assert desc.num_tasks == 4


class TestEcoResilience:
    """Deadline + breaker wiring on the predict path."""

    def test_slow_provider_hits_deadline_and_falls_back(self, node):
        clock = {"now": 0.0}

        class _SlowProvider:
            def slurm_config(self, system_id, binary_hash, min_perf=None):
                clock["now"] += 1.0  # predict takes 1s of plugin time
                return GOOD

        plugin = JobSubmitEco(
            node, _SlowProvider(), predict_budget_s=0.1,
            clock=lambda: clock["now"],
        )
        desc = JobDescriptor(num_tasks=4, comment="chronus", binary="/x")
        assert plugin.job_submit(desc, 1000) == SLURM_SUCCESS
        assert desc.num_tasks == 4  # too-late answer discarded

    def test_breaker_opens_after_consecutive_failures(self, node):
        provider = _StubProvider(RuntimeError("chronus down"))
        plugin = JobSubmitEco(node, provider)
        for i in range(10):
            desc = JobDescriptor(num_tasks=4, comment="chronus", binary="/x")
            assert plugin.job_submit(desc, 1000) == SLURM_SUCCESS
            assert desc.num_tasks == 4
        # threshold is 3: later submissions stop calling the provider
        assert len(provider.calls) == 3

    def test_breaker_recovers_after_timeout(self, node):
        from repro.resilience import CircuitBreaker

        now = {"t": 0.0}
        breaker = CircuitBreaker(
            "eco_predict", failure_threshold=1, recovery_timeout_s=5.0,
            clock=lambda: now["t"],
        )
        provider = _StubProvider(RuntimeError("down"))
        plugin = JobSubmitEco(node, provider, breaker=breaker)
        desc = JobDescriptor(num_tasks=4, comment="chronus", binary="/x")
        plugin.job_submit(desc, 1000)  # fails, breaker opens
        plugin.job_submit(desc, 1000)  # short-circuit
        assert len(provider.calls) == 1
        provider.payload = GOOD  # chronus comes back
        now["t"] = 6.0  # past recovery timeout: half-open probe
        desc2 = JobDescriptor(num_tasks=4, comment="chronus", binary="/x")
        plugin.job_submit(desc2, 1000)
        assert desc2.num_tasks == 32
        assert len(provider.calls) == 2


class TestPluginStateConcurrency:
    def test_concurrent_set_state_always_valid(self, node):
        import threading

        state = PluginState("user")
        plugin = JobSubmitEco(node, _StubProvider(GOOD), state)
        stop = threading.Event()
        seen = []
        errors = []

        def flipper(value):
            while not stop.is_set():
                state.set(value)

        def submitter():
            try:
                for i in range(200):
                    desc = JobDescriptor(
                        num_tasks=4, comment="chronus", binary="/x"
                    )
                    rc = plugin.job_submit(desc, 1000)
                    assert rc == SLURM_SUCCESS
                    seen.append(state.state)
            except Exception as exc:  # pragma: no cover - the failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=flipper, args=("activated",)),
            threading.Thread(target=flipper, args=("deactivated",)),
            threading.Thread(target=submitter),
        ]
        for t in threads:
            t.start()
        threads[2].join()
        stop.set()
        for t in threads[:2]:
            t.join()
        assert not errors
        assert set(seen) <= {"user", "activated", "deactivated"}
