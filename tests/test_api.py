"""The unified public API surface (repro.api): error table, tokens,
op registry, typed payloads, OpenAPI round-trip."""

from __future__ import annotations

import dataclasses
import json
import os

import pytest

import repro.core  # noqa: F401  (resolves the repro.slurm import cycle)
from repro.api.auth import SCOPES, TokenAuthority, scope_allows
from repro.api.errors import (
    ERROR_TABLE,
    ErrorEnvelope,
    envelope_for,
    exit_code_for,
    http_status_for,
)
from repro.api.openapi import generate_openapi, schema_for
from repro.api.registry import OpRegistry
from repro.api.types import API_TYPES, JobInfo, JobSubmitRequest
from repro.core.domain import errors as domain_errors
from repro.core.domain.errors import (
    ChronusError,
    CircuitOpenError,
    ForbiddenError,
    ModelNotFoundError,
    NoLeaderError,
    ProtocolError,
    UnauthenticatedError,
)


class TestErrorTable:
    def test_every_domain_error_is_mapped(self):
        """The one-table satellite: nothing in errors.__all__ may be
        missing, so a new domain error without a wire identity fails CI."""
        for name in domain_errors.__all__:
            cls = getattr(domain_errors, name)
            assert cls in ERROR_TABLE, f"{name} has no ErrorSpec"

    def test_codes_and_statuses_are_sane(self):
        codes = [spec.code for spec in ERROR_TABLE.values()]
        assert len(codes) == len(set(codes)), "duplicate wire codes"
        for spec in ERROR_TABLE.values():
            assert 400 <= spec.http_status <= 599
            assert spec.kind in ("user", "internal", "transient")

    def test_transient_errors_are_retryable(self):
        env = envelope_for(CircuitOpenError("open"))
        assert env.retryable is True
        assert env.http_status == 503
        env = envelope_for(ModelNotFoundError("nope"))
        assert env.retryable is False
        assert env.http_status == 404

    def test_mro_walk_resolves_subclasses(self):
        class FancyTimeout(domain_errors.PredictTimeoutError):
            pass

        env = envelope_for(FancyTimeout("late"))
        assert env.code == "PREDICT_TIMEOUT"

    def test_submit_error_mapped_by_name_without_import(self):
        """SubmitError lives in the slurm layer; the table matches it by
        class name so repro.api never imports upward."""
        from repro.slurm.controller import SubmitError

        env = envelope_for(SubmitError("too many tasks"))
        assert env.code == "SUBMIT_REJECTED"
        assert env.http_status == 400
        assert env.exit_code == 2

    def test_unknown_exception_falls_back_to_internal(self):
        env = envelope_for(RuntimeError("boom"))
        assert env.code == "INTERNAL"
        assert env.http_status == 500
        assert env.exit_code == 1

    def test_exit_codes_user_vs_internal(self):
        # user errors: exit 2 (bad input, not our bug)
        assert exit_code_for(ModelNotFoundError("x")) == 2
        assert exit_code_for(ProtocolError("x")) == 2
        # internal/transient: exit 1
        assert exit_code_for(ChronusError("x")) == 1
        assert exit_code_for(NoLeaderError("x")) == 1

    def test_envelope_wire_shape_matches_chronus2(self):
        d = envelope_for(UnauthenticatedError("no token")).to_dict()
        assert set(d) == {"error", "message", "retryable"}
        assert d["error"] == "UNAUTHORIZED"

    def test_http_status_reverse_lookup(self):
        assert http_status_for("NO_LEADER") == 503
        assert http_status_for("SHED") == 429
        assert http_status_for("SOMETHING_NEW") == 500

    def test_dependency_errors_have_stable_wire_codes(self):
        """PR10 satellite: a malformed --dependency is a typed user error
        (REST 400, CLI exit 2) and a cycle is a 409 with its own code."""
        env = envelope_for(domain_errors.DependencyError("bad spec"))
        assert (env.code, env.http_status, env.exit_code) == ("DEPENDENCY", 400, 2)
        env = envelope_for(domain_errors.DependencyCycleError("loop"))
        assert (env.code, env.http_status, env.exit_code) == (
            "DEPENDENCY_CYCLE", 409, 2,
        )
        # a cycle is still a dependency error to an MRO walk, but the
        # subclass row must win
        assert issubclass(
            domain_errors.DependencyCycleError, domain_errors.DependencyError
        )


class TestTokens:
    def test_round_trip(self):
        authority = TokenAuthority("s3cret")
        token = authority.issue("alice", "submit", ttl_s=60.0)
        claims = authority.verify(token)
        assert claims.principal == "alice"
        assert claims.scope == "submit"

    def test_expired_token_rejected(self):
        now = [1000.0]
        authority = TokenAuthority("s3cret", clock=lambda: now[0])
        token = authority.issue("bob", "read", ttl_s=10.0)
        now[0] = 1011.0
        with pytest.raises(UnauthenticatedError, match="expired"):
            authority.verify(token)

    def test_tampered_signature_rejected(self):
        authority = TokenAuthority("s3cret")
        token = authority.issue("eve", "admin")
        head, payload, sig = token.split(".")
        with pytest.raises(UnauthenticatedError, match="signature"):
            authority.verify(f"{head}.{payload}.{sig[:-2]}xx")

    def test_tampered_payload_rejected(self):
        import base64

        authority = TokenAuthority("s3cret")
        token = authority.issue("eve", "read")
        head, payload, sig = token.split(".")
        raw = base64.urlsafe_b64decode(payload + "=" * (-len(payload) % 4))
        upgraded = raw.replace(b'"read"', b'"admin"')
        forged = base64.urlsafe_b64encode(upgraded).rstrip(b"=").decode()
        with pytest.raises(UnauthenticatedError):
            authority.verify(f"{head}.{forged}.{sig}")

    def test_wrong_secret_rejected(self):
        token = TokenAuthority("one").issue("x", "read")
        with pytest.raises(UnauthenticatedError):
            TokenAuthority("two").verify(token)

    def test_malformed_tokens_rejected(self):
        authority = TokenAuthority("s3cret")
        for bad in ("", "garbage", "v1.only-two", "v2.a.b", "v1.!!!.sig"):
            with pytest.raises(UnauthenticatedError):
                authority.verify(bad)

    def test_scope_ordering(self):
        assert scope_allows("admin", "read")
        assert scope_allows("submit", "read")
        assert not scope_allows("read", "submit")
        assert not scope_allows("nonsense", "read")
        assert SCOPES == ("read", "submit", "admin")

    def test_require_enforces_scope(self):
        authority = TokenAuthority("s3cret")
        token = authority.issue("carol", "read")
        with pytest.raises(ForbiddenError, match="requires 'submit'"):
            authority.require(token, "submit")
        assert authority.require(token, "read").principal == "carol"

    def test_unknown_scope_refused_at_issue(self):
        with pytest.raises(ValueError):
            TokenAuthority("s3cret").issue("x", "root")


class TestOpRegistry:
    def test_dispatch_wraps_standard_envelope(self):
        ops = OpRegistry("test daemon")

        @ops.register("ping")
        def _ping(target, probe):
            return {"healthy": True}

        answer = json.loads(ops.dispatch(object(), {"op": "ping"}))
        assert answer == {
            "proto": "chronus/2", "ok": True, "op": "ping", "healthy": True,
        }

    def test_unknown_op_lists_known_ops(self):
        ops = OpRegistry("test daemon")
        answer = json.loads(ops.dispatch(object(), {"op": "warp"}))
        assert answer["error"] == "INVALID"
        assert "test daemon" in answer["message"]

    def test_duplicate_registration_refused(self):
        ops = OpRegistry("test daemon")
        ops.register("x")(lambda t, p: {})
        with pytest.raises(ValueError):
            ops.register("x")(lambda t, p: {})

    def test_chronus_error_resolves_through_envelope(self):
        ops = OpRegistry("test daemon")

        @ops.register("boom")
        def _boom(target, probe):
            raise NoLeaderError("nobody home")

        answer = json.loads(ops.dispatch(object(), {"op": "boom"}))
        assert answer["error"] == "NO_LEADER"
        assert answer["retryable"] is True

    def test_handler_bug_still_answers(self):
        ops = OpRegistry("test daemon")

        @ops.register("bug")
        def _bug(target, probe):
            raise ZeroDivisionError("oops")

        answer = json.loads(ops.dispatch(object(), {"op": "bug"}))
        assert answer["error"] == "INTERNAL"

    def test_string_result_passes_verbatim(self):
        ops = OpRegistry("test daemon")

        @ops.register("relay")
        def _relay(target, probe):
            return '{"already": "encoded"}'

        assert ops.dispatch(object(), {"op": "relay"}) == '{"already": "encoded"}'

    def test_daemons_use_the_registry(self):
        from repro.serving.router import ROUTER_OPS
        from repro.serving.server import SERVER_OPS

        assert SERVER_OPS.ops() == ["ping", "reload", "shutdown"]
        assert ROUTER_OPS.ops() == ["fleet", "ping", "shutdown"]


class TestV1CompatFlag:
    def test_default_accepts_v1_with_warning(self, monkeypatch):
        from repro.serving.protocol import PROTO_V1, decode_request_dict

        monkeypatch.delenv("CHRONUS_PROTO_V1", raising=False)
        with pytest.warns(DeprecationWarning, match="removed"):
            request, proto = decode_request_dict(
                {"system_id": 1, "binary_hash": "abc"}
            )
        assert proto == PROTO_V1

    def test_disabled_refuses_v1_with_removal_note(self, monkeypatch):
        from repro.serving.protocol import decode_request_dict

        monkeypatch.setenv("CHRONUS_PROTO_V1", "0")
        with pytest.raises(ProtocolError, match="removed in the next major"):
            decode_request_dict({"system_id": 1, "binary_hash": "abc"})

    def test_v2_unaffected_by_flag(self, monkeypatch):
        from repro.serving.protocol import PROTO_V2, decode_request_dict

        monkeypatch.setenv("CHRONUS_PROTO_V1", "0")
        _, proto = decode_request_dict(
            {"proto": PROTO_V2, "system_id": 1, "binary_hash": "abc"}
        )
        assert proto == PROTO_V2


class TestApiTypes:
    def test_round_trip(self):
        req = JobSubmitRequest(name="j", binary="/bin/x", num_tasks=4)
        assert JobSubmitRequest.from_dict(req.to_dict()) == req

    def test_missing_required_field(self):
        with pytest.raises(ProtocolError, match="required field 'binary'"):
            JobSubmitRequest.from_dict({"name": "j"})

    def test_wrong_type_names_the_field(self):
        with pytest.raises(ProtocolError, match="num_tasks"):
            JobSubmitRequest.from_dict(
                {"name": "j", "binary": "/bin/x", "num_tasks": "four"}
            )

    def test_bool_does_not_pass_as_int(self):
        with pytest.raises(ProtocolError, match="num_tasks"):
            JobSubmitRequest.from_dict(
                {"name": "j", "binary": "/bin/x", "num_tasks": True}
            )

    def test_unknown_fields_tolerated(self):
        req = JobSubmitRequest.from_dict(
            {"name": "j", "binary": "/bin/x", "from_the_future": 1}
        )
        assert req.name == "j"

    def test_arrays_become_tuples(self):
        req = JobSubmitRequest.from_dict(
            {"name": "j", "binary": "/bin/x", "array": [0, 1, 2]}
        )
        assert req.array == (0, 1, 2)

    def test_optional_fields(self):
        info = JobInfo.from_dict(
            {"job_id": 1, "name": "j", "state": "PENDING", "submit_time": 0.0}
        )
        assert info.start_time is None
        d = info.to_dict()
        assert d["node_list"] == []

    def test_non_object_rejected(self):
        with pytest.raises(ProtocolError, match="JSON object"):
            JobSubmitRequest.from_dict([1, 2, 3])

    def test_dependency_spec_parsed_into_descriptor(self):
        req = JobSubmitRequest.from_dict({
            "name": "j", "binary": "/bin/x",
            "dependency": "afterok:3:5,afterany:7", "workflow_id": "wf-1",
        })
        desc = req.to_descriptor()
        assert desc.dependency == (
            ("afterok", 3), ("afterok", 5), ("afterany", 7)
        )
        assert desc.workflow == "wf-1"

    def test_malformed_dependency_is_a_typed_error(self):
        req = JobSubmitRequest.from_dict(
            {"name": "j", "binary": "/bin/x", "dependency": "after:nope"}
        )
        with pytest.raises(domain_errors.DependencyError):
            req.to_descriptor()

    def test_workflow_info_round_trip(self):
        from repro.api.types import WorkflowInfo, WorkflowList

        info = WorkflowInfo(
            workflow_id="wf-1", job_ids=(1, 2), jobs=2, completed=1,
            failed=1, total_energy_j=42.5, attempts=3, models=("7:v2",),
        )
        assert WorkflowInfo.from_dict(info.to_dict()) == info
        wl = WorkflowList(workflows=(info,), next_cursor="abc")
        assert WorkflowList.from_dict(wl.to_dict()) == wl


class TestOpenApi:
    def test_committed_spec_round_trips(self):
        """docs/openapi.json is generated, never hand-edited: the
        committed file must equal generate_openapi() exactly."""
        path = os.path.join(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            "docs",
            "openapi.json",
        )
        with open(path) as fh:
            committed = json.load(fh)
        assert committed == json.loads(
            json.dumps(generate_openapi(), sort_keys=True)
        )

    def test_every_route_is_in_the_spec(self):
        from repro.restd.gateway import ROUTES

        spec = generate_openapi()
        for route in ROUTES:
            operation = spec["paths"][route.openapi_path()][route.method.lower()]
            assert operation["x-required-scope"] == route.scope

    def test_every_api_type_has_a_schema(self):
        spec = generate_openapi()
        for cls in API_TYPES:
            assert cls.__name__ in spec["components"]["schemas"]
        assert "Error" in spec["components"]["schemas"]

    def test_schema_marks_required_fields(self):
        schema = schema_for(JobSubmitRequest)
        assert schema["required"] == ["name", "binary"]
        assert schema["properties"]["array"] == {
            "type": "array", "items": {"type": "integer"},
        }

    def test_schemas_cover_all_dataclass_fields(self):
        for cls in API_TYPES:
            schema = schema_for(cls)
            assert set(schema["properties"]) == {
                f.name for f in dataclasses.fields(cls)
            }


class TestCliEnvelope:
    def test_user_error_exits_2_with_code(self, capsys, tmp_path):
        from repro.core.cli.main import main

        rc = main(["--workspace", str(tmp_path), "slurm-config", "1"])
        assert rc == 2
        err = capsys.readouterr().err
        assert err.startswith("error[MODEL_NOT_FOUND]:")

    def test_envelope_parses_as_code_then_message(self):
        env = ErrorEnvelope("NO_LEADER", "nobody", 503, "transient")
        assert env.exit_code == 1
        assert env.to_dict()["retryable"] is True
