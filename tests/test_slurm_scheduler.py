"""Unit + property tests for FIFO and EASY-backfill scheduling."""

from hypothesis import given, settings, strategies as st

from repro.slurm.job import Job, JobDescriptor
from repro.slurm.scheduler import NodeView, backfill_schedule, fifo_schedule


def make_job(job_id: int, tasks: int, limit_s: int = 600) -> Job:
    return Job(
        job_id=job_id,
        descriptor=JobDescriptor(name=f"j{job_id}", num_tasks=tasks, time_limit_s=limit_s),
        submit_time=0.0,
    )


def node(free: int, running=None, total: int = 32) -> NodeView:
    return NodeView(name="node001", total_cores=total, free_cores=free,
                    running=list(running or []))


class TestFifo:
    def test_places_in_order(self):
        jobs = [make_job(1, 8), make_job(2, 8)]
        placements = fifo_schedule(jobs, [node(32)])
        assert [p.job.job_id for p in placements] == [1, 2]

    def test_stops_at_first_blocker(self):
        jobs = [make_job(1, 30), make_job(2, 30), make_job(3, 1)]
        placements = fifo_schedule(jobs, [node(32)])
        # job 2 does not fit; strict FIFO must NOT start job 3
        assert [p.job.job_id for p in placements] == [1]
        assert jobs[1].pending_reason == "Resources"

    def test_empty_queue(self):
        assert fifo_schedule([], [node(32)]) == []


class TestBackfill:
    def test_behaves_like_fifo_when_everything_fits(self):
        jobs = [make_job(1, 8), make_job(2, 8), make_job(3, 8)]
        placements = backfill_schedule(jobs, [node(32)], 0.0, default_limit_s=600)
        assert [p.job.job_id for p in placements] == [1, 2, 3]

    def test_backfills_short_job(self):
        # running job frees 32 cores at t=1000; head needs 32.
        running = [(1000.0, 32)]
        jobs = [make_job(1, 32, limit_s=600), make_job(2, 4, limit_s=500)]
        # free cores 0 -> nothing can start, not even the backfill candidate
        placements = backfill_schedule(jobs, [node(0, running)], 0.0, default_limit_s=600)
        assert placements == []

    def test_backfill_uses_leftover_cores(self):
        # 8 cores free now; running 24-core job ends at t=1000.
        # head needs 32 -> shadow at t=1000.  A 4-core job ending before
        # t=1000 may backfill.
        running = [(1000.0, 24)]
        jobs = [make_job(1, 32), make_job(2, 4, limit_s=900)]
        placements = backfill_schedule(jobs, [node(8, running)], 0.0, default_limit_s=600)
        assert [p.job.job_id for p in placements] == [2]

    def test_backfill_rejects_long_job_that_would_delay_head(self):
        running = [(1000.0, 24)]
        jobs = [make_job(1, 32), make_job(2, 4, limit_s=2000)]
        placements = backfill_schedule(jobs, [node(8, running)], 0.0, default_limit_s=600)
        assert placements == []
        assert jobs[1].pending_reason == "Priority"

    def test_long_backfill_ok_if_head_leaves_room(self):
        # head needs 20 of 32; once the running 28-core job ends at t=1000
        # there are 32 free, head takes 20, leaving 12 -> a long 4-core job
        # can backfill even though it outlives the shadow time.
        running = [(1000.0, 28)]
        jobs = [make_job(1, 20), make_job(2, 4, limit_s=10_000)]
        placements = backfill_schedule(jobs, [node(4, running)], 0.0, default_limit_s=600)
        assert [p.job.job_id for p in placements] == [2]

    def test_multiple_backfills_respect_extra_budget(self):
        running = [(1000.0, 28)]
        # extra at shadow = 32 - 20 = 12; three long 4-core jobs: all fit in
        # the 4 free cores? no — only one fits the *current* 4 free cores.
        jobs = [make_job(1, 20)] + [make_job(i, 4, limit_s=10_000) for i in (2, 3, 4)]
        placements = backfill_schedule(jobs, [node(4, running)], 0.0, default_limit_s=600)
        assert [p.job.job_id for p in placements] == [2]

    @settings(max_examples=60, deadline=None)
    @given(
        sizes=st.lists(st.integers(1, 32), min_size=1, max_size=10),
        limits=st.lists(st.integers(60, 7200), min_size=10, max_size=10),
        free=st.integers(0, 32),
    )
    def test_head_job_never_delayed(self, sizes, limits, free):
        """EASY invariant: backfilled jobs never push the head job's start.

        Equivalent check: every backfill either finishes by the head's
        shadow time or fits in the cores the head leaves free then.
        """
        running = [(500.0, 32 - free)] if free < 32 else []
        jobs = [make_job(i + 1, s, limits[i % len(limits)]) for i, s in enumerate(sizes)]
        view = node(free, running)
        placements = backfill_schedule(jobs, [view], 0.0, default_limit_s=600)
        placed_ids = {p.job.job_id for p in placements}
        # find the head (first unplaced job in FIFO order)
        head = next((j for j in jobs if j.job_id not in placed_ids), None)
        if head is None:
            return  # everything ran; nothing to protect
        # total cores used by placements must not exceed what was free
        used = sum(j.descriptor.num_tasks for j in jobs if j.job_id in placed_ids)
        assert used <= free
        # shadow time: when enough cores free up for the head, assuming
        # FIFO-placed jobs run to their limits
        # (the detailed arithmetic is inside the scheduler; here we check
        # the observable core-conservation invariant)
        assert head.descriptor.num_tasks > free - used or used == free


class TestNoOversubscription:
    @settings(max_examples=60, deadline=None)
    @given(sizes=st.lists(st.integers(1, 16), min_size=1, max_size=12))
    def test_placements_fit_free_cores(self, sizes):
        jobs = [make_job(i + 1, s) for i, s in enumerate(sizes)]
        placements = backfill_schedule(jobs, [node(32)], 0.0, default_limit_s=600)
        used = sum(p.job.descriptor.num_tasks for p in placements)
        assert used <= 32

    def test_fifo_never_oversubscribes(self):
        jobs = [make_job(i, 10) for i in range(1, 6)]
        placements = fifo_schedule(jobs, [node(32)])
        assert sum(p.job.descriptor.num_tasks for p in placements) <= 32
