"""ShardRouter: rendezvous key stability, failover, fleet aggregation."""

import json

import pytest

from repro import telemetry
from repro.core.domain.errors import ProtocolError
from repro.serving.protocol import (
    ErrorResponse,
    PredictRequest,
    PredictResponse,
)
from repro.serving.router import ShardRouter, shard_score


class StubTransport:
    """In-memory worker double: answers with its own name, or fails."""

    def __init__(self, name: str):
        self.name = name
        self.fail = False
        self.calls = 0

    def predict(self, request: PredictRequest):
        self.calls += 1
        if self.fail:
            raise ProtocolError(f"{self.name} is down")
        return PredictResponse(
            cores=32, threads_per_core=1, frequency=2_500_000,
            model_type=self.name,
        )


def make_router(n: int, probe_failures: int = 1):
    router = ShardRouter(probe_failures=probe_failures)
    stubs = {}
    for i in range(n):
        stub = StubTransport(f"shard{i}")
        stubs[stub.name] = stub
        router.add_shard(stub.name, stub)
    return router, stubs


def keyspace(count: int = 200):
    return [(f"sys{i % 7}", f"bin{i}") for i in range(count)]


class TestRendezvousRouting:
    def test_deterministic(self):
        router, _ = make_router(4)
        for system, binary in keyspace(50):
            assert router.route(system, binary) == router.route(system, binary)

    def test_matches_score_function(self):
        router, _ = make_router(4)
        for system, binary in keyspace(50):
            want = max(
                (shard_score(system, binary, f"shard{i}"), f"shard{i}")
                for i in range(4)
            )[1]
            assert router.route(system, binary) == want

    def test_spreads_load(self):
        router, _ = make_router(4)
        owners = {router.route(s, b) for s, b in keyspace(200)}
        assert len(owners) == 4  # every shard owns part of the keyspace

    def test_join_moves_only_won_keys(self):
        router, _ = make_router(4)
        keys = keyspace(300)
        before = {k: router.route(*k) for k in keys}
        router.add_shard("shard4", StubTransport("shard4"))
        after = {k: router.route(*k) for k in keys}
        moved = {k for k in keys if before[k] != after[k]}
        # rendezvous: a key moves ONLY to the joining shard, never between
        # incumbents, and roughly 1/5 of the keyspace moves
        assert all(after[k] == "shard4" for k in moved)
        assert 0 < len(moved) < len(keys) / 2

    def test_leave_moves_only_lost_keys(self):
        router, _ = make_router(4)
        keys = keyspace(300)
        before = {k: router.route(*k) for k in keys}
        router.remove_shard("shard2")
        after = {k: router.route(*k) for k in keys}
        for k in keys:
            if before[k] == "shard2":
                assert after[k] != "shard2"  # remapped to its runner-up
            else:
                assert after[k] == before[k]  # unaffected keys stay put

    def test_add_duplicate_and_remove_unknown(self):
        router, _ = make_router(2)
        with pytest.raises(ValueError):
            router.add_shard("shard0", StubTransport("shard0"))
        with pytest.raises(KeyError):
            router.remove_shard("nope")


class TestFailover:
    def test_failover_to_runner_up(self):
        router, stubs = make_router(3, probe_failures=1)
        request = PredictRequest(system_id="sysA", binary_hash="binA")
        owner = router.route("sysA", "binA")
        stubs[owner].fail = True
        answer = router.predict(request)
        assert isinstance(answer, PredictResponse)
        assert answer.model_type != owner
        # the owner is now marked dead; the runner-up serves future keys
        assert owner not in router.healthy_shards()

    def test_dead_shard_revives_on_probe(self):
        router, stubs = make_router(2, probe_failures=1)
        request = PredictRequest(system_id="sysA", binary_hash="binA")
        owner = router.route("sysA", "binA")
        stubs[owner].fail = True
        router.predict(request)
        assert owner not in router.healthy_shards()
        stubs[owner].fail = False
        health = router.probe_once()
        assert health[owner] is True
        assert router.route("sysA", "binA") == owner  # keys move back

    def test_probe_failures_threshold(self):
        router, stubs = make_router(2, probe_failures=3)
        request = PredictRequest(system_id="sysA", binary_hash="binA")
        owner = router.route("sysA", "binA")
        stubs[owner].fail = True
        router.predict(request)
        router.predict(request)
        assert owner in router.healthy_shards()  # 2 < threshold
        router.predict(request)
        assert owner not in router.healthy_shards()

    def test_all_dead_answers_retryable_internal(self):
        router, stubs = make_router(2, probe_failures=1)
        for stub in stubs.values():
            stub.fail = True
        answer = router.predict(
            PredictRequest(system_id="sysA", binary_hash="binA")
        )
        assert isinstance(answer, ErrorResponse)
        assert answer.code == "INTERNAL"
        assert answer.retryable is True

    def test_no_shards_at_all(self):
        router = ShardRouter()
        answer = router.predict(
            PredictRequest(system_id="sysA", binary_hash="binA")
        )
        assert isinstance(answer, ErrorResponse)
        assert answer.retryable is True

    def test_live_traffic_revives_marked_dead_shard(self):
        router, stubs = make_router(1, probe_failures=1)
        stub = stubs["shard0"]
        stub.fail = True
        request = PredictRequest(system_id="sysA", binary_hash="binA")
        router.predict(request)
        assert router.healthy_shards() == []
        stub.fail = False  # worker restarted; no probe has run yet
        answer = router.predict(request)
        assert isinstance(answer, PredictResponse)
        assert router.healthy_shards() == ["shard0"]


class TestFleetWire:
    def test_predict_over_wire(self):
        router, _ = make_router(3)
        answer = json.loads(
            router.handle_wire(
                PredictRequest(system_id="sysA", binary_hash="binA").to_json()
            )
        )
        assert answer["proto"] == "chronus/2"
        assert answer["cores"] == 32

    def test_fleet_op_aggregates(self):
        router, stubs = make_router(3)
        for i in range(10):
            router.predict(PredictRequest(system_id=f"s{i}", binary_hash=i))
        stats = json.loads(router.handle_wire('{"op": "fleet"}'))
        assert stats["ok"] is True
        assert stats["shard_count"] == 3
        assert stats["healthy_count"] == 3
        assert stats["requests_total"] == 10
        assert sum(s["requests"] for s in stats["shards"].values()) == 10

    def test_ping_answers_at_router(self):
        router, _ = make_router(2)
        answer = json.loads(router.handle_wire('{"op": "ping"}'))
        assert answer["role"] == "router"
        assert answer["shards"] == 2

    def test_shutdown_sets_event(self):
        router, _ = make_router(1)
        json.loads(router.handle_wire('{"op": "shutdown"}'))
        assert router.shutdown_requested.is_set()

    def test_invalid_json_is_explicit_error(self):
        router, _ = make_router(1)
        answer = json.loads(router.handle_wire("{nope"))
        assert answer["error"] == "INVALID"

    def test_unknown_op(self):
        router, _ = make_router(1)
        answer = json.loads(router.handle_wire('{"op": "dance"}'))
        assert answer["error"] == "INVALID"

    def test_telemetry_counters(self):
        telemetry.set_registry(telemetry.MetricsRegistry())
        try:
            router, stubs = make_router(2, probe_failures=1)
            owner = router.route("sysA", "binA")
            stubs[owner].fail = True
            router.predict(PredictRequest(system_id="sysA", binary_hash="binA"))
            snap = telemetry.snapshot()

            def counter(name):
                entry = telemetry.find_metric(snap, "counters", name)
                return entry["value"] if entry else 0.0

            assert counter("router_requests_total") == 1
            assert counter("router_failover_total") == 1
        finally:
            telemetry.set_registry(telemetry.MetricsRegistry())


class TestEpochFencing:
    """HA leader failover: stale-epoch shards must never serve again."""

    def test_set_fleet_epoch_fences_stale_shards(self):
        router, _ = make_router(3)
        assert router.fleet_epoch == 0
        assert router.set_fleet_epoch(2) == 3  # all three fenced
        assert router.fleet_epoch == 2
        assert router.healthy_shards() == []

    def test_epoch_cannot_move_backwards(self):
        router, _ = make_router(1)
        router.set_fleet_epoch(3)
        with pytest.raises(ValueError):
            router.set_fleet_epoch(2)

    def test_stale_registration_rejected(self):
        router, _ = make_router(1)
        router.set_fleet_epoch(3)
        with pytest.raises(ValueError):
            router.add_shard("late", StubTransport("late"), epoch=2)

    def test_reregistration_at_newer_epoch_replaces(self):
        router, stubs = make_router(2)
        router.set_fleet_epoch(1)
        assert router.healthy_shards() == []
        router.add_shard("shard0", stubs["shard0"], epoch=1)
        assert router.healthy_shards() == ["shard0"]
        # same-epoch duplicate registration is still an error
        with pytest.raises(ValueError):
            router.add_shard("shard0", stubs["shard0"], epoch=1)

    def test_probe_does_not_revive_fenced_shard(self):
        router, _ = make_router(2, probe_failures=1)
        router.set_fleet_epoch(1)
        # the workers answer pings fine — but they belong to a dead leader
        health = router.probe_once()
        assert health == {"shard0": False, "shard1": False}
        assert router.healthy_shards() == []

    def test_revival_racing_takeover_is_rejected(self):
        # the failure mode from the HA drill: a shard goes dark, the
        # control plane fails over (epoch bump + re-register survivors),
        # then the dark shard comes back answering under the old epoch —
        # live-traffic revival must NOT let it serve
        router, stubs = make_router(2, probe_failures=1)
        request = PredictRequest(system_id="sysA", binary_hash="binA")
        owner = router.route("sysA", "binA")
        other = "shard1" if owner == "shard0" else "shard0"
        stubs[owner].fail = True
        router.predict(request)  # owner marked dead
        assert owner not in router.healthy_shards()
        # leader failover: new epoch, only the surviving shard re-registers
        router.set_fleet_epoch(1)
        router.add_shard(other, stubs[other], epoch=1)
        stubs[owner].fail = False  # zombie back online, answering
        stubs[owner].calls = 0
        answer = router.predict(request)
        assert isinstance(answer, PredictResponse)
        assert answer.model_type == other  # served by the survivor
        assert stubs[owner].calls == 0  # zombie never asked
        assert owner not in router.healthy_shards()

    def test_note_success_never_revives_stale_shard(self):
        router, stubs = make_router(1, probe_failures=1)
        shard = router._shards["shard0"]
        router.set_fleet_epoch(5)
        assert shard.healthy is False
        router._note_success(shard)
        assert shard.healthy is False

    def test_fleet_stats_reports_epochs(self):
        router, stubs = make_router(1)
        router.set_fleet_epoch(2)
        router.add_shard("shard9", StubTransport("shard9"), epoch=2)
        stats = router.fleet_stats()
        assert stats["fleet_epoch"] == 2
        assert stats["shards"]["shard0"]["epoch"] == 0
        assert stats["shards"]["shard9"]["epoch"] == 2
