"""Unit tests for cpufreq policies and governors."""

import pytest

from repro.hardware.cpu import AMD_EPYC_7502P
from repro.hardware.dvfs import CpufreqPolicy, Governor


@pytest.fixture
def policy() -> CpufreqPolicy:
    return CpufreqPolicy(AMD_EPYC_7502P)


class TestGovernorParsing:
    def test_parse_known(self):
        assert Governor.parse("performance") is Governor.PERFORMANCE
        assert Governor.parse("  OnDemand ") is Governor.ONDEMAND

    def test_parse_unknown(self):
        with pytest.raises(ValueError, match="unknown governor"):
            Governor.parse("turbo")


class TestPerformanceGovernor:
    def test_default_is_max(self, policy):
        assert policy.governor is Governor.PERFORMANCE
        assert policy.current_freq_khz == 2_500_000

    def test_respects_max_bound(self, policy):
        policy.set_bounds(max_khz=2_200_000)
        assert policy.update(1.0) == 2_200_000


class TestPowersaveGovernor:
    def test_picks_min(self, policy):
        policy.set_governor(Governor.POWERSAVE)
        assert policy.update(1.0) == 1_500_000

    def test_respects_min_bound(self, policy):
        policy.set_governor(Governor.POWERSAVE)
        policy.set_bounds(min_khz=2_200_000)
        assert policy.update(1.0) == 2_200_000


class TestUserspaceGovernor:
    def test_setpoint(self, policy):
        policy.set_userspace(2_200_000)
        assert policy.current_freq_khz == 2_200_000

    def test_setpoint_snaps_to_pstate(self, policy):
        policy.set_userspace(2_000_000)
        assert policy.current_freq_khz == 2_200_000

    def test_setpoint_clamped_to_window(self, policy):
        policy.set_bounds(max_khz=2_200_000)
        policy.set_userspace(2_500_000)
        assert policy.current_freq_khz == 2_200_000


class TestOndemandGovernor:
    def test_steps_to_max_on_high_util(self, policy):
        policy.set_governor(Governor.ONDEMAND)
        policy.set_bounds(min_khz=1_500_000)
        assert policy.update(0.95) == 2_500_000

    def test_steps_down_on_low_util(self, policy):
        policy.set_governor(Governor.ONDEMAND)
        policy.update(0.95)  # at max
        assert policy.update(0.1) == 2_200_000
        assert policy.update(0.1) == 1_500_000
        assert policy.update(0.1) == 1_500_000  # floor

    def test_holds_in_between(self, policy):
        policy.set_governor(Governor.ONDEMAND)
        policy.update(0.95)
        assert policy.update(0.6) == 2_500_000  # between thresholds: hold

    def test_rejects_bad_utilization(self, policy):
        policy.set_governor(Governor.ONDEMAND)
        with pytest.raises(ValueError):
            policy.update(1.5)
        with pytest.raises(ValueError):
            policy.update(-0.1)


class TestBounds:
    def test_cpu_freq_window(self, policy):
        policy.set_bounds(min_khz=2_200_000, max_khz=2_200_000)
        assert policy.allowed_freqs() == [2_200_000]

    def test_window_snaps_requested_values(self, policy):
        policy.set_bounds(min_khz=2_100_000, max_khz=2_300_000)
        assert policy.allowed_freqs() == [2_200_000]

    def test_invalid_window_rejected(self, policy):
        with pytest.raises(ValueError):
            policy.set_bounds(min_khz=2_500_000, max_khz=1_500_000)

    def test_reset_restores_defaults(self, policy):
        policy.set_bounds(min_khz=1_500_000, max_khz=1_500_000)
        policy.set_governor(Governor.POWERSAVE)
        policy.reset()
        assert policy.governor is Governor.PERFORMANCE
        assert policy.current_freq_khz == 2_500_000
        assert policy.allowed_freqs() == [1_500_000, 2_200_000, 2_500_000]

    def test_current_clamped_when_window_shrinks(self, policy):
        assert policy.current_freq_khz == 2_500_000
        policy.set_bounds(max_khz=1_500_000)
        assert policy.current_freq_khz == 1_500_000
