"""Repository contract tests — one suite, all three implementations."""

import pytest

from repro.core.domain.benchmark import BenchmarkResult
from repro.core.domain.configuration import Configuration
from repro.core.domain.errors import ModelNotFoundError, SystemNotFoundError
from repro.core.domain.model import ModelMetadata
from repro.core.domain.system_info import SystemInfo
from repro.core.repositories.csv_repository import CsvRepository
from repro.core.repositories.memory_repository import MemoryRepository
from repro.core.repositories.sqlite_repository import SqliteRepository


@pytest.fixture(params=["memory", "sqlite", "csv"])
def repo(request, tmp_path):
    if request.param == "memory":
        return MemoryRepository()
    if request.param == "sqlite":
        return SqliteRepository(str(tmp_path / "data.db"))
    return CsvRepository(str(tmp_path / "csvrepo"))


SYSTEM = SystemInfo(
    cpu_name="AMD EPYC 7502P 32-Core Processor",
    cores=32,
    threads_per_core=2,
    frequencies=(1_500_000.0, 2_200_000.0, 2_500_000.0),
    ram_kb=268435456,
)
OTHER_SYSTEM = SystemInfo("Intel Xeon 6230", 20, 2, (1_000_000.0, 2_100_000.0))


def bench_row(system_id: int, cores: int = 32, app: str = "hpcg") -> BenchmarkResult:
    return BenchmarkResult(
        system_id=system_id,
        application=app,
        configuration=Configuration(cores, 1, 2_200_000),
        gflops=9.0,
        avg_system_w=190.0,
        avg_cpu_w=97.0,
        avg_cpu_temp_c=54.0,
        system_energy_j=214_000.0,
        cpu_energy_j=110_000.0,
        runtime_s=1127.0,
    )


class TestSystems:
    def test_save_and_get(self, repo):
        sid = repo.save_system(SYSTEM)
        assert repo.get_system(sid) == SYSTEM

    def test_save_is_idempotent(self, repo):
        assert repo.save_system(SYSTEM) == repo.save_system(SYSTEM)

    def test_distinct_systems_get_distinct_ids(self, repo):
        a = repo.save_system(SYSTEM)
        b = repo.save_system(OTHER_SYSTEM)
        assert a != b

    def test_list_systems(self, repo):
        a = repo.save_system(SYSTEM)
        b = repo.save_system(OTHER_SYSTEM)
        listed = repo.list_systems()
        assert [sid for sid, _ in listed] == sorted([a, b])

    def test_get_unknown_raises(self, repo):
        with pytest.raises(SystemNotFoundError):
            repo.get_system(404)


class TestBenchmarks:
    def test_save_and_query(self, repo):
        sid = repo.save_system(SYSTEM)
        repo.save_benchmark(bench_row(sid, cores=16))
        repo.save_benchmark(bench_row(sid, cores=32))
        rows = repo.benchmarks_for_system(sid)
        assert len(rows) == 2
        assert {r.configuration.cores for r in rows} == {16, 32}

    def test_application_filter(self, repo):
        sid = repo.save_system(SYSTEM)
        repo.save_benchmark(bench_row(sid, app="hpcg"))
        repo.save_benchmark(bench_row(sid, app="hpl"))
        assert len(repo.benchmarks_for_system(sid, "hpcg")) == 1
        assert len(repo.benchmarks_for_system(sid)) == 2

    def test_system_isolation(self, repo):
        a = repo.save_system(SYSTEM)
        b = repo.save_system(OTHER_SYSTEM)
        repo.save_benchmark(bench_row(a))
        assert repo.benchmarks_for_system(b) == []

    def test_rejects_unknown_system(self, repo):
        with pytest.raises(SystemNotFoundError):
            repo.save_benchmark(bench_row(999))

    def test_roundtrip_preserves_values(self, repo):
        sid = repo.save_system(SYSTEM)
        original = bench_row(sid)
        repo.save_benchmark(original)
        stored = repo.benchmarks_for_system(sid)[0]
        assert stored == original


class TestModels:
    def meta(self, model_id: int, system_id: int) -> ModelMetadata:
        return ModelMetadata(
            model_id=model_id,
            model_type="linear-regression",
            system_id=system_id,
            application="hpcg",
            blob_path=f"/blobs/m{model_id}.json",
            created_at=42.0,
            training_points=138,
        )

    def test_save_and_get(self, repo):
        sid = repo.save_system(SYSTEM)
        mid = repo.next_model_id()
        assert mid == 1
        repo.save_model_metadata(self.meta(mid, sid))
        assert repo.get_model_metadata(mid) == self.meta(mid, sid)

    def test_next_model_id_advances(self, repo):
        sid = repo.save_system(SYSTEM)
        repo.save_model_metadata(self.meta(repo.next_model_id(), sid))
        assert repo.next_model_id() == 2

    def test_list_models_ordered(self, repo):
        sid = repo.save_system(SYSTEM)
        repo.save_model_metadata(self.meta(2, sid))
        repo.save_model_metadata(self.meta(1, sid))
        assert [m.model_id for m in repo.list_models()] == [1, 2]

    def test_get_unknown_raises(self, repo):
        with pytest.raises(ModelNotFoundError):
            repo.get_model_metadata(404)

    def test_upsert_replaces(self, repo):
        sid = repo.save_system(SYSTEM)
        repo.save_model_metadata(self.meta(1, sid))
        updated = ModelMetadata(1, "random-forest", sid, "hpcg", "/blobs/new.json", 50.0, 24)
        repo.save_model_metadata(updated)
        assert repo.get_model_metadata(1) == updated
        assert len(repo.list_models()) == 1


class TestPersistenceAcrossInstances:
    """File-backed repositories must survive reopening (fresh CLI process)."""

    def test_sqlite_reopen(self, tmp_path):
        path = str(tmp_path / "data.db")
        first = SqliteRepository(path)
        sid = first.save_system(SYSTEM)
        first.save_benchmark(bench_row(sid))
        second = SqliteRepository(path)
        assert second.get_system(sid) == SYSTEM
        assert len(second.benchmarks_for_system(sid)) == 1

    def test_csv_reopen(self, tmp_path):
        path = str(tmp_path / "csvrepo")
        first = CsvRepository(path)
        sid = first.save_system(SYSTEM)
        first.save_benchmark(bench_row(sid))
        second = CsvRepository(path)
        assert second.get_system(sid) == SYSTEM
        assert len(second.benchmarks_for_system(sid)) == 1
