"""Tests for #SBATCH parsing and script generation."""

import pytest
from hypothesis import given, strategies as st

from repro.slurm.batch_script import (
    BatchScriptError,
    build_script,
    parse_batch_script,
    parse_time_limit,
)


class TestParseTimeLimit:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("30", 30 * 60),
            ("5:30", 5 * 60 + 30),
            ("1:30:00", 5400),
            ("0:45:00", 45 * 60),
            ("2-12", 2 * 86400 + 12 * 3600),
            ("1-0:30", 86400 + 30 * 60),
            ("1-2:3:4", 86400 + 2 * 3600 + 3 * 60 + 4),
        ],
    )
    def test_formats(self, text, expected):
        assert parse_time_limit(text) == expected

    @pytest.mark.parametrize("bad", ["", "abc", "1:2:3:4", "x-1", "1-"])
    def test_rejects_malformed(self, bad):
        with pytest.raises(BatchScriptError):
            parse_time_limit(bad)


PAPER_SCRIPT = """#!/bin/bash
#SBATCH --nodes=1
#SBATCH --ntasks=28
#SBATCH --cpu-freq=2200000

srun --mpi=pmix_v4 --ntasks-per-core=2 /opt/hpcg/build/bin/xhpcg
"""


class TestParseBatchScript:
    def test_paper_listing6_shape(self):
        desc = parse_batch_script(PAPER_SCRIPT)
        assert desc.nodes == 1
        assert desc.num_tasks == 28
        assert desc.cpu_freq_min == 2_200_000
        assert desc.cpu_freq_max == 2_200_000
        assert desc.threads_per_core == 2
        assert desc.binary == "/opt/hpcg/build/bin/xhpcg"
        assert "--mpi=pmix_v4" in desc.srun_args

    def test_comment_option(self):
        script = '#!/bin/bash\n#SBATCH --comment "chronus"\n./a.out\n'
        assert parse_batch_script(script).comment == "chronus"

    def test_space_separated_options(self):
        script = "#!/bin/bash\n#SBATCH --ntasks 8\n#SBATCH -J myjob\n./a.out\n"
        desc = parse_batch_script(script)
        assert desc.num_tasks == 8
        assert desc.name == "myjob"

    def test_cpu_freq_range(self):
        script = "#!/bin/bash\n#SBATCH --cpu-freq=1500000-2500000\n./a.out\n"
        desc = parse_batch_script(script)
        assert (desc.cpu_freq_min, desc.cpu_freq_max) == (1_500_000, 2_500_000)

    def test_time_limit(self):
        script = "#!/bin/bash\n#SBATCH --time=0:20:00\n./a.out\n"
        assert parse_batch_script(script).time_limit_s == 1200

    def test_bare_command_without_srun(self):
        script = "#!/bin/bash\n/usr/bin/stress\n"
        assert parse_batch_script(script).binary == "/usr/bin/stress"

    def test_rejects_missing_shebang(self):
        with pytest.raises(BatchScriptError, match="shebang"):
            parse_batch_script("#SBATCH --ntasks=1\n./a.out\n")

    def test_rejects_empty(self):
        with pytest.raises(BatchScriptError):
            parse_batch_script("   \n")

    def test_rejects_no_command(self):
        with pytest.raises(BatchScriptError, match="no command"):
            parse_batch_script("#!/bin/bash\n#SBATCH --ntasks=1\n")

    def test_rejects_bad_int(self):
        with pytest.raises(BatchScriptError):
            parse_batch_script("#!/bin/bash\n#SBATCH --ntasks=four\n./a.out\n")

    def test_rejects_bad_cpu_freq(self):
        with pytest.raises(BatchScriptError):
            parse_batch_script("#!/bin/bash\n#SBATCH --cpu-freq=fast\n./a.out\n")

    def test_rejects_dangling_option(self):
        with pytest.raises(BatchScriptError):
            parse_batch_script("#!/bin/bash\n#SBATCH --ntasks\n./a.out\n")

    def test_comments_and_blank_lines_ignored(self):
        script = "#!/bin/bash\n\n# a comment\n#SBATCH --ntasks=2\n\n./a.out arg\n"
        assert parse_batch_script(script).num_tasks == 2


class TestBuildScript:
    def test_roundtrip(self):
        script = build_script(16, 2_200_000, 2, "/opt/hpcg/build/bin/xhpcg",
                              comment="chronus", time_limit="0:30:00", job_name="bench")
        desc = parse_batch_script(script)
        assert desc.num_tasks == 16
        assert desc.cpu_freq_min == 2_200_000
        assert desc.threads_per_core == 2
        assert desc.comment == "chronus"
        assert desc.time_limit_s == 1800
        assert desc.name == "bench"
        assert desc.binary == "/opt/hpcg/build/bin/xhpcg"

    @given(
        cores=st.integers(1, 32),
        freq=st.sampled_from([1_500_000, 2_200_000, 2_500_000]),
        tpc=st.sampled_from([1, 2]),
    )
    def test_roundtrip_property(self, cores, freq, tpc):
        desc = parse_batch_script(build_script(cores, freq, tpc, "/bin/app"))
        assert (desc.num_tasks, desc.cpu_freq_min, desc.threads_per_core) == (
            cores, freq, tpc,
        )
