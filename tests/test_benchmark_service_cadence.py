"""Regression tests for the benchmark sampling cadence.

The sampling loop must hit *absolute* deadlines (start + k·interval).  The
old loop advanced a fixed ``sample_interval_s`` past wherever the previous
sample finished, so a slow system service (an IPMI read taking a second)
stretched the effective cadence by the read time on every sample.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import telemetry
from repro.core.application.benchmark_service import BenchmarkService
from repro.core.application.interfaces import (
    ApplicationRunnerInterface,
    RunnerResult,
    SystemServiceInterface,
)
from repro.core.domain.configuration import Configuration
from repro.core.domain.run import EnergySample
from repro.core.repositories.memory_repository import MemoryRepository

CONFIG = Configuration(4, 1, 1_500_000)


class FakeClock:
    """A manually-advanced clock shared by runner and system service."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


class FakeRunner(ApplicationRunnerInterface):
    """A job that completes after ``duration`` seconds of clock time."""

    application = "fake"

    def __init__(self, clock: FakeClock, duration: float) -> None:
        self.clock = clock
        self.duration = duration
        self._t0 = 0.0

    def submit(self, configuration: Configuration) -> int:
        self._t0 = self.clock.now
        return 1

    def is_done(self, handle: int) -> bool:
        return self.clock.now - self._t0 >= self.duration

    def advance(self, seconds: float) -> None:
        if seconds <= 0:
            raise ValueError("advance expects a positive duration")
        self.clock.now += seconds

    def result(self, handle: int) -> RunnerResult:
        return RunnerResult(gflops=1.0, runtime_s=self.duration, success=True)


class SlowSystemService(SystemServiceInterface):
    """A sampler whose read consumes ``read_time`` seconds of clock time."""

    def __init__(self, clock: FakeClock, read_time: float) -> None:
        self.clock = clock
        self.read_time = read_time

    def sample(self) -> EnergySample:
        self.clock.now += self.read_time
        return EnergySample(
            time=self.clock.now, system_w=100.0, cpu_w=50.0, cpu_temp_c=40.0
        )


def make_service(clock: FakeClock, *, read_time: float, duration: float,
                 interval: float = 3.0) -> BenchmarkService:
    class _Info:
        def fetch(self):  # pragma: no cover - not used by run_one
            raise AssertionError("not needed")

    return BenchmarkService(
        MemoryRepository(),
        FakeRunner(clock, duration),
        SlowSystemService(clock, read_time),
        _Info(),
        sample_interval_s=interval,
    )


class TestSamplingCadence:
    def test_instant_reads_sample_on_the_interval(self):
        clock = FakeClock()
        service = make_service(clock, read_time=0.0, duration=12.0)
        run = service.run_one(CONFIG, clock=clock)
        assert run.sample_times == [3.0, 6.0, 9.0, 12.0]

    def test_slow_reads_do_not_stretch_the_cadence(self):
        """With 0.5 s IPMI reads the old loop sampled every 3.5 s; the
        deadline loop keeps consecutive samples exactly interval apart."""
        clock = FakeClock()
        service = make_service(clock, read_time=0.5, duration=30.0)
        run = service.run_one(CONFIG, clock=clock)
        diffs = np.diff(run.sample_times)
        assert len(run.samples) >= 8
        np.testing.assert_allclose(diffs, 3.0)
        # samples land just after the absolute deadlines 3, 6, 9, ...
        np.testing.assert_allclose(
            run.sample_times, [3.5 + 3.0 * k for k in range(len(run.samples))]
        )

    def test_overrunning_read_skips_missed_deadlines(self):
        """A read slower than the interval must skip deadlines (counted in
        telemetry) instead of firing a burst of catch-up samples."""
        if not telemetry.enabled():
            pytest.skip("telemetry disabled; counter not observable")
        misses = telemetry.counter("bench_sample_deadline_misses_total")
        before = misses.value
        clock = FakeClock()
        service = make_service(clock, read_time=4.0, duration=40.0)
        run = service.run_one(CONFIG, clock=clock)
        diffs = np.diff(run.sample_times)
        assert np.all(diffs >= 3.0)  # never bunched closer than the interval
        assert misses.value > before
