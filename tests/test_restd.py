"""The REST gateway (repro.restd) over real sockets: routes, auth, HTTP
edge cases, pagination across journal compaction, leader failover."""

from __future__ import annotations

import http.client
import json
import socket
import time
from dataclasses import dataclass, field

import pytest

import repro.core  # noqa: F401  (resolves the repro.slurm import cycle)
from repro.api.auth import TokenAuthority
from repro.restd.gateway import RestGateway
from repro.restd.server import RestdServer
from repro.serving.protocol import ErrorResponse
from repro.slurm.dbd import SlurmDbd
from repro.slurm.ha import DRILL_BINARY, build_drill_plane

SECRET = "restd-test-secret"


@dataclass
class _Record:
    """Quacks like a ModelRecord for the registry routes."""

    model_id: int
    model_type: str = "xgboost"
    system_id: int = 1
    application: str = "hpcg"
    stage: str = "staging"
    version: int = 1
    created_at: float = 0.0
    training_points: int = 64
    parent_id: "int | None" = None
    digest: str = "deadbeef"


class _Registry:
    def __init__(self):
        self.records = {1: _Record(1), 2: _Record(2, stage="active", version=2)}
        self.calls: list = []

    def list(self, stage=None):
        rows = sorted(self.records.values(), key=lambda r: r.model_id)
        return [r for r in rows if stage is None or r.stage == stage]

    def promote(self, model_id):
        self.calls.append(("promote", model_id))
        record = self.records[model_id]  # KeyError -> 404
        record.stage = "active"
        return record

    def shadow(self, model_id):
        self.calls.append(("shadow", model_id))
        record = self.records[model_id]
        record.stage = "shadow"
        return record

    def rollback(self, system_id, application):
        self.calls.append(("rollback", system_id, application))
        return self.records[1]


class _Answer:
    def to_dict(self):
        return {"proto": "chronus/2", "ok": True, "conf_best": 7}


class _Provider:
    """predict() stub: one canned answer, or an ErrorResponse."""

    def __init__(self):
        self.answer = _Answer()
        self.seen: list = []

    def predict(self, request):
        self.seen.append(request)
        return self.answer


@dataclass
class Stack:
    drill: object
    authority: TokenAuthority
    gateway: RestGateway
    server: RestdServer
    registry: _Registry
    provider: _Provider
    tokens: dict = field(default_factory=dict)

    def token(self, scope: str) -> str:
        if scope not in self.tokens:
            self.tokens[scope] = self.authority.issue(f"test-{scope}", scope)
        return self.tokens[scope]

    def call(self, method, target, *, scope="admin", body=None, token=None,
             headers=None):
        """One HTTP request; returns (status, headers, payload)."""
        conn = http.client.HTTPConnection(*self.server.address, timeout=10.0)
        try:
            sent = dict(headers or {})
            if token != "":
                sent["Authorization"] = f"Bearer {token or self.token(scope)}"
            conn.request(
                method, target,
                body=json.dumps(body) if body is not None else None,
                headers=sent,
            )
            answer = conn.getresponse()
            raw = answer.read()
        finally:
            conn.close()
        payload = json.loads(raw) if raw else {}
        return answer.status, dict(answer.getheaders()), payload

    def raw(self, data: bytes, *, settle_s: float = 0.0) -> bytes:
        """Send raw bytes, read until the server hangs up."""
        with socket.create_connection(self.server.address, timeout=10.0) as s:
            s.sendall(data)
            if settle_s:
                time.sleep(settle_s)
            chunks = []
            while True:
                chunk = s.recv(65536)
                if not chunk:
                    return b"".join(chunks)
                chunks.append(chunk)

    def advance(self, seconds: float) -> None:
        """Run the simulated cluster forward (no pump in these tests)."""
        with self.gateway.lock:
            self.drill.sim.run(until=self.drill.sim.now + seconds)

    def submit(self, name, **extra):
        body = {"name": name, "binary": DRILL_BINARY, "time_limit_s": 600}
        body.update(extra)
        return self.call("POST", "/slurm/v1/jobs", scope="submit", body=body)


@pytest.fixture
def stack(tmp_path):
    drill = build_drill_plane(str(tmp_path / "statesave"))
    authority = TokenAuthority(SECRET)
    registry = _Registry()
    provider = _Provider()
    gateway = RestGateway(
        authority=authority,
        leader=drill.plane.leader,
        dbd=drill.dbd,
        predict_provider=provider,
        registry=registry,
        retry_after_s=0.25,
    )
    server = RestdServer(gateway).start()
    s = Stack(drill, authority, gateway, server, registry, provider)
    try:
        yield s
    finally:
        server.stop()


class TestJobRoutes:
    def test_submit_then_get(self, stack):
        status, _, payload = stack.submit("alpha", num_tasks=2)
        assert status == 201
        assert payload["deduplicated"] is False
        job_id = payload["job_id"]

        status, _, job = stack.call("GET", f"/slurm/v1/jobs/{job_id}",
                                    scope="read")
        assert status == 200
        assert job["name"] == "alpha"
        assert job["state"] == "PENDING"

    def test_submit_runs_to_completion(self, stack):
        _, _, payload = stack.submit("runs")
        stack.advance(600.0)
        _, _, job = stack.call("GET", f"/slurm/v1/jobs/{payload['job_id']}")
        assert job["state"] == "COMPLETED"
        assert job["node_list"]

    def test_dedup_answers_existing_job(self, stack):
        status1, _, first = stack.submit("twice")
        status2, _, second = stack.submit("twice")
        assert (status1, status2) == (201, 200)
        assert second["deduplicated"] is True
        assert second["job_id"] == first["job_id"]

    def test_dedup_off_creates_a_second_job(self, stack):
        _, _, first = stack.submit("again")
        status, _, second = stack.submit("again", dedup=False)
        assert status == 201
        assert second["job_id"] != first["job_id"]

    def test_array_submit_reports_task_ids(self, stack):
        status, _, payload = stack.submit("arr", array=[0, 1, 2])
        assert status == 201
        assert len(payload["task_ids"]) == 3

    def test_cancel(self, stack):
        _, _, payload = stack.submit("doomed")
        status, _, job = stack.call(
            "DELETE", f"/slurm/v1/jobs/{payload['job_id']}", scope="submit"
        )
        assert status == 200
        assert job["state"] == "CANCELLED"

    def test_get_unknown_job_404(self, stack):
        status, _, payload = stack.call("GET", "/slurm/v1/jobs/99999")
        assert status == 404
        assert payload["error"] == "NOT_FOUND"

    def test_cancel_unknown_job_404(self, stack):
        status, _, payload = stack.call("DELETE", "/slurm/v1/jobs/99999",
                                        scope="submit")
        assert status == 404

    def test_non_integer_job_id_400(self, stack):
        status, _, payload = stack.call("GET", "/slurm/v1/jobs/latest")
        assert status == 400
        assert payload["error"] == "INVALID"

    def test_submit_missing_binary_400(self, stack):
        status, _, payload = stack.call(
            "POST", "/slurm/v1/jobs", scope="submit", body={"name": "x"}
        )
        assert status == 400
        assert "binary" in payload["message"]


class TestPagination:
    def test_walk_equals_full_listing(self, stack):
        for i in range(9):
            stack.submit(f"page-{i}")
        seen, cursor, pages = [], None, 0
        while True:
            target = "/slurm/v1/jobs?limit=4"
            if cursor:
                target += f"&cursor={cursor}"
            status, _, payload = stack.call("GET", target)
            assert status == 200
            seen.extend(j["job_id"] for j in payload["jobs"])
            pages += 1
            cursor = payload.get("next_cursor")
            if not cursor:
                break
        assert pages == 3
        _, _, full = stack.call("GET", "/slurm/v1/jobs?limit=1000")
        assert seen == [j["job_id"] for j in full["jobs"]]
        assert seen == sorted(seen)

    def test_limit_validation(self, stack):
        for bad in ("0", "1001", "-3", "soon"):
            status, _, payload = stack.call(
                "GET", f"/slurm/v1/jobs?limit={bad}"
            )
            assert status == 400, bad

    def test_malformed_cursor_400(self, stack):
        for bad in ("!!!", "bm90LWpzb24", "eyJ2IjogOX0="):  # junk, not-json, v9
            status, _, payload = stack.call(
                "GET", f"/slurm/v1/jobs?cursor={bad}"
            )
            assert status == 400, bad
            assert payload["error"] == "INVALID"

    def test_cursor_survives_journal_compaction(self, stack):
        """The tentpole pagination claim: a cursor taken before the
        journal is compacted still resumes exactly after the row it
        named, because the dbd re-bootstraps from the snapshot."""
        for i in range(12):
            stack.submit(f"compact-{i}")
        status, _, page1 = stack.call("GET", "/slurm/v1/jobs?limit=5")
        assert status == 200
        cursor = page1["next_cursor"]
        assert cursor

        # snapshot + compact, then point the gateway at a *fresh* dbd
        # whose cursor predates the compaction point
        with stack.gateway.lock:
            leader = stack.drill.plane.leader()
            statesave = stack.drill.statesave
            statesave.write_snapshot(
                leader.capture_state(), epoch=leader.epoch,
                time=stack.drill.sim.now,
            )
            assert statesave.compact() > 0
            fresh = SlurmDbd(statesave)
            stack.gateway.dbd = fresh

        status, _, page2 = stack.call(
            "GET", f"/slurm/v1/jobs?limit=1000&cursor={cursor}"
        )
        assert status == 200
        assert fresh.bootstraps == 1
        ids = [j["job_id"] for j in page1["jobs"]] + [
            j["job_id"] for j in page2["jobs"]
        ]
        assert ids == sorted(ids)
        assert len(ids) == len(set(ids)) == 12


class TestAuth:
    def test_missing_token_401(self, stack):
        status, _, payload = stack.call("GET", "/slurm/v1/diag", token="")
        assert status == 401
        assert payload["error"] == "UNAUTHORIZED"
        assert payload["retryable"] is False

    def test_garbage_token_401(self, stack):
        status, _, _ = stack.call("GET", "/slurm/v1/diag", token="garbage")
        assert status == 401

    def test_wrong_scheme_401(self, stack):
        status, _, _ = stack.call(
            "GET", "/slurm/v1/diag", token="",
            headers={"Authorization": "Basic dXNlcjpwdw=="},
        )
        assert status == 401

    def test_expired_token_401(self, stack):
        stale = TokenAuthority(SECRET, clock=lambda: 1.0)
        token = stale.issue("old", "admin", ttl_s=10.0)  # expired long ago
        status, _, payload = stack.call("GET", "/slurm/v1/diag", token=token)
        assert status == 401
        assert "expired" in payload["message"]

    def test_read_token_cannot_submit_403(self, stack):
        status, _, payload = stack.call(
            "POST", "/slurm/v1/jobs", token=stack.token("read"),
            body={"name": "x", "binary": DRILL_BINARY},
        )
        assert status == 403
        assert payload["error"] == "FORBIDDEN"

    def test_submit_token_cannot_drain_403(self, stack):
        host = stack.drill.slurmds[0].hostname
        status, _, _ = stack.call(
            "POST", f"/slurm/v1/nodes/{host}/drain",
            token=stack.token("submit"),
        )
        assert status == 403

    def test_admin_covers_everything(self, stack):
        for target in ("/slurm/v1/jobs", "/slurm/v1/nodes", "/slurm/v1/diag",
                       "/chronus/v1/models", "/chronus/v1/metrics"):
            status, _, _ = stack.call("GET", target)
            assert status == 200, target


class TestHttpEdgeCases:
    def test_unknown_path_404(self, stack):
        status, _, payload = stack.call("GET", "/slurm/v1/partitions")
        assert status == 404
        assert payload["error"] == "NOT_FOUND"

    def test_wrong_method_405(self, stack):
        status, _, payload = stack.call("PUT", "/slurm/v1/jobs")
        assert status == 405
        assert payload["error"] == "METHOD_NOT_ALLOWED"

    def test_malformed_json_body_400(self, stack):
        status, _, payload = stack.call(
            "POST", "/slurm/v1/jobs", scope="submit",
            headers={"Content-Type": "application/json"},
            body=None, token=stack.token("submit"),
        )
        # now with a genuinely broken body, raw
        raw = (
            b"POST /slurm/v1/jobs HTTP/1.1\r\n"
            b"Host: t\r\n"
            + f"Authorization: Bearer {stack.token('submit')}\r\n".encode()
            + b"Content-Length: 9\r\nConnection: close\r\n\r\n{not json"
        )
        answer = stack.raw(raw)
        assert b" 400 " in answer.split(b"\r\n", 1)[0]
        assert b"not valid JSON" in answer

    def test_oversized_headers_431(self, stack):
        raw = (
            b"GET /slurm/v1/diag HTTP/1.1\r\n"
            b"X-Padding: " + b"a" * 20000 + b"\r\n\r\n"
        )
        answer = stack.raw(raw)
        assert b" 431 " in answer.split(b"\r\n", 1)[0]
        assert b"HEADERS_TOO_LARGE" in answer

    def test_oversized_body_413(self, stack):
        raw = (
            b"POST /slurm/v1/jobs HTTP/1.1\r\nHost: t\r\n"
            b"Content-Length: 2000000\r\n\r\n"
        )
        answer = stack.raw(raw)
        assert b" 413 " in answer.split(b"\r\n", 1)[0]
        assert b"BODY_TOO_LARGE" in answer

    def test_oversized_chunked_body_413(self, stack):
        # one declared 2 MiB chunk: refused before any data is read
        raw = (
            b"POST /slurm/v1/jobs HTTP/1.1\r\nHost: t\r\n"
            b"Transfer-Encoding: chunked\r\n\r\n200000\r\n"
        )
        answer = stack.raw(raw)
        assert b" 413 " in answer.split(b"\r\n", 1)[0]

    def test_malformed_chunk_size_400(self, stack):
        raw = (
            b"POST /slurm/v1/jobs HTTP/1.1\r\nHost: t\r\n"
            b"Transfer-Encoding: chunked\r\n\r\nzz\r\n"
        )
        answer = stack.raw(raw)
        assert b" 400 " in answer.split(b"\r\n", 1)[0]
        assert b"malformed chunk size" in answer

    def test_bad_chunk_terminator_400(self, stack):
        raw = (
            b"POST /slurm/v1/jobs HTTP/1.1\r\nHost: t\r\n"
            b"Transfer-Encoding: chunked\r\n\r\n5\r\nhelloXX"
        )
        answer = stack.raw(raw)
        assert b" 400 " in answer.split(b"\r\n", 1)[0]
        assert b"CRLF" in answer

    def test_well_formed_chunked_body_accepted(self, stack):
        body = json.dumps({"name": "chunky", "binary": DRILL_BINARY}).encode()
        raw = (
            b"POST /slurm/v1/jobs HTTP/1.1\r\nHost: t\r\n"
            + f"Authorization: Bearer {stack.token('submit')}\r\n".encode()
            + b"Transfer-Encoding: chunked\r\nConnection: close\r\n\r\n"
            + f"{len(body):x}\r\n".encode() + body + b"\r\n0\r\n\r\n"
        )
        answer = stack.raw(raw)
        assert b" 201 " in answer.split(b"\r\n", 1)[0]

    def test_malformed_request_line_400(self, stack):
        answer = stack.raw(b"NONSENSE\r\n\r\n")
        assert b" 400 " in answer.split(b"\r\n", 1)[0]

    def test_slow_client_408(self, stack):
        """A stalled (slowloris) read times out as 408, not a hang."""
        slow = RestdServer(stack.gateway, read_timeout_s=0.2).start()
        try:
            with socket.create_connection(slow.address, timeout=10.0) as s:
                s.sendall(b"GET /slurm/v1/diag HTT")  # ...and stall
                chunks = []
                while True:
                    chunk = s.recv(65536)
                    if not chunk:
                        break
                    chunks.append(chunk)
            answer = b"".join(chunks)
        finally:
            slow.stop()
        assert b" 408 " in answer.split(b"\r\n", 1)[0]
        assert b'"retryable": true' in answer
        assert b"Retry-After" in answer

    def test_keep_alive_serves_many_requests(self, stack):
        conn = http.client.HTTPConnection(*stack.server.address, timeout=10.0)
        try:
            for _ in range(3):
                conn.request(
                    "GET", "/slurm/v1/diag",
                    headers={"Authorization": f"Bearer {stack.token('read')}"},
                )
                answer = conn.getresponse()
                answer.read()
                assert answer.status == 200
        finally:
            conn.close()
        assert stack.server.requests_served >= 3


class TestNodesAndDiag:
    def test_list_nodes(self, stack):
        status, _, payload = stack.call("GET", "/slurm/v1/nodes")
        assert status == 200
        assert len(payload["nodes"]) == 4
        assert all(n["state"] == "idle" for n in payload["nodes"])

    def test_drain_resume_round_trip(self, stack):
        host = stack.drill.slurmds[0].hostname
        status, _, node = stack.call("POST", f"/slurm/v1/nodes/{host}/drain")
        assert (status, node["state"]) == (200, "drained")
        status, _, node = stack.call("POST", f"/slurm/v1/nodes/{host}/resume")
        assert (status, node["state"]) == (200, "idle")

    def test_drain_unknown_node_404(self, stack):
        status, _, _ = stack.call("POST", "/slurm/v1/nodes/ghost/drain")
        assert status == 404

    def test_diag(self, stack):
        stack.submit("diag-job")
        status, _, diag = stack.call("GET", "/slurm/v1/diag")
        assert status == 200
        assert diag["leader"] == "ctld-a"
        assert diag["epoch"] == 0
        assert diag["jobs_total"] == 1


class TestChronusRoutes:
    def test_predict_round_trip(self, stack):
        status, _, payload = stack.call(
            "POST", "/chronus/v1/predict", scope="read",
            body={"proto": "chronus/2", "system_id": 1, "binary_hash": "abc"},
        )
        assert status == 200
        assert payload["conf_best"] == 7
        assert stack.provider.seen[0].system_id == 1

    def test_predict_shed_maps_to_429_with_retry_after(self, stack):
        stack.provider.answer = ErrorResponse(
            "SHED", "queue full", retryable=True
        )
        status, headers, payload = stack.call(
            "POST", "/chronus/v1/predict", scope="read",
            body={"proto": "chronus/2", "system_id": 1, "binary_hash": "abc"},
        )
        assert status == 429
        assert headers["Retry-After"] == "0.25"
        assert payload["error"] == "SHED"

    def test_predict_without_provider_503(self, stack):
        stack.gateway.predict_provider = None
        status, _, payload = stack.call(
            "POST", "/chronus/v1/predict", scope="read", body={}
        )
        assert status == 503
        assert payload["error"] == "NOT_CONFIGURED"

    def test_list_models_with_stage_filter(self, stack):
        status, _, payload = stack.call("GET", "/chronus/v1/models")
        assert status == 200
        assert [m["model_id"] for m in payload["models"]] == [1, 2]
        _, _, active = stack.call("GET", "/chronus/v1/models?stage=active")
        assert [m["model_id"] for m in active["models"]] == [2]

    def test_promote_shadow_rollback(self, stack):
        status, _, m = stack.call("POST", "/chronus/v1/models/1/promote")
        assert (status, m["stage"]) == (200, "active")
        status, _, m = stack.call("POST", "/chronus/v1/models/2/shadow")
        assert (status, m["stage"]) == (200, "shadow")
        status, _, m = stack.call(
            "POST", "/chronus/v1/models/rollback",
            body={"system_id": 1, "application": "hpcg"},
        )
        assert status == 200
        assert ("rollback", 1, "hpcg") in stack.registry.calls

    def test_promote_unknown_model_404(self, stack):
        status, _, _ = stack.call("POST", "/chronus/v1/models/42/promote")
        assert status == 404

    def test_rollback_needs_system_id(self, stack):
        status, _, payload = stack.call(
            "POST", "/chronus/v1/models/rollback", body={"system_id": True}
        )
        assert status == 400

    def test_models_without_registry_503(self, stack):
        stack.gateway.registry = None
        status, _, payload = stack.call("GET", "/chronus/v1/models")
        assert status == 503
        assert payload["retryable"] is True

    def test_metrics_json_and_prometheus(self, stack):
        stack.call("GET", "/slurm/v1/diag")
        status, headers, _ = stack.call("GET", "/chronus/v1/metrics")
        assert status == 200
        assert headers["Content-Type"] == "application/json"
        conn = http.client.HTTPConnection(*stack.server.address, timeout=10.0)
        try:
            conn.request(
                "GET", "/chronus/v1/metrics?format=prometheus",
                headers={"Authorization": f"Bearer {stack.token('read')}"},
            )
            answer = conn.getresponse()
            text = answer.read().decode()
        finally:
            conn.close()
        assert answer.status == 200
        assert "restd_requests_total" in text

    def test_metrics_unknown_format_400(self, stack):
        status, _, _ = stack.call("GET", "/chronus/v1/metrics?format=xml")
        assert status == 400


class TestFailover:
    def test_dead_leader_answers_503_with_retry_after(self, stack):
        with stack.gateway.lock:
            stack.drill.leader_peer().kill()
        status, headers, payload = stack.call("GET", "/slurm/v1/diag")
        assert status == 503
        assert payload["error"] in ("NO_LEADER", "CTLD_DOWN")
        assert payload["retryable"] is True
        assert headers["Retry-After"] == "0.25"

    def test_takeover_then_submit_retry_dedups(self, stack):
        _, _, before = stack.submit("survivor")
        with stack.gateway.lock:
            stack.drill.leader_peer().kill()
        status, _, _ = stack.submit("late-arrival")
        assert status == 503

        # lease expiry + heartbeat: the backup performs a fenced takeover
        stack.advance(3 * stack.drill.lease_s)
        status, _, diag = stack.call("GET", "/slurm/v1/diag")
        assert status == 200
        assert diag["leader"] == "ctld-b"
        assert diag["epoch"] == 1

        # the pre-kill job survived; a retried submit dedups onto it
        status, _, after = stack.submit("survivor")
        assert (status, after["deduplicated"]) == (200, True)
        assert after["job_id"] == before["job_id"]
        # and the failed submit finally lands as a fresh job
        status, _, late = stack.submit("late-arrival")
        assert status == 201
