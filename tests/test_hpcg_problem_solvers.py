"""Tests for problem generation, SymGS, multigrid and the PCG driver."""

import numpy as np
import pytest

from repro.hpcg.cg import pcg
from repro.hpcg.multigrid import MultigridPreconditioner
from repro.hpcg.problem import generate_problem, grid_coloring
from repro.hpcg.sparse import FlopCounter
from repro.hpcg.symgs import MulticolorSymgs, symgs_multicolor, symgs_reference


class TestProblemGeneration:
    def test_shape_and_nnz(self):
        p = generate_problem(4)
        assert p.nrows == 64
        # interior point has 27 neighbours; corners 8
        assert p.matrix.nnz == sum(
            (2 if x in (0, 3) else 3) * (2 if y in (0, 3) else 3) * (2 if z in (0, 3) else 3)
            for x in range(4) for y in range(4) for z in range(4)
        )

    def test_symmetric(self):
        assert generate_problem(3).matrix.is_symmetric()

    def test_diagonal_is_26(self):
        p = generate_problem(3)
        np.testing.assert_allclose(p.matrix.diagonal(), 26.0)

    def test_rhs_consistent_with_exact_solution(self):
        p = generate_problem(4)
        np.testing.assert_allclose(p.matrix.matvec(p.x_exact), p.b)

    def test_positive_definite(self):
        p = generate_problem(3)
        eigs = np.linalg.eigvalsh(p.matrix.todense())
        assert eigs.min() > 0

    def test_non_cubic(self):
        p = generate_problem(2, 3, 4)
        assert p.nrows == 24

    def test_rejects_tiny_grids(self):
        with pytest.raises(ValueError):
            generate_problem(1)


class TestColoring:
    def test_eight_colors(self):
        colors = grid_coloring(4, 4, 4)
        assert set(colors) == set(range(8))

    def test_color_classes_are_independent_sets(self):
        """No two same-colored points are 27-point-stencil neighbours."""
        p = generate_problem(4)
        for i in range(p.nrows):
            cols, _ = p.matrix.row(i)
            for j in cols:
                if j != i:
                    assert p.colors[i] != p.colors[j]


class TestSymgs:
    def test_multicolor_reduces_residual(self):
        p = generate_problem(4)
        x = np.zeros(p.nrows)
        r0 = np.linalg.norm(p.b - p.matrix.matvec(x))
        x = symgs_multicolor(p, p.b, x)
        r1 = np.linalg.norm(p.b - p.matrix.matvec(x))
        assert r1 < 0.5 * r0

    def test_reference_reduces_residual(self):
        p = generate_problem(3)
        x = symgs_reference(p.matrix, p.b, np.zeros(p.nrows))
        r = np.linalg.norm(p.b - p.matrix.matvec(x))
        assert r < 0.5 * np.linalg.norm(p.b)

    def test_exact_solution_is_fixed_point(self):
        p = generate_problem(3)
        for sweep in (
            lambda x: symgs_reference(p.matrix, p.b, x),
            lambda x: symgs_multicolor(p, p.b, x),
        ):
            out = sweep(p.x_exact.copy())
            np.testing.assert_allclose(out, p.x_exact, atol=1e-12)

    def test_repeated_sweeps_converge(self):
        p = generate_problem(3)
        smoother = MulticolorSymgs(p)
        x = np.zeros(p.nrows)
        for _ in range(60):
            x = smoother.sweep(p.b, x)
        np.testing.assert_allclose(x, p.x_exact, atol=1e-8)

    def test_flop_accounting(self):
        p = generate_problem(3)
        flops = FlopCounter()
        symgs_multicolor(p, p.b, np.zeros(p.nrows), flops)
        assert flops.by_kernel["symgs"] == 4 * p.matrix.nnz

    def test_input_not_mutated(self):
        p = generate_problem(3)
        x = np.zeros(p.nrows)
        symgs_multicolor(p, p.b, x)
        np.testing.assert_allclose(x, 0.0)


class TestMultigrid:
    def test_builds_requested_depth(self):
        mg = MultigridPreconditioner(generate_problem(16), levels=3)
        assert mg.depth == 3
        assert mg.levels[-1].problem.nx == 4

    def test_stops_at_odd_dims(self):
        mg = MultigridPreconditioner(generate_problem(6), levels=4)
        # 6 -> 3 (odd, cannot coarsen further): depth 2
        assert mg.depth == 2

    def test_single_level_is_just_smoothing(self):
        p = generate_problem(4)
        mg = MultigridPreconditioner(p, levels=1)
        assert mg.depth == 1
        z = mg.apply(p.b)
        assert np.linalg.norm(p.b - p.matrix.matvec(z)) < np.linalg.norm(p.b)

    def test_vcycle_beats_single_smoother(self):
        p = generate_problem(8)
        mg = MultigridPreconditioner(p, levels=3)
        z_mg = mg.apply(p.b)
        z_gs = symgs_multicolor(p, p.b, np.zeros(p.nrows))
        r_mg = np.linalg.norm(p.b - p.matrix.matvec(z_mg))
        r_gs = np.linalg.norm(p.b - p.matrix.matvec(z_gs))
        assert r_mg < r_gs

    def test_shape_validation(self):
        mg = MultigridPreconditioner(generate_problem(4), levels=2)
        with pytest.raises(ValueError):
            mg.apply(np.zeros(5))

    def test_rejects_zero_levels(self):
        with pytest.raises(ValueError):
            MultigridPreconditioner(generate_problem(4), levels=0)


class TestPcg:
    def test_converges_to_exact_solution(self):
        p = generate_problem(8)
        mg = MultigridPreconditioner(p, levels=3)
        result = pcg(p.matrix, p.b, preconditioner=mg.apply, tol=1e-10, max_iter=100)
        assert result.converged
        np.testing.assert_allclose(result.x, p.x_exact, atol=1e-7)

    def test_unpreconditioned_also_converges(self):
        p = generate_problem(4)
        result = pcg(p.matrix, p.b, tol=1e-10, max_iter=500)
        assert result.converged
        np.testing.assert_allclose(result.x, p.x_exact, atol=1e-7)

    def test_preconditioning_cuts_iterations(self):
        p = generate_problem(8)
        mg = MultigridPreconditioner(p, levels=3)
        plain = pcg(p.matrix, p.b, tol=1e-8, max_iter=200)
        precond = pcg(p.matrix, p.b, preconditioner=mg.apply, tol=1e-8, max_iter=200)
        assert precond.iterations < plain.iterations

    def test_residual_norms_decrease_overall(self):
        p = generate_problem(6)
        result = pcg(p.matrix, p.b, tol=1e-10, max_iter=300)
        assert result.residual_norms[-1] < result.residual_norms[0] * 1e-9

    def test_zero_rhs(self):
        p = generate_problem(3)
        result = pcg(p.matrix, np.zeros(p.nrows))
        assert result.converged
        np.testing.assert_allclose(result.x, 0.0)

    def test_warm_start(self):
        p = generate_problem(4)
        result = pcg(p.matrix, p.b, x0=p.x_exact.copy(), tol=1e-10)
        assert result.converged
        assert result.iterations == 0

    def test_flops_counted(self):
        p = generate_problem(4)
        result = pcg(p.matrix, p.b, tol=1e-8, max_iter=50)
        # at least one spmv per iteration
        assert result.flops.by_kernel["spmv"] >= 2 * p.matrix.nnz * result.iterations

    def test_rhs_shape_validation(self):
        p = generate_problem(3)
        with pytest.raises(ValueError):
            pcg(p.matrix, np.zeros(5))

    def test_non_spd_detected(self):
        from repro.hpcg.sparse import CsrMatrix

        m = CsrMatrix.from_coo(
            np.array([0, 1]), np.array([0, 1]), np.array([1.0, -1.0]), (2, 2)
        )
        with pytest.raises(np.linalg.LinAlgError):
            pcg(m, np.array([1.0, 1.0]), max_iter=10)


class TestBenchmark:
    def test_run_produces_valid_rating(self):
        from repro.hpcg.benchmark import HpcgBenchmark

        bench = HpcgBenchmark(8, levels=2)
        rating = bench.run(tol=1e-8)
        assert rating.converged
        assert rating.gflops > 0
        assert rating.total_flops > 0
        assert rating.final_relative_residual < 1e-8
        assert "GFLOP/s" in rating.summary()
