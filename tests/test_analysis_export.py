"""Tests for the CSV figure exporters."""

import csv

import pytest

from repro.analysis.export import (
    export_ranking_csv,
    export_surface_csv,
    export_timeseries_csv,
)
from repro.core.domain.configuration import Configuration
from repro.core.domain.run import EnergySample, Run


class TestSurfaceExport:
    def test_writes_all_rows(self, steady_rows, tmp_path):
        path = export_surface_csv(steady_rows, str(tmp_path / "s.csv"))
        with open(path) as fh:
            rows = list(csv.DictReader(fh))
        assert len(rows) == len(steady_rows)
        assert set(rows[0]) == {
            "cores", "frequency_ghz", "hyperthread", "gflops",
            "avg_system_w", "gflops_per_watt",
        }

    def test_values_roundtrip(self, steady_rows, tmp_path):
        path = export_surface_csv(steady_rows, str(tmp_path / "s.csv"))
        with open(path) as fh:
            rows = list(csv.DictReader(fh))
        by_key = {
            (int(r["cores"]), float(r["frequency_ghz"]), r["hyperthread"]): r
            for r in rows
        }
        sample = steady_rows[0]
        cfg = sample.configuration
        got = by_key[(cfg.cores, round(cfg.frequency_ghz, 1), "t" if cfg.hyperthread else "f")]
        assert float(got["gflops_per_watt"]) == pytest.approx(
            sample.gflops_per_watt, abs=1e-5
        )

    def test_empty_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            export_surface_csv([], str(tmp_path / "s.csv"))


class TestRankingExport:
    def test_ranked_descending(self, steady_rows, tmp_path):
        path = export_ranking_csv(steady_rows, str(tmp_path / "r.csv"))
        with open(path) as fh:
            rows = list(csv.DictReader(fh))
        values = [float(r["gflops_per_watt"]) for r in rows]
        assert values == sorted(values, reverse=True)
        assert [int(r["rank"]) for r in rows] == list(range(1, len(rows) + 1))


class TestTimeseriesExport:
    def test_samples_per_run(self, tmp_path):
        run = Run(
            configuration=Configuration(32, 1, 2_200_000),
            start_time=100.0,
            end_time=109.0,
            gflops=9.0,
            samples=[EnergySample(100.0 + 3 * i, 190.0, 97.0, 54.0) for i in range(4)],
        )
        path = export_timeseries_csv({"best": run}, str(tmp_path / "t.csv"))
        with open(path) as fh:
            rows = list(csv.DictReader(fh))
        assert len(rows) == 4
        assert rows[0]["run"] == "best"
        assert float(rows[0]["elapsed_s"]) == 0.0
        assert float(rows[-1]["elapsed_s"]) == 9.0

    def test_empty_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            export_timeseries_csv({}, str(tmp_path / "t.csv"))
