"""StateSave: journal durability, torn tails, epoch fencing, snapshots —
and the replay invariant.

The acceptance property lives in :class:`TestReplayInvariant`: for a
random workload driven through a journaled controller, the state a
restored controller rebuilds from any journal prefix is **byte-equal**
(state digest) to the live controller's state at the instant that prefix
ended.  The digests are captured via the ``on_append`` observer hook
during the uninterrupted run, so the comparison covers every crash
offset, not just the final one.
"""

import json
import os

import pytest
from hypothesis import given, settings, strategies as st

from repro import faults
from repro.core.domain.errors import (
    ControllerCrashError,
    JournalCorruptError,
    StaleEpochError,
)
from repro.slurm.cluster import HPCG_BINARY, SimCluster
from repro.slurm.config import SlurmConfig
from repro.slurm.controller import Slurmctld
from repro.slurm.job import JobDescriptor
from repro.slurm.statesave import (
    JournalRecord,
    StateSave,
    canonical_json,
    state_sha256,
)


class TestJournalRecord:
    def test_encode_decode_roundtrip(self):
        rec = JournalRecord(seq=3, epoch=1, time=2.5, type="submit", data={"a": 1})
        assert JournalRecord.decode(rec.encode()) == rec

    def test_crc_rejects_tampering(self):
        rec = JournalRecord(seq=1, epoch=0, time=0.0, type="submit", data={"a": 1})
        payload = json.loads(rec.encode())
        payload["data"]["a"] = 2  # flip a bit, keep the old crc
        with pytest.raises(ValueError):
            JournalRecord.decode(json.dumps(payload))

    def test_canonical_json_is_order_independent(self):
        assert canonical_json({"b": 1, "a": 2}) == canonical_json({"a": 2, "b": 1})


class TestJournal:
    def test_append_and_read(self, tmp_path):
        ss = StateSave(str(tmp_path), fsync=False)
        ss.append("submit", {"job_id": 1}, epoch=0, time=1.0)
        ss.append("start", {"job_id": 1}, epoch=0, time=2.0)
        recs = ss.read_records()
        assert [(r.seq, r.type) for r in recs] == [(1, "submit"), (2, "start")]

    def test_last_seq_survives_reopen(self, tmp_path):
        ss = StateSave(str(tmp_path), fsync=False)
        for i in range(5):
            ss.append("submit", {"job_id": i}, epoch=0, time=float(i))
        ss.close()
        again = StateSave(str(tmp_path), fsync=False)
        assert again.last_seq == 5

    def test_torn_tail_dropped_and_repaired(self, tmp_path):
        ss = StateSave(str(tmp_path), fsync=False)
        ss.append("submit", {"job_id": 1}, epoch=0, time=1.0)
        ss.append("submit", {"job_id": 2}, epoch=0, time=2.0)
        ss.close()
        journal = os.path.join(str(tmp_path), "journal.log")
        with open(journal, "a") as fh:
            fh.write('{"seq": 3, "epoch": 0, "ti')  # the crash's half-line
        again = StateSave(str(tmp_path), fsync=False)
        assert again.torn_tail_records == 1
        assert again.last_seq == 2
        # the repaired journal accepts new appends on a clean boundary
        again.append("submit", {"job_id": 3}, epoch=0, time=3.0)
        assert [r.seq for r in again.read_records()] == [1, 2, 3]

    def test_mid_journal_damage_refuses_replay(self, tmp_path):
        ss = StateSave(str(tmp_path), fsync=False)
        for i in range(3):
            ss.append("submit", {"job_id": i}, epoch=0, time=float(i))
        ss.close()
        journal = os.path.join(str(tmp_path), "journal.log")
        lines = open(journal).read().splitlines()
        lines[1] = lines[1][: len(lines[1]) // 2]  # damage the MIDDLE record
        with open(journal, "w") as fh:
            fh.write("\n".join(lines) + "\n")
        with pytest.raises(JournalCorruptError):
            StateSave(str(tmp_path), fsync=False)

    def test_recover_repairs_tail_on_open_instance(self, tmp_path):
        # an HA pair shares one StateSave; takeover re-opens via recover()
        ss = StateSave(str(tmp_path), fsync=False)
        ss.append("submit", {"job_id": 1}, epoch=0, time=1.0)
        faults.configure("journal.torn_write=1:1", seed=0)
        try:
            with pytest.raises(ControllerCrashError):
                ss.append("submit", {"job_id": 2}, epoch=0, time=2.0)
        finally:
            faults.reset()
        assert ss.recover() == 1  # one torn record dropped
        ss.append("submit", {"job_id": 2}, epoch=0, time=3.0)
        assert [r.seq for r in ss.read_records()] == [1, 2]


class TestFaultSites:
    def test_torn_write_is_not_durable(self, tmp_path):
        ss = StateSave(str(tmp_path), fsync=False)
        faults.configure("journal.torn_write=1:1", seed=0)
        try:
            with pytest.raises(ControllerCrashError):
                ss.append("submit", {"job_id": 1}, epoch=0, time=1.0)
        finally:
            faults.reset()
        ss.close()
        assert StateSave(str(tmp_path), fsync=False).read_records() == []

    def test_crash_after_append_is_durable(self, tmp_path):
        ss = StateSave(str(tmp_path), fsync=False)
        faults.configure("ctld.crash=1:1", seed=0)
        try:
            with pytest.raises(ControllerCrashError):
                ss.append("submit", {"job_id": 1}, epoch=0, time=1.0)
        finally:
            faults.reset()
        ss.close()
        recs = StateSave(str(tmp_path), fsync=False).read_records()
        assert [r.seq for r in recs] == [1]  # the record survived, ack didn't


class TestEpochFencing:
    def test_bump_epoch_fences_old_writers(self, tmp_path):
        ss = StateSave(str(tmp_path), fsync=False)
        ss.append("submit", {"job_id": 1}, epoch=0, time=1.0)
        assert ss.bump_epoch() == 1
        with pytest.raises(StaleEpochError):
            ss.append("submit", {"job_id": 2}, epoch=0, time=2.0)
        ss.append("submit", {"job_id": 2}, epoch=1, time=2.0)  # new leader ok

    def test_epoch_durable_across_reopen(self, tmp_path):
        ss = StateSave(str(tmp_path), fsync=False)
        ss.bump_epoch()
        ss.bump_epoch()
        ss.close()
        assert StateSave(str(tmp_path), fsync=False).epoch == 2

    def test_lease_write_checked_against_epoch(self, tmp_path):
        ss = StateSave(str(tmp_path), fsync=False)
        ss.write_lease("ctld-a", 0, expires_at=10.0)
        ss.bump_epoch()
        with pytest.raises(StaleEpochError):
            ss.write_lease("ctld-a", 0, expires_at=20.0)  # zombie renewal
        lease = ss.read_lease()
        assert (lease.leader, lease.epoch, lease.expires_at) == ("ctld-a", 0, 10.0)
        ss.write_lease("ctld-b", 1, expires_at=20.0)
        assert ss.read_lease().leader == "ctld-b"

    def test_lease_expiry(self, tmp_path):
        ss = StateSave(str(tmp_path), fsync=False)
        lease = ss.write_lease("ctld-a", 0, expires_at=10.0)
        assert not lease.expired(9.9)
        assert lease.expired(10.0)


class TestSnapshots:
    def test_write_and_load_digest_verified(self, tmp_path):
        ss = StateSave(str(tmp_path), fsync=False)
        ss.append("submit", {"job_id": 1}, epoch=0, time=1.0)
        state = {"jobs": {"1": {"name": "a"}}}
        ss.write_snapshot(state, epoch=0, time=1.0)
        snap = ss.load_latest_snapshot()
        assert snap["state"] == state
        assert snap["seq"] == 1
        assert snap["digest"] == state_sha256(state)

    def test_corrupt_snapshot_falls_back_to_older(self, tmp_path):
        ss = StateSave(str(tmp_path), fsync=False)
        ss.append("submit", {"job_id": 1}, epoch=0, time=1.0)
        name_old = ss.write_snapshot({"v": "old"}, epoch=0, time=1.0)
        ss.append("submit", {"job_id": 2}, epoch=0, time=2.0)
        name_new = ss.write_snapshot({"v": "new"}, epoch=0, time=2.0)
        assert name_new != name_old
        with open(os.path.join(str(tmp_path), name_new), "a") as fh:
            fh.write("garbage")
        assert ss.load_latest_snapshot()["state"] == {"v": "old"}

    def test_compact_drops_covered_records(self, tmp_path):
        ss = StateSave(str(tmp_path), fsync=False)
        for i in range(4):
            ss.append("submit", {"job_id": i}, epoch=0, time=float(i))
        ss.write_snapshot({"upto": 4}, epoch=0, time=4.0)
        ss.append("submit", {"job_id": 4}, epoch=0, time=5.0)
        assert ss.compact() == 4
        assert [r.seq for r in ss.read_records()] == [5]
        assert ss.min_journal_seq() == 5
        assert ss.last_seq == 5  # appends continue from the same sequence

    def test_should_snapshot_interval(self, tmp_path):
        ss = StateSave(str(tmp_path), fsync=False, snapshot_interval=2)
        ss.append("submit", {"job_id": 1}, epoch=0, time=1.0)
        assert not ss.should_snapshot()
        ss.append("submit", {"job_id": 2}, epoch=0, time=2.0)
        assert ss.should_snapshot()
        ss.write_snapshot({}, epoch=0, time=2.0)
        assert not ss.should_snapshot()


# ----------------------------------------------------------------------
# the replay invariant
# ----------------------------------------------------------------------

workload_strategy = st.lists(
    st.tuples(
        st.integers(1, 32),      # num_tasks
        st.integers(1, 20),      # time limit (minutes; 1 => TIMEOUT)
        st.booleans(),           # cancel shortly after submit?
        st.booleans(),           # afterok-depend on the previous job?
        st.booleans(),           # workflow member (enables auto-reschedule)?
    ),
    min_size=1,
    max_size=6,
)


def _run_journaled(tmpdir: str, jobs, horizon: float, snapshot_interval: int = 0):
    """Drive a journaled cluster; returns (digests-by-seq, final ctld).

    Workload elements can chain ``afterok`` dependencies on the previous
    submission and join the ``"prop"`` workflow; with a 1-minute time
    limit against the 120 s HPCG runtime a workflow member TIMEOUTs and
    exercises the automatic reschedule path (``RescheduleRetries=1``),
    so the replay invariant covers submit_dep / dep_release / reschedule
    records and never-satisfied cancel cascades, not just the legacy
    record types.
    """
    ss = StateSave(tmpdir, fsync=False, snapshot_interval=snapshot_interval)
    cluster = SimCluster(
        n_nodes=2, statesave=ss, hpcg_duration_s=120,
        config=SlurmConfig(reschedule_retries=1),
    )
    digests: dict[int, str] = {}
    ss.on_append = lambda rec: digests.__setitem__(
        rec.seq, cluster.ctld.state_digest()
    )
    # the genesis record was journaled during construction, before the
    # hook attached; its digest is simply the fresh controller's
    digests[ss.last_seq] = cluster.ctld.state_digest()
    submitted: list[int] = []
    for i, (tasks, limit_min, cancel, dep_prev, in_wf) in enumerate(jobs):
        def submit(tasks=tasks, limit=limit_min, cancel=cancel,
                   dep_prev=dep_prev, in_wf=in_wf, i=i):
            dependency = ()
            if dep_prev and submitted:
                dependency = (("afterok", submitted[-1]),)
            jid = cluster.ctld.submit(
                JobDescriptor(
                    name=f"prop-{i}",
                    num_tasks=tasks,
                    binary=HPCG_BINARY,
                    time_limit_s=limit * 60,
                    dependency=dependency,
                    workflow="prop" if in_wf else "",
                )
            )
            submitted.append(jid)
            if cancel:
                def maybe_cancel(jid=jid):
                    # a never-satisfied dependency may have cancelled it
                    if not cluster.ctld.jobs[jid].state.is_terminal:
                        cluster.ctld.cancel(jid)
                cluster.sim.call_in(5.0, maybe_cancel)

        cluster.sim.call_at(i * 7.0, submit)
    cluster.sim.run(until=horizon)
    return digests, cluster, ss


class TestReplayInvariant:
    @settings(max_examples=8, deadline=None)
    @given(jobs=workload_strategy)
    def test_restore_matches_live_digest_at_every_offset(self, jobs, tmp_path_factory):
        tmpdir = str(tmp_path_factory.mktemp("statesave"))
        digests, cluster, ss = _run_journaled(tmpdir, jobs, horizon=120.0)
        ss.close()
        records = StateSave(tmpdir, fsync=False).read_records()
        assert records, "the run journaled nothing"
        # crash at EVERY journal offset: replaying the prefix must land on
        # exactly the digest captured when that record was appended
        for k in range(1, len(records) + 1):
            prefix_dir = os.path.join(tmpdir, f"prefix-{k}")
            prefix = StateSave(prefix_dir, fsync=False)
            for rec in records[:k]:
                prefix.append(rec.type, rec.data, epoch=rec.epoch, time=rec.time)
            fresh = SimCluster(n_nodes=2, hpcg_duration_s=120)
            restored = Slurmctld.restore(
                fresh.sim, fresh.ctld.config, fresh.ctld.nodes, prefix,
                attach=False,
            )
            assert restored.state_digest() == digests[records[k - 1].seq], (
                f"replay of {k}/{len(records)} records diverged "
                f"(last record: {records[k - 1].type})"
            )
            prefix.close()

    def test_snapshot_plus_suffix_equals_full_replay(self, tmp_path):
        jobs = [
            (8, 10, False, False, True),
            (16, 10, False, True, True),
            (4, 10, True, False, False),
            (32, 10, False, True, False),
        ]
        digests, cluster, ss = _run_journaled(
            str(tmp_path), jobs, horizon=150.0, snapshot_interval=5
        )
        assert ss.load_latest_snapshot() is not None, "no snapshot written"
        live_digest = cluster.ctld.state_digest()
        ss.close()
        again = StateSave(str(tmp_path), fsync=False)
        fresh = SimCluster(n_nodes=2, hpcg_duration_s=120)
        restored = Slurmctld.restore(
            fresh.sim, fresh.ctld.config, fresh.ctld.nodes, again, attach=False,
        )
        assert restored.state_digest() == live_digest
        # and the restored controller runs the remaining work to completion
        fresh.sim.run(until=3600.0)
        assert all(j.state.is_terminal for j in restored.jobs.values())

    def test_restored_controller_finishes_the_workload(self, tmp_path):
        # prop-1 afterok-depends on prop-0: the crash happens while the
        # dependency is still held, so the restored controller must re-arm
        # the DAG and release prop-1 when prop-0 finishes post-restore
        jobs = [(8, 30, False, False, False), (16, 30, False, True, True)]
        digests, cluster, ss = _run_journaled(str(tmp_path), jobs, horizon=30.0)
        ss.close()
        again = StateSave(str(tmp_path), fsync=False)
        fresh = SimCluster(n_nodes=2, hpcg_duration_s=120)
        restored = Slurmctld.restore(
            fresh.sim, fresh.ctld.config, fresh.ctld.nodes, again, attach=False,
        )
        fresh.sim.run(until=3600.0)
        states = {j.descriptor.name: j.state.name for j in restored.jobs.values()}
        assert states == {"prop-0": "COMPLETED", "prop-1": "COMPLETED"}
        assert len(restored.accounting) == 2
