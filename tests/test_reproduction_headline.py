"""The paper's headline claims, reproduced end-to-end through the real
pipeline (simulated cluster + Chronus benchmark service + IPMI sampling).

These are the acceptance tests of the whole reproduction: who wins, by
roughly what factor, and where the crossovers fall.
"""

import pytest

from repro.core.application.benchmark_service import BenchmarkService
from repro.core.domain.configuration import Configuration
from repro.core.runners.hpcg_runner import HpcgRunner
from repro.core.services.ipmi_service import IpmiSystemService
from repro.core.services.lscpu_info import LscpuSystemInfo
from repro.core.repositories.memory_repository import MemoryRepository
from repro.hpcg import reference
from repro.slurm.cluster import HPCG_BINARY, SimCluster

STANDARD = Configuration(32, 1, 2_500_000)
BEST = Configuration(32, 1, 2_200_000)


@pytest.fixture(scope="module")
def full_runs():
    """Two complete (work-bounded) runs: standard and best configuration."""
    cluster = SimCluster(seed=21)  # completion mode
    repo = MemoryRepository()
    service = BenchmarkService(
        repo,
        HpcgRunner(cluster, HPCG_BINARY),
        IpmiSystemService(cluster.ipmi, clock=lambda: cluster.sim.now),
        LscpuSystemInfo(cluster.node),
        sample_interval_s=3.0,
    )
    std = service.run_one(STANDARD, clock=lambda: cluster.sim.now)
    best = service.run_one(BEST, clock=lambda: cluster.sim.now)
    return std, best


class TestTable2Reproduction:
    def test_average_system_power(self, full_runs):
        std, best = full_runs
        assert std.average_system_w() == pytest.approx(216.6, rel=0.04)
        assert best.average_system_w() == pytest.approx(190.1, rel=0.04)

    def test_average_cpu_power(self, full_runs):
        std, best = full_runs
        assert std.average_cpu_w() == pytest.approx(120.4, rel=0.05)
        assert best.average_cpu_w() == pytest.approx(97.4, rel=0.05)

    def test_average_temperature(self, full_runs):
        std, best = full_runs
        assert std.average_cpu_temp_c() == pytest.approx(62.8, abs=2.0)
        assert best.average_cpu_temp_c() == pytest.approx(53.8, abs=2.0)

    def test_runtimes(self, full_runs):
        std, best = full_runs
        assert std.runtime_s == pytest.approx(18 * 60 + 29, rel=0.03)
        assert best.runtime_s == pytest.approx(18 * 60 + 47, rel=0.04)
        assert best.runtime_s > std.runtime_s

    def test_system_energy_reduction_about_11_percent(self, full_runs):
        """The paper's abstract number: ~11% system-energy saving."""
        std, best = full_runs
        reduction = 1.0 - best.system_energy_j() / std.system_energy_j()
        assert 0.07 <= reduction <= 0.14

    def test_cpu_energy_reduction(self, full_runs):
        """Paper: 18% CPU-energy reduction (we reproduce ~16%)."""
        std, best = full_runs
        reduction = 1.0 - best.cpu_energy_j() / std.cpu_energy_j()
        assert 0.12 <= reduction <= 0.22

    def test_energy_magnitudes(self, full_runs):
        std, best = full_runs
        assert std.system_energy_j() == pytest.approx(240_200, rel=0.06)
        assert best.system_energy_j() == pytest.approx(214_400, rel=0.06)


class TestGflopsPerWattClaims:
    def test_best_beats_standard_by_about_13_percent(self, full_runs):
        std, best = full_runs
        ratio = best.gflops_per_watt() / std.gflops_per_watt()
        assert 1.08 <= ratio <= 1.16  # paper: 1.13

    def test_performance_loss_small(self, full_runs):
        std, best = full_runs
        perf_ratio = best.gflops / std.gflops
        assert 0.95 <= perf_ratio <= 0.995  # paper: 0.98

    def test_absolute_efficiency_levels(self, full_runs):
        std, best = full_runs
        assert std.gflops_per_watt() == pytest.approx(0.0432, rel=0.05)
        assert best.gflops_per_watt() == pytest.approx(0.0488, rel=0.05)


class TestFigure15Shape:
    def test_standard_power_fluctuates_more(self, full_runs):
        """Figure 15: standard-config power oscillates, best is stable."""
        import numpy as np

        std, best = full_runs
        # skip the setup phase and the thermal transient
        def steady(run):
            w = np.array([s.system_w for s in run.samples])
            return w[len(w) // 4 :]

        assert steady(std).std() > 2.0 * steady(best).std()

    def test_best_runs_cooler(self, full_runs):
        std, best = full_runs
        assert best.average_cpu_temp_c() < std.average_cpu_temp_c() - 5.0


class TestEquation1:
    def test_ipmi_vs_wattmeter(self):
        from repro.analysis.metrics import percentage_difference
        from repro.hardware.node import ConstantWorkload

        cluster = SimCluster(seed=4)
        cluster.node.start_workload(
            ConstantWorkload(cores=32, compute_fraction=0.05, bandwidth_gbs=37.0),
            freq_min_khz=2_500_000,
        )
        cluster.sim.call_at(900.0, lambda: None)
        cluster.sim.run()
        ipmi = cluster.ipmi.total_power_watts()
        meter = cluster.wattmeter.read().total_w
        diff = percentage_difference(ipmi, meter)
        assert diff == pytest.approx(reference.EQ1_PERCENT_DIFFERENCE, abs=0.8)
