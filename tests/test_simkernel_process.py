"""Unit tests for periodic tasks and processes."""

import pytest

from repro.simkernel.engine import SimulationError, Simulator
from repro.simkernel.process import PeriodicTask, Process


class TestProcess:
    def test_now_tracks_simulator(self):
        sim = Simulator()
        proc = Process(sim, name="p")
        sim.call_at(4.0, lambda: None)
        sim.run()
        assert proc.now == 4.0

    def test_default_name(self):
        assert Process(Simulator()).name == "Process"


class TestPeriodicTask:
    def test_fires_on_cadence(self):
        sim = Simulator()
        times = []
        task = PeriodicTask(sim, 2.0, lambda: times.append(sim.now))
        task.start()
        sim.run(until=7.0)
        assert times == [2.0, 4.0, 6.0]
        assert task.invocations == 3

    def test_immediate_start(self):
        sim = Simulator()
        times = []
        task = PeriodicTask(sim, 2.0, lambda: times.append(sim.now), immediate=True)
        task.start()
        sim.run(until=4.0)
        assert times == [0.0, 2.0, 4.0]

    def test_start_at(self):
        sim = Simulator()
        times = []
        task = PeriodicTask(sim, 1.0, lambda: times.append(sim.now), start_at=5.0)
        task.start()
        sim.run(until=7.0)
        assert times == [5.0, 6.0, 7.0]

    def test_stop_cancels_future_firings(self):
        sim = Simulator()
        times = []
        task = PeriodicTask(sim, 1.0, lambda: times.append(sim.now))
        task.start()
        sim.call_at(3.5, task.stop)
        sim.run(until=10.0)
        assert times == [1.0, 2.0, 3.0]
        assert not task.running

    def test_callback_can_stop_itself(self):
        sim = Simulator()
        task = PeriodicTask(sim, 1.0, lambda: task.stop() if task.invocations >= 2 else None)
        task.start()
        sim.run(until=100.0)
        assert task.invocations == 2

    def test_double_start_is_noop(self):
        sim = Simulator()
        count = []
        task = PeriodicTask(sim, 1.0, lambda: count.append(1))
        task.start()
        task.start()
        sim.run(until=1.0)
        assert count == [1]

    def test_rejects_nonpositive_period(self):
        with pytest.raises(SimulationError):
            PeriodicTask(Simulator(), 0.0, lambda: None)
        with pytest.raises(SimulationError):
            PeriodicTask(Simulator(), -1.0, lambda: None)
