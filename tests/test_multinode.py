"""Tests for the multi-node extension (paper section 6.2.3).

Covers: multi-node cluster construction, scheduling across nodes,
multi-node job shards, energy attribution over the whole allocation, the
cluster-wide power API integration, and multi-node HPCG scaling shape.
"""

import pytest

from repro.core.services.cluster_power import ClusterPowerService
from repro.hpcg.workload import HpcgWorkload
from repro.slurm.batch_script import parse_batch_script
from repro.slurm.cluster import HPCG_BINARY, SimCluster
from repro.slurm.commands import parse_sbatch_output
from repro.slurm.controller import SubmitError
from repro.slurm.job import JobState


def multinode_script(nodes: int, ntasks: int, freq: int = 2_200_000, tpc: int = 1,
                     time_limit: str = "") -> str:
    lines = [
        "#!/bin/bash",
        f"#SBATCH --nodes={nodes}",
        f"#SBATCH --ntasks={ntasks}",
        f"#SBATCH --cpu-freq={freq}",
    ]
    if time_limit:
        lines.append(f"#SBATCH --time={time_limit}")
    lines.append("")
    lines.append(f"srun --mpi=pmix_v4 --ntasks-per-core={tpc} {HPCG_BINARY}")
    return "\n".join(lines) + "\n"


@pytest.fixture
def cluster4() -> SimCluster:
    return SimCluster(seed=9, n_nodes=4)


class TestClusterConstruction:
    def test_node_count_and_names(self, cluster4):
        assert len(cluster4.nodes) == 4
        assert [n.hostname for n in cluster4.nodes] == [
            "node001", "node002", "node003", "node004",
        ]
        assert cluster4.node is cluster4.nodes[0]

    def test_per_node_bmc(self, cluster4):
        assert len(cluster4.ipmis) == 4
        for ipmi in cluster4.ipmis:
            assert ipmi.total_power_watts() > 0

    def test_rejects_zero_nodes(self):
        with pytest.raises(ValueError):
            SimCluster(n_nodes=0)

    def test_sinfo_lists_all_nodes(self, cluster4):
        text = cluster4.commands.sinfo()
        for name in ("node001", "node004"):
            assert name in text


class TestMultiNodeJobs:
    def test_two_node_job_spans_two_nodes(self, cluster4):
        job = cluster4.submit_and_wait(multinode_script(2, 64))
        assert job.state is JobState.COMPLETED
        assert len(job.node_list) == 2
        assert job.descriptor.tasks_per_node == 32

    def test_shards_occupy_their_nodes(self, cluster4):
        jid = parse_sbatch_output(cluster4.commands.sbatch(multinode_script(2, 64)))
        job = cluster4.ctld.get_job(jid)
        assert job.state is JobState.RUNNING
        busy = [n for n in cluster4.nodes if n.free_cores() == 0]
        assert len(busy) == 2
        cluster4.ctld.cancel(jid)
        assert all(n.free_cores() == 32 for n in cluster4.nodes)

    def test_multi_node_rating_scales_sublinearly(self, cluster4):
        single = cluster4.submit_and_wait(multinode_script(1, 32))
        quad = cluster4.submit_and_wait(multinode_script(4, 128))
        from repro.core.runners.hpcg_runner import parse_hpcg_rating

        g1 = parse_hpcg_rating(single.stdout)
        g4 = parse_hpcg_rating(quad.stdout)
        # more nodes => faster, but below perfect linear scaling
        assert g4 > 2.5 * g1
        assert g4 < 4.0 * g1

    def test_multi_node_energy_covers_all_nodes(self, cluster4):
        one = cluster4.submit_and_wait(multinode_script(1, 32, time_limit="0:05:00"))
        two = cluster4.submit_and_wait(multinode_script(2, 64, time_limit="0:05:00"))
        # both timed out at 5 min; the 2-node job burned roughly twice the
        # marginal energy (same idle baseline counted on both nodes)
        assert two.consumed_energy_j > 1.7 * one.consumed_energy_j

    def test_scontrol_shows_nodelist(self, cluster4):
        jid = parse_sbatch_output(cluster4.commands.sbatch(multinode_script(3, 96)))
        text = cluster4.commands.scontrol_show_job(jid)
        assert "NumNodes=3" in text
        assert "NodeList=node001,node002,node003" in text

    def test_too_many_nodes_rejected(self, cluster4):
        with pytest.raises(SubmitError, match="exceeds the cluster"):
            cluster4.ctld.submit(
                parse_batch_script(multinode_script(5, 160))
            )

    def test_parse_nodes_from_script(self):
        desc = parse_batch_script(multinode_script(2, 64))
        assert desc.nodes == 2
        assert desc.num_tasks == 64


class TestSchedulingAcrossNodes:
    def test_single_node_jobs_spread(self, cluster4):
        ids = [
            parse_sbatch_output(cluster4.commands.sbatch(multinode_script(1, 32)))
            for _ in range(4)
        ]
        jobs = [cluster4.ctld.get_job(i) for i in ids]
        assert all(j.state is JobState.RUNNING for j in jobs)
        assert len({j.node for j in jobs}) == 4

    def test_fifth_job_queues(self, cluster4):
        for _ in range(4):
            cluster4.commands.sbatch(multinode_script(1, 32))
        jid = parse_sbatch_output(cluster4.commands.sbatch(multinode_script(1, 32)))
        assert cluster4.ctld.get_job(jid).state is JobState.PENDING

    def test_multi_node_head_waits_for_enough_nodes(self, cluster4):
        # fill three nodes
        for _ in range(3):
            cluster4.commands.sbatch(multinode_script(1, 32))
        # 2-node job: only one node free -> pending
        jid = parse_sbatch_output(cluster4.commands.sbatch(multinode_script(2, 64)))
        assert cluster4.ctld.get_job(jid).state is JobState.PENDING

    def test_small_job_backfills_around_multinode_head(self, cluster4):
        # node001..003 busy for a long time; head wants 4 nodes
        for _ in range(3):
            cluster4.commands.sbatch(multinode_script(1, 32, time_limit="3:00:00"))
        head = parse_sbatch_output(
            cluster4.commands.sbatch(multinode_script(4, 128, time_limit="1:00:00"))
        )
        # a short small job fits on node004 and finishes before the head
        # could possibly start
        small = parse_sbatch_output(
            cluster4.commands.sbatch(multinode_script(1, 4, time_limit="0:05:00"))
        )
        assert cluster4.ctld.get_job(head).state is JobState.PENDING
        assert cluster4.ctld.get_job(small).state is JobState.RUNNING


class TestClusterPowerService:
    def test_sums_across_nodes(self, cluster4):
        svc = ClusterPowerService(cluster4.ipmis, clock=lambda: cluster4.sim.now)
        single = cluster4.ipmis[0].total_power_watts()
        sample = svc.sample()
        assert sample.system_w == pytest.approx(4 * single, rel=0.05)
        assert sample.cpu_w < sample.system_w

    def test_temperature_is_max(self, cluster4):
        # heat up node002 only
        wl = HpcgWorkload(32, 1, 2_500_000)
        cluster4.nodes[1].start_workload(wl, freq_min_khz=2_500_000)
        cluster4.sim.call_at(600.0, lambda: None)
        cluster4.sim.run()
        svc = ClusterPowerService(cluster4.ipmis, clock=lambda: cluster4.sim.now)
        sample = svc.sample()
        hot = cluster4.ipmis[1].cpu_temp_c()
        assert sample.cpu_temp_c == pytest.approx(hot, abs=1.5)

    def test_needs_at_least_one_node(self):
        with pytest.raises(ValueError):
            ClusterPowerService([], clock=lambda: 0.0)

    def test_permission_error_names_the_node(self, cluster4):
        from repro.core.domain.errors import ChronusError

        cluster4.ipmis[2].chmod_device(False)
        svc = ClusterPowerService(cluster4.ipmis, clock=lambda: 0.0)
        with pytest.raises(ChronusError, match="node003"):
            svc.sample()


class TestBenchmarkingOnMultiNodeCluster:
    def test_chronus_benchmarks_with_cluster_power(self, cluster4, tmp_path):
        """Chronus runs its sweep against the cluster-wide power API —
        the paper's multi-node integration swap."""
        from repro.core.application.benchmark_service import BenchmarkService
        from repro.core.domain.configuration import Configuration
        from repro.core.repositories.memory_repository import MemoryRepository
        from repro.core.runners.hpcg_runner import HpcgRunner
        from repro.core.services.lscpu_info import LscpuSystemInfo

        cluster4.hpcg_duration_s = 300.0
        service = BenchmarkService(
            MemoryRepository(),
            HpcgRunner(cluster4, HPCG_BINARY),
            ClusterPowerService(cluster4.ipmis, clock=lambda: cluster4.sim.now),
            LscpuSystemInfo(cluster4.node),
        )
        run = service.run_one(
            Configuration(32, 1, 2_200_000), clock=lambda: cluster4.sim.now
        )
        # system power now includes three idle nodes' baseline
        assert run.average_system_w() > 3 * 130.0
