"""Unit tests for the discrete-event engine."""

import pytest

from repro.simkernel.engine import EventQueue, SimClock, SimulationError, Simulator


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now == 0.0

    def test_custom_start(self):
        assert SimClock(5.5).now == 5.5

    def test_cannot_move_backwards(self):
        clock = SimClock(10.0)
        with pytest.raises(SimulationError):
            clock._advance_to(9.0)

    def test_advance_forward(self):
        clock = SimClock()
        clock._advance_to(3.0)
        assert clock.now == 3.0


class TestEventQueue:
    def test_pop_in_time_order(self):
        q = EventQueue()
        order = []
        q.push(3.0, lambda: order.append("c"))
        q.push(1.0, lambda: order.append("a"))
        q.push(2.0, lambda: order.append("b"))
        while (ev := q.pop()) is not None:
            ev.callback()
        assert order == ["a", "b", "c"]

    def test_ties_break_by_insertion_order(self):
        q = EventQueue()
        q.push(1.0, lambda: None, name="first")
        q.push(1.0, lambda: None, name="second")
        assert q.pop().name == "first"
        assert q.pop().name == "second"

    def test_cancelled_events_skipped(self):
        q = EventQueue()
        ev = q.push(1.0, lambda: None, name="cancelled")
        q.push(2.0, lambda: None, name="kept")
        ev.cancel()
        assert q.pop().name == "kept"

    def test_len_excludes_cancelled(self):
        q = EventQueue()
        ev = q.push(1.0, lambda: None)
        q.push(2.0, lambda: None)
        assert len(q) == 2
        ev.cancel()
        assert len(q) == 1

    def test_peek_time_skips_cancelled(self):
        q = EventQueue()
        ev = q.push(1.0, lambda: None)
        q.push(5.0, lambda: None)
        ev.cancel()
        assert q.peek_time() == 5.0

    def test_rejects_non_finite_time(self):
        q = EventQueue()
        with pytest.raises(SimulationError):
            q.push(float("inf"), lambda: None)
        with pytest.raises(SimulationError):
            q.push(float("nan"), lambda: None)


class TestSimulator:
    def test_run_executes_all(self):
        sim = Simulator()
        fired = []
        sim.call_at(1.0, lambda: fired.append(1))
        sim.call_at(2.0, lambda: fired.append(2))
        assert sim.run() == 2
        assert fired == [1, 2]
        assert sim.now == 2.0

    def test_call_in_relative(self):
        sim = Simulator()
        sim.call_at(5.0, lambda: sim.call_in(3.0, lambda: None))
        sim.run()
        assert sim.now == 8.0

    def test_cannot_schedule_in_past(self):
        sim = Simulator()
        sim.call_at(5.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.call_at(4.0, lambda: None)

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.call_in(-1.0, lambda: None)

    def test_run_until_horizon(self):
        sim = Simulator()
        fired = []
        sim.call_at(1.0, lambda: fired.append(1))
        sim.call_at(10.0, lambda: fired.append(10))
        executed = sim.run(until=5.0)
        assert executed == 1
        assert fired == [1]
        assert sim.now == 5.0  # clock advanced to the horizon
        sim.run()
        assert fired == [1, 10]

    def test_run_until_advances_clock_even_with_no_events(self):
        sim = Simulator()
        sim.run(until=42.0)
        assert sim.now == 42.0

    def test_events_scheduled_during_run_execute(self):
        sim = Simulator()
        fired = []
        def chain(n: int):
            fired.append(n)
            if n < 3:
                sim.call_in(1.0, lambda: chain(n + 1))
        sim.call_at(0.0, lambda: chain(0))
        sim.run()
        assert fired == [0, 1, 2, 3]
        assert sim.now == 3.0

    def test_stop_halts_loop(self):
        sim = Simulator()
        fired = []
        sim.call_at(1.0, lambda: (fired.append(1), sim.stop()))
        sim.call_at(2.0, lambda: fired.append(2))
        sim.run()
        assert fired == [1]
        assert len(sim.events) == 1

    def test_max_events_limit(self):
        sim = Simulator()
        for i in range(10):
            sim.call_at(float(i), lambda: None)
        assert sim.run(max_events=4) == 4

    def test_not_reentrant(self):
        sim = Simulator()
        captured = {}
        def inner():
            try:
                sim.run()
            except SimulationError as exc:
                captured["err"] = exc
        sim.call_at(1.0, inner)
        sim.run()
        assert "err" in captured

    def test_processed_events_counter(self):
        sim = Simulator()
        sim.call_at(1.0, lambda: None)
        sim.call_at(2.0, lambda: None)
        sim.run()
        assert sim.processed_events == 2

    def test_peek_next_time(self):
        sim = Simulator()
        assert sim.peek_next_time() is None
        sim.call_at(7.0, lambda: None)
        assert sim.peek_next_time() == 7.0


class TestLiveCountAndCompaction:
    def test_len_counts_only_live(self):
        q = EventQueue()
        events = [q.push(float(i), lambda: None) for i in range(10)]
        assert len(q) == 10
        for ev in events[:4]:
            ev.cancel()
        assert len(q) == 6
        assert q.cancelled_pending == 4

    def test_double_cancel_is_idempotent(self):
        q = EventQueue()
        ev = q.push(1.0, lambda: None)
        q.push(2.0, lambda: None)
        ev.cancel()
        ev.cancel()
        assert len(q) == 1

    def test_cancel_after_pop_does_not_corrupt(self):
        q = EventQueue()
        ev = q.push(1.0, lambda: None)
        q.push(2.0, lambda: None)
        popped = q.pop()
        assert popped is ev
        ev.cancel()  # late cancel of an already-fired event: no effect
        assert len(q) == 1
        assert q.pop() is not None
        assert q.pop() is None

    def test_compaction_triggers_past_half_cancelled(self):
        q = EventQueue()
        events = [q.push(float(i), lambda: None) for i in range(100)]
        for ev in events[:60]:
            ev.cancel()
        # >50% of a >=64-entry heap is tombstones: one compaction happened
        # (at the 51st cancel); the few cancels after it stay lazily
        # tombstoned because the compacted heap is below the 64-entry floor
        assert q.compactions >= 1
        assert q.cancelled_pending < 60
        assert len(q) == 40

    def test_small_heaps_never_compact(self):
        q = EventQueue()
        events = [q.push(float(i), lambda: None) for i in range(10)]
        for ev in events:
            ev.cancel()
        assert q.compactions == 0

    def test_compaction_preserves_order_and_survivors(self):
        q = EventQueue()
        order = []
        events = []
        for i in range(128):
            events.append(q.push(float(i), lambda i=i: order.append(i)))
        for ev in events[::2]:  # cancel every even event...
            ev.cancel()
        events[1].cancel()  # ...plus one more, so tombstones exceed live
        assert q.compactions >= 1
        sim = Simulator()
        sim.events = q
        sim.run()
        assert order == list(range(3, 128, 2))

    def test_explicit_compact_noop_when_clean(self):
        q = EventQueue()
        q.push(1.0, lambda: None)
        q.compact()
        assert q.compactions == 0


class TestBatchScheduling:
    def test_push_many_matches_loop_semantics(self):
        order_a, order_b = [], []
        sim_a = Simulator()
        for i in range(50):
            t = float(i % 7)
            sim_a.call_at(t, lambda i=i: order_a.append(i))
        sim_b = Simulator()
        sim_b.call_at_many(
            [(float(i % 7), lambda i=i: order_b.append(i)) for i in range(50)]
        )
        sim_a.run()
        sim_b.run()
        # identical order: batch submission keeps per-entry seq assignment,
        # so ties fire in submission order either way
        assert order_a == order_b

    def test_call_at_many_rejects_past(self):
        sim = Simulator()
        sim.call_at(5.0, sim.stop)
        sim.run()
        with pytest.raises(SimulationError):
            sim.call_at_many([(1.0, lambda: None)])

    def test_push_many_rejects_non_finite(self):
        q = EventQueue()
        with pytest.raises(SimulationError):
            q.push_many([(float("nan"), lambda: None)])

    def test_push_many_with_names_and_empty(self):
        q = EventQueue()
        assert q.push_many([]) == []
        events = q.push_many([(1.0, lambda: None, "batch-ev")])
        assert events[0].name == "batch-ev"
        assert len(q) == 1

    def test_large_batch_onto_small_heap(self):
        q = EventQueue()
        q.push(100.0, lambda: None)
        q.push_many([(float(i), lambda: None) for i in range(1000)])
        assert len(q) == 1001
        times = []
        while True:
            ev = q.pop()
            if ev is None:
                break
            times.append(ev.time)
        assert times == sorted(times)

    def test_small_batch_onto_large_heap(self):
        q = EventQueue()
        for i in range(1000):
            q.push(float(i), lambda: None)
        q.push_many([(0.5, lambda: None), (999.5, lambda: None)])
        assert len(q) == 1002
        first = q.pop()
        second = q.pop()
        assert (first.time, second.time) == (0.0, 0.5)


class TestDaemonEvents:
    """call_every tickers are daemons: they never keep a run alive."""

    def test_call_every_fires_on_interval(self):
        sim = Simulator()
        ticks = []
        sim.call_every(1.0, lambda: ticks.append(sim.now))
        sim.call_at(3.5, lambda: None)  # foreground work defines the horizon
        sim.run()
        assert ticks == [1.0, 2.0, 3.0]

    def test_unbounded_run_stops_when_only_daemons_remain(self):
        sim = Simulator()
        sim.call_every(1.0, lambda: None)
        sim.run()  # must terminate: no foreground events at all
        assert sim.now == 0.0

    def test_daemons_fire_during_bounded_run(self):
        sim = Simulator()
        ticks = []
        sim.call_every(2.0, lambda: ticks.append(sim.now))
        sim.run(until=7.0)
        assert ticks == [2.0, 4.0, 6.0]
        assert sim.now == 7.0

    def test_repeating_event_cancel(self):
        sim = Simulator()
        ticks = []
        ticker = sim.call_every(1.0, lambda: ticks.append(sim.now))
        sim.call_at(1.5, ticker.cancel)
        sim.call_at(5.0, lambda: None)
        sim.run()
        assert ticks == [1.0]
        assert ticker.fired == 1

    def test_live_foreground_excludes_daemons(self):
        q = EventQueue()
        q.push(1.0, lambda: None, daemon=True)
        q.push(2.0, lambda: None)
        assert len(q) == 2
        assert q.live_foreground == 1

    def test_daemon_keeps_ticking_between_sparse_foreground(self):
        sim = Simulator()
        ticks = []
        sim.call_every(1.0, lambda: ticks.append(sim.now))
        sim.call_at(10.5, lambda: None)
        sim.run()
        assert len(ticks) == 10

    def test_nonpositive_interval_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.call_every(0.0, lambda: None)
