"""Unit tests for the discrete-event engine."""

import pytest

from repro.simkernel.engine import EventQueue, SimClock, SimulationError, Simulator


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now == 0.0

    def test_custom_start(self):
        assert SimClock(5.5).now == 5.5

    def test_cannot_move_backwards(self):
        clock = SimClock(10.0)
        with pytest.raises(SimulationError):
            clock._advance_to(9.0)

    def test_advance_forward(self):
        clock = SimClock()
        clock._advance_to(3.0)
        assert clock.now == 3.0


class TestEventQueue:
    def test_pop_in_time_order(self):
        q = EventQueue()
        order = []
        q.push(3.0, lambda: order.append("c"))
        q.push(1.0, lambda: order.append("a"))
        q.push(2.0, lambda: order.append("b"))
        while (ev := q.pop()) is not None:
            ev.callback()
        assert order == ["a", "b", "c"]

    def test_ties_break_by_insertion_order(self):
        q = EventQueue()
        q.push(1.0, lambda: None, name="first")
        q.push(1.0, lambda: None, name="second")
        assert q.pop().name == "first"
        assert q.pop().name == "second"

    def test_cancelled_events_skipped(self):
        q = EventQueue()
        ev = q.push(1.0, lambda: None, name="cancelled")
        q.push(2.0, lambda: None, name="kept")
        ev.cancel()
        assert q.pop().name == "kept"

    def test_len_excludes_cancelled(self):
        q = EventQueue()
        ev = q.push(1.0, lambda: None)
        q.push(2.0, lambda: None)
        assert len(q) == 2
        ev.cancel()
        assert len(q) == 1

    def test_peek_time_skips_cancelled(self):
        q = EventQueue()
        ev = q.push(1.0, lambda: None)
        q.push(5.0, lambda: None)
        ev.cancel()
        assert q.peek_time() == 5.0

    def test_rejects_non_finite_time(self):
        q = EventQueue()
        with pytest.raises(SimulationError):
            q.push(float("inf"), lambda: None)
        with pytest.raises(SimulationError):
            q.push(float("nan"), lambda: None)


class TestSimulator:
    def test_run_executes_all(self):
        sim = Simulator()
        fired = []
        sim.call_at(1.0, lambda: fired.append(1))
        sim.call_at(2.0, lambda: fired.append(2))
        assert sim.run() == 2
        assert fired == [1, 2]
        assert sim.now == 2.0

    def test_call_in_relative(self):
        sim = Simulator()
        sim.call_at(5.0, lambda: sim.call_in(3.0, lambda: None))
        sim.run()
        assert sim.now == 8.0

    def test_cannot_schedule_in_past(self):
        sim = Simulator()
        sim.call_at(5.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.call_at(4.0, lambda: None)

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.call_in(-1.0, lambda: None)

    def test_run_until_horizon(self):
        sim = Simulator()
        fired = []
        sim.call_at(1.0, lambda: fired.append(1))
        sim.call_at(10.0, lambda: fired.append(10))
        executed = sim.run(until=5.0)
        assert executed == 1
        assert fired == [1]
        assert sim.now == 5.0  # clock advanced to the horizon
        sim.run()
        assert fired == [1, 10]

    def test_run_until_advances_clock_even_with_no_events(self):
        sim = Simulator()
        sim.run(until=42.0)
        assert sim.now == 42.0

    def test_events_scheduled_during_run_execute(self):
        sim = Simulator()
        fired = []
        def chain(n: int):
            fired.append(n)
            if n < 3:
                sim.call_in(1.0, lambda: chain(n + 1))
        sim.call_at(0.0, lambda: chain(0))
        sim.run()
        assert fired == [0, 1, 2, 3]
        assert sim.now == 3.0

    def test_stop_halts_loop(self):
        sim = Simulator()
        fired = []
        sim.call_at(1.0, lambda: (fired.append(1), sim.stop()))
        sim.call_at(2.0, lambda: fired.append(2))
        sim.run()
        assert fired == [1]
        assert len(sim.events) == 1

    def test_max_events_limit(self):
        sim = Simulator()
        for i in range(10):
            sim.call_at(float(i), lambda: None)
        assert sim.run(max_events=4) == 4

    def test_not_reentrant(self):
        sim = Simulator()
        captured = {}
        def inner():
            try:
                sim.run()
            except SimulationError as exc:
                captured["err"] = exc
        sim.call_at(1.0, inner)
        sim.run()
        assert "err" in captured

    def test_processed_events_counter(self):
        sim = Simulator()
        sim.call_at(1.0, lambda: None)
        sim.call_at(2.0, lambda: None)
        sim.run()
        assert sim.processed_events == 2

    def test_peek_next_time(self):
        sim = Simulator()
        assert sim.peek_next_time() is None
        sim.call_at(7.0, lambda: None)
        assert sim.peek_next_time() == 7.0
