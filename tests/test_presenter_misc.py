"""Tests for presenter views, squeue/sinfo/sacct details, and misc gaps."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.domain.model import ModelMetadata
from repro.core.domain.system_info import SystemInfo
from repro.core.presenter.views import (
    render_benchmark_row,
    render_models_table,
    render_systems_table,
)
from repro.slurm.batch_script import build_script, parse_batch_script
from repro.slurm.cluster import HPCG_BINARY, SimCluster


class TestSystemsTable:
    def test_empty_hint(self):
        text = render_systems_table([])
        assert "chronus benchmark" in text

    def test_lists_systems_with_hint(self):
        info = SystemInfo("AMD EPYC 7502P 32-Core Processor", 32, 2,
                          (1_500_000.0, 2_200_000.0, 2_500_000.0))
        text = render_systems_table([(1, info)])
        assert "Available Systems" in text
        assert "1500000 2200000 2500000" in text
        assert "--system <id>" in text


class TestModelsTable:
    def test_empty_hint(self):
        assert "init-model" in render_models_table([])

    def test_lists_models(self):
        meta = ModelMetadata(3, "random-forest", 1, "hpcg", "/b/m.json", 1.0, 138)
        text = render_models_table([meta])
        assert "random-forest" in text
        assert "--model <id>" in text


class TestBenchmarkRow:
    def test_contains_metrics(self, steady_rows):
        line = render_benchmark_row(steady_rows[0])
        assert "GFLOP/s" in line and "GFLOPS/W" in line and "kHz" in line


class TestBuildScriptNodes:
    def test_nodes_parameter_roundtrip(self):
        script = build_script(64, 2_200_000, 1, HPCG_BINARY, nodes=2)
        desc = parse_batch_script(script)
        assert desc.nodes == 2
        assert desc.num_tasks == 64
        assert desc.tasks_per_node == 32

    @settings(max_examples=25, deadline=None)
    @given(nodes=st.integers(1, 4), per_node=st.integers(1, 32))
    def test_roundtrip_property(self, nodes, per_node):
        script = build_script(per_node * nodes, 2_200_000, 1, "/bin/app", nodes=nodes)
        desc = parse_batch_script(script)
        assert desc.tasks_per_node == per_node


class TestNodeEnergyConservation:
    @settings(max_examples=10, deadline=None)
    @given(
        cores=st.integers(1, 32),
        cf=st.floats(0.0, 1.0),
        duration=st.floats(10.0, 2000.0),
    )
    def test_energy_equals_integrated_power(self, cores, cf, duration):
        """The node's continuous energy counter must match the trapezoid
        integral of finely sampled true power (conservation property)."""
        from repro.analysis.metrics import energy_joules
        from repro.hardware.node import ConstantWorkload

        cluster = SimCluster(seed=1)
        node = cluster.node
        node.start_workload(ConstantWorkload(cores=cores, compute_fraction=cf,
                                             bandwidth_gbs=10.0))
        e0 = node.true_energy_joules
        times, watts = [0.0], [node.instantaneous_power().system_w]
        steps = 80
        for i in range(1, steps + 1):
            t = duration * i / steps
            cluster.sim.run(until=t)
            times.append(t)
            watts.append(node.instantaneous_power().system_w)
        sampled = energy_joules(times, watts)
        true = node.true_energy_joules - e0
        assert sampled == pytest.approx(true, rel=0.01)


class TestSinfoMultiNodeStates:
    def test_mixed_states_across_nodes(self):
        cluster = SimCluster(seed=2, n_nodes=2)
        cluster.commands.sbatch(build_script(32, 2_200_000, 1, HPCG_BINARY))
        text = cluster.commands.sinfo()
        assert "alloc" in text
        assert "idle" in text


class TestSacctMultipleStates:
    def test_cancelled_and_completed_rows(self, sweep_cluster):
        from repro.slurm.commands import parse_sbatch_output

        sweep_cluster.submit_and_wait(
            build_script(4, 2_200_000, 1, HPCG_BINARY, job_name="done"))
        jid = parse_sbatch_output(sweep_cluster.commands.sbatch(
            build_script(4, 2_200_000, 1, HPCG_BINARY, job_name="gone")))
        sweep_cluster.commands.scancel(jid)
        text = sweep_cluster.commands.sacct()
        assert "COMPLETED" in text
        assert "CANCELLED" in text
