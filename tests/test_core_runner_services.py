"""Tests for the HPCG runner, IPMI service and lscpu discovery against the
simulated cluster."""

import pytest

from repro.core.domain.configuration import Configuration
from repro.core.domain.errors import ChronusError
from repro.core.runners.hpcg_runner import HpcgRunner, parse_hpcg_rating
from repro.core.services.ipmi_service import IpmiSystemService
from repro.core.services.lscpu_info import LscpuSystemInfo, parse_lscpu
from repro.slurm.cluster import HPCG_BINARY


class TestParseHpcgRating:
    def test_parses_final_summary(self):
        text = "...\nFinal Summary::HPCG result is VALID with a GFLOP/s rating of=9.34829\n"
        assert parse_hpcg_rating(text) == 9.34829

    def test_missing_rating(self):
        with pytest.raises(ChronusError, match="no GFLOP/s rating"):
            parse_hpcg_rating("job crashed")


class TestHpcgRunner:
    def test_generated_script_matches_listing6(self, sweep_cluster):
        runner = HpcgRunner(sweep_cluster, HPCG_BINARY)
        script = runner.generate_slurm_file_content(Configuration(28, 2, 2_200_000))
        assert "#SBATCH --nodes=1" in script
        assert "#SBATCH --ntasks=28" in script
        assert "#SBATCH --cpu-freq=2200000" in script
        assert "srun --mpi=pmix_v4 --ntasks-per-core=2" in script
        assert HPCG_BINARY in script

    def test_submit_wait_collect(self, sweep_cluster):
        runner = HpcgRunner(sweep_cluster, HPCG_BINARY)
        handle = runner.submit(Configuration(32, 1, 2_200_000))
        assert not runner.is_done(handle)
        while not runner.is_done(handle):
            runner.advance(3.0)
        result = runner.result(handle)
        assert result.success
        assert result.gflops == pytest.approx(9.0, abs=0.5)
        assert result.runtime_s == pytest.approx(600.0)

    def test_result_before_done_raises(self, sweep_cluster):
        runner = HpcgRunner(sweep_cluster, HPCG_BINARY)
        handle = runner.submit(Configuration(4, 1, 1_500_000))
        with pytest.raises(ChronusError, match="still"):
            runner.result(handle)

    def test_advance_validates(self, sweep_cluster):
        runner = HpcgRunner(sweep_cluster, HPCG_BINARY)
        with pytest.raises(ValueError):
            runner.advance(0.0)

    def test_failed_job_reported(self, cluster):
        runner = HpcgRunner(cluster, "/bin/not-registered")
        handle = runner.submit(Configuration(4, 1, 1_500_000))
        assert runner.is_done(handle)  # fails immediately
        result = runner.result(handle)
        assert not result.success
        assert result.gflops == 0.0


class TestIpmiService:
    def test_sample_fields(self, cluster):
        svc = IpmiSystemService(cluster.ipmi, clock=lambda: cluster.sim.now)
        sample = svc.sample()
        assert sample.system_w > sample.cpu_w > 0
        assert sample.time == cluster.sim.now

    def test_permission_error_wrapped(self, cluster):
        cluster.ipmi.chmod_device(False)
        svc = IpmiSystemService(cluster.ipmi, clock=lambda: 0.0)
        with pytest.raises(ChronusError, match="IPMI access denied"):
            svc.sample()


class TestLscpuDiscovery:
    def test_parse_lscpu(self):
        fields = parse_lscpu("CPU(s):   64\nModel name:  Foo Bar\n")
        assert fields["CPU(s)"] == "64"
        assert fields["Model name"] == "Foo Bar"

    def test_fetch_matches_node(self, cluster):
        info = LscpuSystemInfo(cluster.node).fetch()
        assert info.cpu_name == "AMD EPYC 7502P 32-Core Processor"
        assert info.cores == 32
        assert info.threads_per_core == 2
        assert info.frequencies == (1_500_000.0, 2_200_000.0, 2_500_000.0)
        assert info.ram_kb == 256 * 1024 * 1024

    def test_fingerprint_stable_across_fetches(self, cluster):
        svc = LscpuSystemInfo(cluster.node)
        assert svc.fetch().fingerprint() == svc.fetch().fingerprint()
