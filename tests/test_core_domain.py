"""Tests for Chronus domain entities."""

import json

import pytest
from hypothesis import given, strategies as st

from repro.core.domain.benchmark import BenchmarkResult
from repro.core.domain.configuration import Configuration
from repro.core.domain.model import ModelMetadata
from repro.core.domain.run import EnergySample, Run
from repro.core.domain.settings import ChronusSettings
from repro.core.domain.system_info import SystemInfo


class TestConfiguration:
    def test_paper_json_shape(self):
        cfg = Configuration(cores=32, threads_per_core=2, frequency=2_200_000)
        assert json.loads(cfg.to_json()) == {
            "cores": 32,
            "threads_per_core": 2,
            "frequency": 2200000,
        }

    def test_from_json(self):
        cfg = Configuration.from_json(
            '{"cores": 4, "threads_per_core": 1, "frequency": 1500000}'
        )
        assert cfg == Configuration(4, 1, 1_500_000)

    def test_derived_properties(self):
        cfg = Configuration(8, 2, 2_500_000)
        assert cfg.frequency_ghz == 2.5
        assert cfg.hyperthread

    def test_validation(self):
        with pytest.raises(ValueError):
            Configuration(0, 1, 1_500_000)
        with pytest.raises(ValueError):
            Configuration(1, 3, 1_500_000)
        with pytest.raises(ValueError):
            Configuration(1, 1, 0)

    def test_from_dict_missing_keys(self):
        with pytest.raises(ValueError, match="missing keys"):
            Configuration.from_dict({"cores": 1})

    def test_list_from_json(self):
        configs = Configuration.list_from_json(
            '[{"cores": 1, "threads_per_core": 1, "frequency": 1500000}]'
        )
        assert configs == [Configuration(1, 1, 1_500_000)]

    def test_list_from_json_rejects_object(self):
        with pytest.raises(ValueError, match="array"):
            Configuration.list_from_json('{"cores": 1}')

    def test_sweep_cross_product(self):
        configs = Configuration.sweep([1, 2], [1_500_000, 2_500_000], (1, 2))
        assert len(configs) == 8
        assert len(set(configs)) == 8

    def test_hashable_and_ordered(self):
        a = Configuration(1, 1, 1_500_000)
        b = Configuration(2, 1, 1_500_000)
        assert a < b
        assert len({a, b, a}) == 2

    @given(
        cores=st.integers(1, 64),
        tpc=st.sampled_from([1, 2]),
        freq=st.integers(1, 10_000_000),
    )
    def test_json_roundtrip(self, cores, tpc, freq):
        cfg = Configuration(cores, tpc, freq)
        assert Configuration.from_json(cfg.to_json()) == cfg


class TestSystemInfo:
    def make(self) -> SystemInfo:
        return SystemInfo(
            cpu_name="AMD EPYC 7502P 32-Core Processor",
            cores=32,
            threads_per_core=2,
            frequencies=(1_500_000.0, 2_200_000.0, 2_500_000.0),
            ram_kb=256 * 1024 * 1024,
        )

    def test_str_matches_fig1_shape(self):
        text = str(self.make())
        assert "cpu_name='AMD EPYC 7502P 32-Core Processor'" in text
        assert "frequencies=[1500000.0, 2200000.0, 2500000.0]" in text

    def test_fingerprint_stable(self):
        assert self.make().fingerprint() == self.make().fingerprint()

    def test_fingerprint_differs_across_systems(self):
        other = SystemInfo("Xeon", 28, 2, (1_000_000.0, 2_000_000.0))
        assert self.make().fingerprint() != other.fingerprint()

    def test_dict_roundtrip(self):
        info = self.make()
        assert SystemInfo.from_dict(info.to_dict()) == info

    def test_min_max_frequency(self):
        info = self.make()
        assert info.min_frequency == 1_500_000
        assert info.max_frequency == 2_500_000

    def test_validation(self):
        with pytest.raises(ValueError):
            SystemInfo("x", 0, 1, (1.0,))
        with pytest.raises(ValueError):
            SystemInfo("x", 1, 0, (1.0,))
        with pytest.raises(ValueError):
            SystemInfo("x", 1, 1, ())
        with pytest.raises(ValueError):
            SystemInfo("x", 1, 1, (2.0, 1.0))


def make_run(gflops=9.0, watts=200.0, n_samples=5) -> Run:
    samples = [
        EnergySample(time=float(3 * i), system_w=watts, cpu_w=watts / 2, cpu_temp_c=55.0)
        for i in range(n_samples)
    ]
    return Run(
        configuration=Configuration(32, 1, 2_200_000),
        start_time=0.0,
        end_time=3.0 * (n_samples - 1),
        gflops=gflops,
        samples=samples,
    )


class TestRun:
    def test_aggregates(self):
        run = make_run(gflops=9.0, watts=200.0)
        assert run.average_system_w() == 200.0
        assert run.average_cpu_w() == 100.0
        assert run.gflops_per_watt() == pytest.approx(0.045)

    def test_energy_integration(self):
        run = make_run(watts=100.0, n_samples=5)  # 12 s window
        assert run.system_energy_j() == pytest.approx(1200.0)
        assert run.cpu_energy_j() == pytest.approx(600.0)

    def test_runtime(self):
        assert make_run(n_samples=5).runtime_s == 12.0

    def test_validation(self):
        with pytest.raises(ValueError):
            Run(Configuration(1, 1, 1), start_time=5.0, end_time=1.0, gflops=1.0)
        with pytest.raises(ValueError):
            Run(Configuration(1, 1, 1), start_time=0.0, end_time=1.0, gflops=-1.0)
        with pytest.raises(ValueError):
            EnergySample(0.0, -1.0, 0.0, 20.0)


class TestBenchmarkResult:
    def test_from_run(self):
        run = make_run(gflops=9.0, watts=200.0)
        row = BenchmarkResult.from_run(1, "hpcg", run)
        assert row.system_id == 1
        assert row.application == "hpcg"
        assert row.gflops_per_watt == pytest.approx(0.045)
        assert row.runtime_s == run.runtime_s

    def test_dict_roundtrip(self):
        row = BenchmarkResult.from_run(1, "hpcg", make_run())
        again = BenchmarkResult.from_dict(row.to_dict())
        assert again == row

    def test_dict_roundtrip_from_strings(self):
        """CSV readers hand back strings; from_dict must coerce."""
        row = BenchmarkResult.from_run(1, "hpcg", make_run())
        as_strings = {k: str(v) for k, v in row.to_dict().items()}
        assert BenchmarkResult.from_dict(as_strings) == row

    def test_validation(self):
        with pytest.raises(ValueError):
            BenchmarkResult(1, "hpcg", Configuration(1, 1, 1), -1.0, 100, 50, 50, 1, 1, 10)
        with pytest.raises(ValueError):
            BenchmarkResult(1, "hpcg", Configuration(1, 1, 1), 1.0, 0.0, 50, 50, 1, 1, 10)
        with pytest.raises(ValueError):
            BenchmarkResult(1, "hpcg", Configuration(1, 1, 1), 1.0, 100, 50, 50, 1, 1, 0.0)


class TestModelMetadata:
    def test_roundtrip(self):
        meta = ModelMetadata(3, "linear-regression", 1, "hpcg", "/blob/m.json", 12.5, 138)
        assert ModelMetadata.from_dict(meta.to_dict()) == meta

    def test_validation(self):
        with pytest.raises(ValueError):
            ModelMetadata(1, "", 1, "hpcg", "/p", 0.0, 1)
        with pytest.raises(ValueError):
            ModelMetadata(1, "t", 1, "hpcg", "", 0.0, 1)
        with pytest.raises(ValueError):
            ModelMetadata(1, "t", 1, "hpcg", "/p", 0.0, -1)


class TestChronusSettings:
    def test_defaults(self):
        s = ChronusSettings()
        assert s.plugin_state == "user"
        assert s.database_path == "chronus.db"

    def test_json_roundtrip(self):
        s = (
            ChronusSettings()
            .with_database("data/data.db")
            .with_blob_storage("/var/blobs")
            .with_state("activated")
            .with_loaded_model(1, "/opt/chronus/optimizer/m.json", "brute-force")
        )
        again = ChronusSettings.from_json(s.to_json())
        assert again == s
        entry = again.loaded_model_for(1)
        assert entry["path"] == "/opt/chronus/optimizer/m.json"
        assert entry["type"] == "brute-force"

    def test_legacy_entries_parse_with_unknown_identity(self):
        # settings written before the registry carry bare {path, type}
        text = json.dumps({
            "loaded_models": {"1": {"path": "/opt/m.json", "type": "brute-force"}},
        })
        entry = ChronusSettings.from_json(text).loaded_model_for(1)
        assert entry["model_id"] == 0 and entry["stage"] == "active"

    def test_shadow_projection_roundtrip(self):
        s = ChronusSettings().with_shadow_model(
            1, "hpcg", "/opt/m2.json", "linear-regression",
            model_id=2, version=2,
        )
        again = ChronusSettings.from_json(s.to_json())
        assert again == s
        entry = again.shadow_model_for(1, "hpcg")
        assert entry["model_id"] == 2 and entry["stage"] == "shadow"
        cleared = again.without_shadow_model(1, "hpcg")
        assert cleared.shadow_model_for(1, "hpcg") is None
        assert again.shadow_model_for(1, "hpcg") is not None  # copies

    def test_invalid_state(self):
        with pytest.raises(ValueError):
            ChronusSettings(plugin_state="maybe")

    def test_loaded_model_for_unknown(self):
        assert ChronusSettings().loaded_model_for(5) is None

    def test_updates_are_copies(self):
        a = ChronusSettings()
        b = a.with_state("deactivated")
        assert a.plugin_state == "user"
        assert b.plugin_state == "deactivated"
