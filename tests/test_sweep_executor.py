"""Determinism and resilience tests for the parallel sweep executor.

The contract under test: parallel and serial executions of the same sweep
produce *identical* ``BenchmarkResult`` sequences (ordering and values),
including when workers die and points are retried serially, and when the
process pool cannot be created at all.
"""

from __future__ import annotations

import multiprocessing

import pytest

from repro.core.application import sweep_executor as sweep_executor_module
from repro.core.application.sweep_executor import (
    SweepExecutor,
    resolve_worker_count,
)
from repro.core.domain.configuration import Configuration
from repro.core.domain.errors import ChronusError
from repro.core.repositories.memory_repository import MemoryRepository
from repro.core.runners.sweep_worker import (
    SweepPoint,
    build_sweep_points,
    point_seed,
    run_sweep_point,
)
from repro.core.services.lscpu_info import LscpuSystemInfo
from repro.slurm.cluster import SimCluster

SMALL_SWEEP = [
    Configuration(cores, threads, freq)
    for cores in (4, 8)
    for threads in (1, 2)
    for freq in (1_500_000, 2_200_000)
]


def small_points(duration_s: float = 90.0) -> list[SweepPoint]:
    return build_sweep_points(SMALL_SWEEP, base_seed=11, duration_s=duration_s)


def make_executor(point_runner=run_sweep_point, **kwargs) -> SweepExecutor:
    cluster = SimCluster(seed=11)
    return SweepExecutor(
        MemoryRepository(),
        LscpuSystemInfo(cluster.node),
        point_runner,
        **kwargs,
    )


def worker_only_failure(point: SweepPoint):
    """Raises inside pool workers, succeeds in the parent (retry path)."""
    if multiprocessing.parent_process() is not None:
        raise RuntimeError("injected worker failure")
    return run_sweep_point(point)


def failing_config_runner(point: SweepPoint):
    """Marks every 8-core point as a failed run (skip path)."""
    run = run_sweep_point(point)
    if point.configuration.cores == 8:
        run.success = False
    return run


class TestDeterminism:
    def test_parallel_matches_serial_exactly(self):
        points = small_points()
        serial = make_executor(workers=1).run_sweep(points)
        parallel = make_executor(workers=2).run_sweep(points)
        assert serial == parallel
        assert [r.configuration for r in serial] == SMALL_SWEEP

    def test_point_seed_depends_only_on_configuration(self):
        a = point_seed(11, SMALL_SWEEP[0])
        assert a == point_seed(11, SMALL_SWEEP[0])
        assert a != point_seed(11, SMALL_SWEEP[1])
        assert a != point_seed(12, SMALL_SWEEP[0])

    def test_worker_failure_retried_serially_same_results(self):
        points = small_points()
        serial = make_executor(workers=1).run_sweep(points)
        flaky = make_executor(worker_only_failure, workers=2).run_sweep(points)
        assert serial == flaky

    def test_pool_unavailable_falls_back_to_serial(self, monkeypatch):
        points = small_points()
        serial = make_executor(workers=1).run_sweep(points)

        def broken_pool(*args, **kwargs):
            raise OSError("no process pool in this sandbox")

        monkeypatch.setattr(
            sweep_executor_module.concurrent.futures,
            "ProcessPoolExecutor",
            broken_pool,
        )
        fallback = make_executor(workers=4).run_sweep(points)
        assert serial == fallback


class TestPersistence:
    def test_batched_repository_writes(self):
        class CountingRepository(MemoryRepository):
            def __init__(self):
                super().__init__()
                self.flushes: list[int] = []

            def save_benchmarks(self, results):
                self.flushes.append(len(list(results)))
                return super().save_benchmarks(results)

        cluster = SimCluster(seed=11)
        repo = CountingRepository()
        executor = SweepExecutor(
            repo,
            LscpuSystemInfo(cluster.node),
            run_sweep_point,
            workers=1,
            batch_size=3,
        )
        rows = executor.run_sweep(small_points())
        assert repo.flushes == [3, 3, 2]
        assert repo.benchmarks_for_system(rows[0].system_id) == rows

    def test_failed_points_skipped(self):
        rows = make_executor(failing_config_runner, workers=1).run_sweep(small_points())
        assert len(rows) == 4
        assert all(r.configuration.cores == 4 for r in rows)

    def test_empty_sweep_rejected(self):
        with pytest.raises(ChronusError, match="no sweep points"):
            make_executor(workers=1).run_sweep([])


class TestWorkerResolution:
    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv("CHRONUS_SWEEP_WORKERS", "7")
        assert resolve_worker_count(3) == 3

    def test_env_knob(self, monkeypatch):
        monkeypatch.setenv("CHRONUS_SWEEP_WORKERS", "5")
        assert resolve_worker_count(None) == 5

    def test_env_knob_invalid(self, monkeypatch):
        monkeypatch.setenv("CHRONUS_SWEEP_WORKERS", "lots")
        with pytest.raises(ChronusError, match="CHRONUS_SWEEP_WORKERS"):
            resolve_worker_count(None)

    def test_defaults_to_cpu_count_and_floors_at_one(self, monkeypatch):
        monkeypatch.delenv("CHRONUS_SWEEP_WORKERS", raising=False)
        assert resolve_worker_count(None) >= 1
        assert resolve_worker_count(0) == 1
        assert resolve_worker_count(-3) == 1
