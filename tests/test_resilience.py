"""Tests for repro.resilience: RetryPolicy, Deadline, CircuitBreaker."""

import pytest

from repro import telemetry
from repro.resilience import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    CircuitBreaker,
    CircuitOpenError,
    Deadline,
    DeadlineExceededError,
    RetryPolicy,
)


@pytest.fixture(autouse=True)
def _fresh_registry():
    telemetry.set_registry(telemetry.MetricsRegistry())
    yield
    telemetry.set_registry(telemetry.MetricsRegistry())


class TestRetryPolicy:
    def test_success_first_try_calls_once(self):
        calls = []
        policy = RetryPolicy(max_attempts=3)
        result = policy.call(lambda: calls.append(1) or "ok", op="t")
        assert result == "ok"
        assert len(calls) == 1

    def test_retries_then_succeeds(self):
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise OSError("transient")
            return "done"

        policy = RetryPolicy(max_attempts=3)
        assert policy.call(flaky, op="t") == "done"
        assert len(attempts) == 3

    def test_exhaustion_reraises_last_error(self):
        policy = RetryPolicy(max_attempts=2)
        with pytest.raises(OSError, match="always"):
            policy.call(lambda: (_ for _ in ()).throw(OSError("always")), op="t")

    def test_permanent_errors_never_retried(self):
        attempts = []

        def denied():
            attempts.append(1)
            raise PermissionError("no")

        policy = RetryPolicy(max_attempts=5)
        with pytest.raises(PermissionError):
            policy.call(
                denied, op="t", retry_on=(OSError,), permanent=(PermissionError,)
            )
        assert len(attempts) == 1

    def test_should_retry_predicate(self):
        attempts = []

        def fatal():
            attempts.append(1)
            raise OSError("disk on fire")

        policy = RetryPolicy(max_attempts=5)
        with pytest.raises(OSError):
            policy.call(
                fatal, op="t", should_retry=lambda exc: "transient" in str(exc)
            )
        assert len(attempts) == 1

    def test_backoff_is_exponential_and_capped(self):
        policy = RetryPolicy(
            max_attempts=5, base_delay_s=0.1, max_delay_s=0.3,
            multiplier=2.0, jitter=0.0,
        )
        assert policy.delays() == pytest.approx([0.1, 0.2, 0.3, 0.3])

    def test_jitter_is_deterministic_per_seed(self):
        a = RetryPolicy(max_attempts=4, jitter=0.5, seed=42)
        b = RetryPolicy(max_attempts=4, jitter=0.5, seed=42)
        c = RetryPolicy(max_attempts=4, jitter=0.5, seed=43)
        assert a.delays() == b.delays()
        assert a.delays() != c.delays()

    def test_call_sleeps_the_published_schedule(self):
        policy = RetryPolicy(max_attempts=3, jitter=0.5, seed=7)
        slept = []

        def always_fails():
            raise OSError("x")

        with pytest.raises(OSError):
            policy.call(always_fails, op="t", sleep=slept.append)
        assert slept == pytest.approx(policy.delays())

    def test_telemetry_counters(self):
        policy = RetryPolicy(max_attempts=2)
        with pytest.raises(OSError):
            policy.call(lambda: (_ for _ in ()).throw(OSError("x")), op="myop")
        snap = telemetry.snapshot()
        retry = telemetry.find_metric(
            snap, "counters", "retry_attempts_total", {"op": "myop"}
        )
        exhausted = telemetry.find_metric(
            snap, "counters", "retry_exhausted_total", {"op": "myop"}
        )
        assert retry["value"] == 1
        assert exhausted["value"] == 1

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay_s=-1)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=-0.1)


class TestDeadline:
    def test_within_budget_returns_result(self):
        clock = iter([0.0, 0.01, 0.02]).__next__
        deadline = Deadline(1.0, clock=clock)
        assert deadline.run(lambda: "fast", op="t") == "fast"

    def test_pre_call_check_raises_when_expired(self):
        now = [0.0]
        deadline = Deadline(0.5, clock=lambda: now[0])
        now[0] = 1.0
        with pytest.raises(DeadlineExceededError):
            deadline.run(lambda: "late", op="t")

    def test_too_late_result_discarded(self):
        now = [0.0]
        deadline = Deadline(0.5, clock=lambda: now[0])

        def slow():
            now[0] = 2.0  # the call itself blows the budget
            return "stale"

        with pytest.raises(DeadlineExceededError):
            deadline.run(slow, op="t")

    def test_remaining_and_expired(self):
        now = [0.0]
        deadline = Deadline(1.0, clock=lambda: now[0])
        assert deadline.remaining() == pytest.approx(1.0)
        assert not deadline.expired
        now[0] = 1.5
        assert deadline.remaining() == 0.0
        assert deadline.expired

    def test_counts_exceeded_per_op(self):
        now = [10.0]
        deadline = Deadline(0.1, clock=lambda: now[0])
        now[0] = 11.0
        with pytest.raises(DeadlineExceededError):
            deadline.check(op="predict")
        snap = telemetry.snapshot()
        entry = telemetry.find_metric(
            snap, "counters", "deadline_exceeded_total", {"op": "predict"}
        )
        assert entry["value"] == 1

    def test_invalid_budget_rejected(self):
        with pytest.raises(ValueError):
            Deadline(0.0)


class _FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestCircuitBreaker:
    def make(self, **kw):
        clock = _FakeClock()
        kw.setdefault("failure_threshold", 3)
        kw.setdefault("recovery_timeout_s", 10.0)
        return CircuitBreaker("test", clock=clock, **kw), clock

    def test_starts_closed_and_allows(self):
        breaker, _ = self.make()
        assert breaker.state == BREAKER_CLOSED
        assert breaker.allow()

    def test_opens_at_failure_threshold(self):
        breaker, _ = self.make()
        for _ in range(2):
            breaker.record_failure()
            assert breaker.state == BREAKER_CLOSED
        breaker.record_failure()
        assert breaker.state == BREAKER_OPEN
        assert not breaker.allow()

    def test_success_resets_failure_count(self):
        breaker, _ = self.make()
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == BREAKER_CLOSED

    def test_half_open_after_recovery_timeout(self):
        breaker, clock = self.make()
        for _ in range(3):
            breaker.record_failure()
        assert not breaker.allow()
        clock.now = 11.0
        assert breaker.allow()  # the probe
        assert breaker.state == BREAKER_HALF_OPEN

    def test_half_open_limits_probes(self):
        breaker, clock = self.make(half_open_max_probes=1)
        for _ in range(3):
            breaker.record_failure()
        clock.now = 11.0
        assert breaker.allow()
        assert not breaker.allow()  # second concurrent probe refused

    def test_probe_success_closes(self):
        breaker, clock = self.make()
        for _ in range(3):
            breaker.record_failure()
        clock.now = 11.0
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == BREAKER_CLOSED
        assert breaker.allow()

    def test_probe_failure_reopens_and_restarts_timer(self):
        breaker, clock = self.make()
        for _ in range(3):
            breaker.record_failure()
        clock.now = 11.0
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == BREAKER_OPEN
        clock.now = 20.0  # only 9s since reopen: still open
        assert not breaker.allow()
        clock.now = 21.5
        assert breaker.allow()

    def test_call_wraps_and_short_circuits(self):
        breaker, _ = self.make(failure_threshold=1)
        with pytest.raises(RuntimeError):
            breaker.call(lambda: (_ for _ in ()).throw(RuntimeError("down")))
        with pytest.raises(CircuitOpenError):
            breaker.call(lambda: "never runs")

    def test_state_gauge_and_transition_counter(self):
        breaker, _ = self.make(failure_threshold=1)
        breaker.record_failure()
        snap = telemetry.snapshot()
        gauge = telemetry.find_metric(
            snap, "gauges", "breaker_state", {"name": "test"}
        )
        assert gauge["value"] == 2  # open
        trans = telemetry.find_metric(
            snap, "counters", "breaker_transitions_total",
            {"name": "test", "to": "open"},
        )
        assert trans["value"] == 1
