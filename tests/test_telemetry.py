"""Tests for the repro.telemetry subsystem.

Covers the dependency-free metric primitives (exact histogram statistics,
quantile interpolation, reservoir bounds), thread-safety under a hammering
ThreadPoolExecutor, span nesting and context propagation, the structured
logger, export formats, and — critically for the scheduler hot path — that
the disabled (no-op) implementations have zero observable side effects.
"""

from __future__ import annotations

import json
import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro import telemetry
from repro.telemetry import (
    Counter,
    Gauge,
    Histogram,
    JsonLinesLogger,
    MetricsRegistry,
    NullLogger,
    NullRegistry,
    NullTracer,
    Tracer,
    current_span,
    find_metric,
    snapshot_from_json,
    snapshot_to_json,
    snapshot_to_prometheus,
)
from repro.telemetry.registry import RESERVOIR_SIZE


@pytest.fixture
def registry() -> MetricsRegistry:
    return MetricsRegistry()


@pytest.fixture
def isolated_telemetry():
    """Install a fresh enabled registry globally; restore afterwards."""
    previous = telemetry.get_registry()
    fresh = MetricsRegistry()
    telemetry.set_registry(fresh)
    try:
        yield fresh
    finally:
        telemetry.set_registry(previous)


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        c = Counter("requests_total")
        assert c.value == 0.0
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_negative_increment_rejected(self):
        c = Counter("requests_total")
        with pytest.raises(ValueError, match="cannot decrease"):
            c.inc(-1)

    def test_snapshot_shape(self):
        c = Counter("hits", {"cache": "model"})
        c.inc()
        assert c.snapshot() == {"name": "hits", "labels": {"cache": "model"}, "value": 1.0}


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("queue_depth")
        g.set(10)
        g.inc(5)
        g.dec(3)
        assert g.value == 12.0


class TestHistogramMath:
    def test_exact_statistics(self):
        h = Histogram("latency")
        for v in range(1, 101):
            h.observe(v)
        snap = h.snapshot()
        assert snap["count"] == 100
        assert snap["sum"] == 5050.0
        assert snap["mean"] == 50.5
        assert snap["min"] == 1.0
        assert snap["max"] == 100.0

    def test_quantile_linear_interpolation(self):
        h = Histogram("latency")
        for v in range(1, 101):
            h.observe(v)
        # sorted data is 1..100; pos = q * 99, linearly interpolated
        assert h.quantile(0.50) == pytest.approx(50.5)
        assert h.quantile(0.95) == pytest.approx(95.05)
        assert h.quantile(0.99) == pytest.approx(99.01)
        assert h.quantile(0.0) == 1.0
        assert h.quantile(1.0) == 100.0
        snap = h.snapshot()
        assert snap["p50"] == pytest.approx(50.5)
        assert snap["p95"] == pytest.approx(95.05)
        assert snap["p99"] == pytest.approx(99.01)

    def test_quantile_out_of_range_rejected(self):
        h = Histogram("latency")
        with pytest.raises(ValueError):
            h.quantile(1.5)
        with pytest.raises(ValueError):
            h.quantile(-0.1)

    def test_empty_histogram(self):
        h = Histogram("latency")
        assert h.quantile(0.95) == 0.0
        snap = h.snapshot()
        assert snap["count"] == 0
        assert snap["min"] == 0.0 and snap["max"] == 0.0

    def test_single_observation(self):
        h = Histogram("latency")
        h.observe(42.0)
        assert h.quantile(0.5) == 42.0
        assert h.quantile(0.99) == 42.0

    def test_reservoir_bounded_but_stats_exact(self):
        h = Histogram("latency")
        n = RESERVOIR_SIZE + 2000
        for v in range(n):
            h.observe(v)
        assert len(h._reservoir) == RESERVOIR_SIZE
        assert h.count == n
        assert h.sum == sum(range(n))
        assert h.snapshot()["max"] == n - 1

    def test_reservoir_sampling_deterministic(self):
        a = Histogram("latency")
        b = Histogram("latency")
        for v in range(RESERVOIR_SIZE + 500):
            a.observe(v)
            b.observe(v)
        assert a.snapshot() == b.snapshot()


class TestRegistry:
    def test_same_handle_for_same_identity(self, registry):
        assert registry.counter("a") is registry.counter("a")
        assert registry.histogram("h") is registry.histogram("h")

    def test_label_order_is_irrelevant(self, registry):
        c1 = registry.counter("a", {"x": "1", "y": "2"})
        c2 = registry.counter("a", {"y": "2", "x": "1"})
        assert c1 is c2

    def test_different_labels_different_handles(self, registry):
        assert registry.counter("a", {"x": "1"}) is not registry.counter("a", {"x": "2"})

    def test_snapshot_and_len(self, registry):
        registry.counter("c").inc()
        registry.gauge("g").set(1)
        registry.histogram("h").observe(0.5)
        assert len(registry) == 3
        snap = registry.snapshot()
        assert [c["name"] for c in snap["counters"]] == ["c"]
        assert [g["name"] for g in snap["gauges"]] == ["g"]
        assert [h["name"] for h in snap["histograms"]] == ["h"]

    def test_reset(self, registry):
        registry.counter("c").inc()
        registry.reset()
        assert len(registry) == 0
        assert registry.snapshot()["counters"] == []


class TestThreadSafety:
    THREADS = 8
    PER_THREAD = 5_000

    def test_counter_increments_are_not_lost(self, registry):
        def hammer():
            c = registry.counter("hits")
            for _ in range(self.PER_THREAD):
                c.inc()

        with ThreadPoolExecutor(max_workers=self.THREADS) as pool:
            for _ in range(self.THREADS):
                pool.submit(hammer)
        assert registry.counter("hits").value == self.THREADS * self.PER_THREAD

    def test_histogram_observations_are_not_lost(self, registry):
        def hammer(offset):
            h = registry.histogram("lat")
            for i in range(self.PER_THREAD):
                h.observe(offset + i)

        with ThreadPoolExecutor(max_workers=self.THREADS) as pool:
            for t in range(self.THREADS):
                pool.submit(hammer, t)
        h = registry.histogram("lat")
        assert h.count == self.THREADS * self.PER_THREAD
        assert len(h._reservoir) == min(RESERVOIR_SIZE, h.count)

    def test_concurrent_handle_creation_yields_one_metric(self, registry):
        barrier = threading.Barrier(self.THREADS)
        handles = []

        def create():
            barrier.wait()
            handles.append(registry.counter("raced", {"k": "v"}))

        threads = [threading.Thread(target=create) for _ in range(self.THREADS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert all(h is handles[0] for h in handles)
        assert len(registry) == 1


class TestTracer:
    def test_span_records_duration_and_histogram(self, registry):
        tracer = Tracer(registry)
        with tracer.span("op") as sp:
            pass
        assert sp.duration_s >= 0.0
        h = registry.histogram("span_seconds", {"span": "op"})
        assert h.count == 1

    def test_nesting_links_parent(self, registry):
        tracer = Tracer(registry)
        with tracer.span("outer") as outer:
            assert current_span() is outer
            with tracer.span("inner") as inner:
                assert current_span() is inner
                assert inner.parent_id == outer.span_id
                assert inner.parent_name == "outer"
            assert current_span() is outer
        assert current_span() is None
        assert outer.parent_id is None

    def test_exception_marks_span_and_propagates(self, registry):
        tracer = Tracer(registry)
        with pytest.raises(RuntimeError):
            with tracer.span("boom") as sp:
                raise RuntimeError("bad")
        assert sp.attributes["error"] == "RuntimeError"
        assert current_span() is None

    def test_finished_history_bounded(self, registry):
        tracer = Tracer(registry, history=4)
        for i in range(10):
            with tracer.span("op", i=i):
                pass
        assert len(tracer.finished) == 4
        assert [s.attributes["i"] for s in tracer.spans_named("op")] == [6, 7, 8, 9]


class TestLogger:
    def test_record_shape_with_injected_clock(self):
        log = JsonLinesLogger(clock=lambda: 123.0)
        rec = log.warning("eco.fallback", job="j1")
        assert rec == {"ts": 123.0, "level": "warning", "event": "eco.fallback", "job": "j1"}
        assert log.records("eco.fallback") == [rec]
        assert log.records("other") == []

    def test_invalid_level_rejected(self):
        with pytest.raises(ValueError):
            JsonLinesLogger().log("e", level="fatal")

    def test_tee_to_path(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = JsonLinesLogger(path=str(path), clock=lambda: 1.0)
        log.info("a", n=1)
        log.info("b", n=2)
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert [r["event"] for r in lines] == ["a", "b"]

    def test_write_failure_never_raises(self, tmp_path):
        log = JsonLinesLogger(path=str(tmp_path / "no" / "such" / "dir" / "x.jsonl"))
        rec = log.info("survives")
        assert rec["event"] == "survives"

    def test_buffer_bounded(self):
        log = JsonLinesLogger(buffer_size=3)
        for i in range(10):
            log.info("e", i=i)
        assert [r["i"] for r in log.records()] == [7, 8, 9]


class TestExport:
    def test_json_roundtrip(self, registry):
        registry.counter("c", {"k": "v"}).inc(3)
        registry.histogram("h").observe(1.0)
        snap = registry.snapshot()
        assert snapshot_from_json(snapshot_to_json(snap)) == snap

    def test_from_json_rejects_non_snapshot(self):
        with pytest.raises(ValueError):
            snapshot_from_json("{}")
        with pytest.raises(ValueError):
            snapshot_from_json("[1, 2]")

    def test_prometheus_text(self, registry):
        registry.counter("hits_total", {"cache": "model"}).inc(2)
        registry.gauge("depth").set(4)
        registry.histogram("lat_seconds").observe(0.5)
        text = snapshot_to_prometheus(registry.snapshot())
        assert "# TYPE hits_total counter" in text
        assert 'hits_total{cache="model"} 2.0' in text
        assert "# TYPE depth gauge" in text
        assert "# TYPE lat_seconds summary" in text
        assert 'lat_seconds{quantile="0.95"} 0.5' in text
        assert "lat_seconds_count 1" in text

    def test_find_metric(self, registry):
        registry.counter("c", {"k": "a"}).inc()
        registry.counter("c", {"k": "b"}).inc(2)
        snap = registry.snapshot()
        assert find_metric(snap, "counters", "c", {"k": "b"})["value"] == 2.0
        assert find_metric(snap, "counters", "c")["value"] == 1.0
        assert find_metric(snap, "counters", "missing") is None


class TestNullImplementations:
    def test_registry_hands_out_shared_inert_singletons(self):
        null = NullRegistry()
        c1 = null.counter("a")
        c2 = null.counter("b", {"x": "1"})
        assert c1 is c2
        c1.inc(100)
        assert c1.value == 0.0
        null.histogram("h").observe(5.0)
        null.gauge("g").set(9)
        assert null.snapshot() == {"counters": [], "gauges": [], "histograms": []}
        assert len(null) == 0

    def test_null_tracer_span_is_inert_context_manager(self):
        tracer = NullTracer()
        with tracer.span("op", key="value") as sp:
            sp.set_attribute("more", 1)
        assert sp.duration_s == 0.0
        assert sp.attributes == {}
        assert tracer.spans_named("op") == []
        assert len(tracer.finished) == 0

    def test_null_logger_records_nothing(self):
        log = NullLogger()
        assert log.error("boom", detail="x") == {}
        assert log.records() == []


class TestGlobalState:
    def test_configure_disabled_installs_null_implementations(self):
        was_enabled = telemetry.enabled()
        try:
            telemetry.configure(False)
            assert not telemetry.enabled()
            telemetry.counter("never").inc()
            telemetry.histogram("never").observe(1.0)
            with telemetry.span("never"):
                pass
            assert telemetry.log_event("never") == {}
            assert telemetry.snapshot() == {"counters": [], "gauges": [], "histograms": []}
        finally:
            telemetry.configure(was_enabled)

    def test_set_registry_swaps_tracer_too(self):
        previous = telemetry.get_registry()
        try:
            telemetry.set_registry(NullRegistry())
            assert isinstance(telemetry.get_tracer(), NullTracer)
            fresh = MetricsRegistry()
            telemetry.set_registry(fresh)
            with telemetry.span("op"):
                pass
            assert fresh.histogram("span_seconds", {"span": "op"}).count == 1
        finally:
            telemetry.set_registry(previous)

    @pytest.mark.parametrize("value", ["0", "off", "FALSE", "no", "disabled"])
    def test_env_var_disables(self, monkeypatch, value):
        from repro.telemetry import _env_enabled

        monkeypatch.setenv("CHRONUS_TELEMETRY", value)
        assert not _env_enabled()

    @pytest.mark.parametrize("value", ["1", "on", "true", "", "anything"])
    def test_env_var_enables(self, monkeypatch, value):
        from repro.telemetry import _env_enabled

        monkeypatch.setenv("CHRONUS_TELEMETRY", value)
        assert _env_enabled()


class TestClusterIntegration:
    def test_simulated_run_populates_gated_metrics(self, isolated_telemetry):
        from repro.slurm.batch_script import build_script
        from repro.slurm.cluster import HPCG_BINARY, SimCluster

        cluster = SimCluster(seed=11, hpcg_duration_s=120.0)
        cluster.submit_and_wait(build_script(32, 2_500_000, 1, HPCG_BINARY))
        snap = telemetry.snapshot()
        assert find_metric(snap, "counters", "sched_jobs_started_total")["value"] == 1.0
        assert find_metric(snap, "counters", "sched_jobs_completed_total")["value"] == 1.0
        assert find_metric(snap, "counters", "sim_events_total")["value"] > 0
        assert find_metric(snap, "histograms", "sched_cycle_seconds")["count"] >= 1
        assert find_metric(snap, "gauges", "sched_queue_depth") is not None
