"""Tests for the energy-market extension (traces + schedulers)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.domain.errors import ChronusError
from repro.energymarket.scheduling import DeadlineConfigSelector, TimeShiftScheduler
from repro.energymarket.traces import HOUR, CarbonTrace, PriceTrace, Trace


class TestTrace:
    def test_at_steps_hourly(self):
        t = Trace(values=np.array([10.0, 20.0, 30.0]))
        assert t.at(0.0) == 10.0
        assert t.at(3599.0) == 10.0
        assert t.at(3600.0) == 20.0

    def test_clamps_beyond_horizon(self):
        t = Trace(values=np.array([10.0, 20.0]))
        assert t.at(1e9) == 20.0

    def test_integrate_exact(self):
        t = Trace(values=np.array([10.0, 20.0]))
        # 30 min at 10 + 30 min at... no: [0, 5400] = 3600*10 + 1800*20
        assert t.integrate(0.0, 5400.0) == pytest.approx(3600 * 10 + 1800 * 20)

    def test_integrate_within_one_hour(self):
        t = Trace(values=np.array([10.0, 20.0]))
        assert t.integrate(600.0, 1200.0) == pytest.approx(600 * 10)

    def test_integrate_validation(self):
        t = Trace(values=np.array([1.0]))
        with pytest.raises(ValueError):
            t.integrate(5.0, 1.0)
        with pytest.raises(ValueError):
            t.integrate(-1.0, 1.0)
        with pytest.raises(ValueError):
            t.at(-1.0)

    def test_mean_over(self):
        t = Trace(values=np.array([10.0, 20.0]))
        assert t.mean_over(0.0, 7200.0) == pytest.approx(15.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Trace(values=np.array([]))

    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(0, 1000),
        start=st.floats(0, 50_000),
        length=st.floats(1.0, 100_000),
    )
    def test_integral_additivity(self, seed, start, length):
        trace = PriceTrace.synthetic(days=3, seed=seed)
        mid = start + length / 2
        end = start + length
        total = trace.integrate(start, end)
        split = trace.integrate(start, mid) + trace.integrate(mid, end)
        assert total == pytest.approx(split, rel=1e-9, abs=1e-6)


class TestSyntheticTraces:
    def test_price_positive(self):
        trace = PriceTrace.synthetic(days=7, seed=1)
        assert (trace.values >= 1.0).all()
        assert trace.values.size == 7 * 24

    def test_price_deterministic(self):
        a = PriceTrace.synthetic(days=2, seed=9).values
        b = PriceTrace.synthetic(days=2, seed=9).values
        np.testing.assert_array_equal(a, b)

    def test_price_nights_cheaper_than_evenings(self):
        trace = PriceTrace.synthetic(days=14, seed=0, volatility=0.0,
                                     spike_probability=0.0)
        nights = trace.values[[d * 24 + 4 for d in range(14)]]
        evenings = trace.values[[d * 24 + 19 for d in range(14)]]
        assert nights.mean() < evenings.mean()

    def test_carbon_positive(self):
        trace = CarbonTrace.synthetic(days=7, seed=1)
        assert (trace.values >= 10.0).all()

    def test_days_validation(self):
        with pytest.raises(ValueError):
            PriceTrace.synthetic(days=0)
        with pytest.raises(ValueError):
            CarbonTrace.synthetic(days=0)


class TestTimeShiftScheduler:
    def make_trace(self):
        # expensive first 12 h, cheap next 12 h
        return Trace(values=np.array([100.0] * 12 + [10.0] * 12))

    def test_moves_job_to_cheap_window(self):
        sched = TimeShiftScheduler(self.make_trace())
        decision = sched.best_start(2 * HOUR, avg_power_w=200.0)
        assert decision.start_s >= 12 * HOUR
        assert decision.savings_fraction == pytest.approx(0.9)

    def test_respects_deadline(self):
        sched = TimeShiftScheduler(self.make_trace())
        decision = sched.best_start(2 * HOUR, 200.0, deadline_s=6 * HOUR)
        assert decision.end_s <= 6 * HOUR
        assert decision.savings_fraction == 0.0  # flat expensive region

    def test_infeasible_deadline(self):
        sched = TimeShiftScheduler(self.make_trace())
        with pytest.raises(ChronusError, match="cannot finish"):
            sched.best_start(10 * HOUR, 200.0, earliest_s=20 * HOUR, deadline_s=24 * HOUR)

    def test_job_cost_units(self):
        # 1 MW for 1 h at 50 EUR/MWh = 50 EUR
        trace = Trace(values=np.array([50.0] * 2))
        sched = TimeShiftScheduler(trace)
        assert sched.job_cost(0.0, HOUR, 1e6) == pytest.approx(50.0)

    def test_ties_prefer_earliest(self):
        trace = Trace(values=np.array([10.0] * 24))
        sched = TimeShiftScheduler(trace)
        assert sched.best_start(HOUR, 100.0).start_s == 0.0

    def test_validation(self):
        sched = TimeShiftScheduler(self.make_trace())
        with pytest.raises(ValueError):
            sched.best_start(0.0, 100.0)
        with pytest.raises(ValueError):
            sched.best_start(HOUR, 0.0)
        with pytest.raises(ValueError):
            TimeShiftScheduler(self.make_trace(), step_s=0.0)

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 500), duration_h=st.integers(1, 12))
    def test_never_worse_than_baseline(self, seed, duration_h):
        trace = PriceTrace.synthetic(days=4, seed=seed)
        sched = TimeShiftScheduler(trace)
        decision = sched.best_start(duration_h * HOUR, 200.0)
        assert decision.cost <= decision.baseline_cost + 1e-9


class TestDeadlineConfigSelector:
    def test_relaxed_deadline_gives_most_efficient(self, paper_rows):
        sel = DeadlineConfigSelector(paper_rows, total_flops=1e13)
        cfg = sel.select(deadline_s=10 * 24 * 3600)
        best = max(paper_rows, key=lambda b: b.gflops_per_watt)
        assert cfg == best.configuration

    def test_tight_deadline_forces_faster_config(self, paper_rows):
        sel = DeadlineConfigSelector(paper_rows, total_flops=1e13, safety_margin=0.0)
        fastest = max(paper_rows, key=lambda b: b.gflops)
        tight = sel.predicted_runtime_s(fastest) * 1.001
        cfg = sel.select(deadline_s=tight)
        assert cfg == fastest.configuration

    def test_deadline_between_best_and_fastest(self, paper_rows):
        """With a deadline that excludes the global optimum, the selection
        is the most efficient *feasible* configuration."""
        sel = DeadlineConfigSelector(paper_rows, total_flops=1e13, safety_margin=0.0)
        by_cfg = {b.configuration: b for b in paper_rows}
        best = max(paper_rows, key=lambda b: b.gflops_per_watt)
        deadline = sel.predicted_runtime_s(best) * 0.999  # just excludes it
        cfg = sel.select(deadline)
        assert cfg != best.configuration
        assert sel.predicted_runtime_s(by_cfg[cfg]) <= deadline

    def test_impossible_deadline(self, paper_rows):
        sel = DeadlineConfigSelector(paper_rows, total_flops=1e13)
        with pytest.raises(ChronusError, match="no configuration finishes"):
            sel.select(deadline_s=1.0)

    def test_safety_margin_inflates_runtime(self, paper_rows):
        tight = DeadlineConfigSelector(paper_rows, 1e13, safety_margin=0.0)
        safe = DeadlineConfigSelector(paper_rows, 1e13, safety_margin=0.2)
        row = paper_rows[0]
        assert safe.predicted_runtime_s(row) == pytest.approx(
            tight.predicted_runtime_s(row) * 1.2
        )

    def test_validation(self, paper_rows):
        with pytest.raises(ChronusError):
            DeadlineConfigSelector([], 1e13)
        with pytest.raises(ValueError):
            DeadlineConfigSelector(paper_rows, 0.0)
        with pytest.raises(ValueError):
            DeadlineConfigSelector(paper_rows, 1e13, safety_margin=1.0)
