"""Workflow-aware scheduling: dependency DAGs, reschedule, provenance.

Covers the four layers end to end — the ``--dependency``/``--workflow``
wire syntax, the controller's DAG hold/release/cancel machinery, the
array ``%limit`` throttle, energy-aware reschedule with model lineage,
and the per-workflow rollup agreement between the controller and the
journal-fed slurmdbd (including across a leader failover).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.domain.errors import (
    ControllerCrashError,
    DependencyCycleError,
    DependencyError,
    NoLeaderError,
    StaleEpochError,
)
from repro.serving.protocol import PredictResponse
from repro.slurm.batch_script import (
    BatchScriptError,
    build_script,
    parse_batch_script,
)
from repro.slurm.cluster import HPCG_BINARY, SimCluster
from repro.slurm.config import SlurmConfig
from repro.slurm.controller import SubmitError
from repro.slurm.dbd import SlurmDbd
from repro.slurm.ha import DRILL_BINARY, build_drill_plane
from repro.slurm.job import JobDescriptor, JobState
from repro.slurm.plugins.eco import JobSubmitEco, PluginState
from repro.slurm.statesave import StateSave
from repro.slurm.workflow import (
    DEPENDENCY_KINDS,
    DependencyGraph,
    dependency_status,
    format_dependency_spec,
    parse_dependency_spec,
    workflow_rollup,
)

FAIL_SCRIPT = "#!/bin/bash\n#SBATCH --ntasks=1\nsrun /bin/unknown-app\n"


# ----------------------------------------------------------------------
# wire syntax
# ----------------------------------------------------------------------
edge_lists = st.lists(
    st.tuples(
        st.sampled_from(DEPENDENCY_KINDS),
        st.integers(min_value=1, max_value=99_999),
    ),
    max_size=8,
)


class TestDependencySpec:
    @given(edge_lists)
    def test_format_parse_round_trip(self, edges):
        deduped = []
        for edge in edges:
            if edge not in deduped:
                deduped.append(edge)
        assert parse_dependency_spec(format_dependency_spec(edges)) == tuple(deduped)

    def test_multi_id_clauses_and_dedup(self):
        assert parse_dependency_spec("afterok:3:5,afterany:7,afterok:3") == (
            ("afterok", 3),
            ("afterok", 5),
            ("afterany", 7),
        )

    def test_empty_spec_is_no_edges(self):
        assert parse_dependency_spec("") == ()
        assert parse_dependency_spec("   ") == ()

    @pytest.mark.parametrize(
        "spec",
        ["after:3", "afterok", "afterok:", "afterok:nope", "afterok:0",
         "afterok:3,,afterany:4", "before:2"],
    )
    def test_malformed_specs_are_typed_errors(self, spec):
        with pytest.raises(DependencyError):
            parse_dependency_spec(spec)

    def test_batch_script_carries_deps_and_workflow(self):
        script = build_script(
            8, 2_200_000, 1, HPCG_BINARY,
            dependency="afterok:3:5,afternotok:9", workflow="etl",
        )
        desc = parse_batch_script(script)
        assert desc.dependency == (
            ("afterok", 3), ("afterok", 5), ("afternotok", 9),
        )
        assert desc.workflow == "etl"

    def test_short_dash_d_alias(self):
        script = (
            "#!/bin/bash\n#SBATCH -d afterany:4\n#SBATCH --ntasks=2\n"
            f"srun {HPCG_BINARY}\n"
        )
        assert parse_batch_script(script).dependency == (("afterany", 4),)

    @pytest.mark.parametrize(
        "directive",
        ["#SBATCH --dependency=", "#SBATCH --dependency=after:oops",
         "#SBATCH --workflow="],
    )
    def test_malformed_directives_fail_the_script(self, directive):
        script = f"#!/bin/bash\n{directive}\n#SBATCH --ntasks=2\nsrun {HPCG_BINARY}\n"
        with pytest.raises(BatchScriptError):
            parse_batch_script(script)


# ----------------------------------------------------------------------
# the DAG itself
# ----------------------------------------------------------------------
class TestDependencyGraph:
    def test_cycle_rejected_at_add_time(self):
        graph = DependencyGraph()
        graph.add(2, [("afterok", 1)])
        graph.add(3, [("afterok", 2)])
        with pytest.raises(DependencyCycleError):
            graph.add(1, [("afterany", 3)])
        # the rejected add left no trace
        assert 1 not in graph

    def test_self_edge_rejected(self):
        graph = DependencyGraph()
        with pytest.raises(DependencyCycleError):
            graph.add(4, [("afterok", 4)])

    def test_capture_round_trip(self):
        graph = DependencyGraph()
        graph.add(5, [("afterok", 1), ("afternotok", 2)])
        restored = DependencyGraph.from_capture(graph.capture())
        assert restored.edges_of(5) == graph.edges_of(5)
        assert restored.dependents_of(1) == (5,)

    def test_dependency_status_matrix(self):
        assert dependency_status("afterok", JobState.RUNNING) == "wait"
        assert dependency_status("afterok", JobState.COMPLETED) == "ok"
        assert dependency_status("afterok", JobState.FAILED) == "never"
        assert dependency_status("afterany", JobState.CANCELLED) == "ok"
        assert dependency_status("afternotok", JobState.COMPLETED) == "never"
        assert dependency_status("afternotok", JobState.TIMEOUT) == "ok"


# ----------------------------------------------------------------------
# controller hold / release / cancel
# ----------------------------------------------------------------------
def _hpcg(cores: int, **kwargs) -> JobDescriptor:
    return JobDescriptor(num_tasks=cores, binary=HPCG_BINARY, **kwargs)


class TestControllerDependencies:
    def test_unknown_predecessor_is_rejected(self, cluster):
        with pytest.raises(DependencyError, match="unknown job 42"):
            cluster.ctld.submit(_hpcg(4, dependency=(("afterok", 42),)))

    def test_array_with_dependency_is_rejected(self, cluster):
        with pytest.raises(SubmitError, match="array"):
            cluster.ctld.submit(
                _hpcg(4, array=(0, 1), dependency=(("afterok", 1),))
            )

    def test_held_then_released_in_order(self):
        cluster = SimCluster(seed=7, hpcg_duration_s=60.0)
        j1 = cluster.ctld.submit(_hpcg(32, workflow="chain"))
        j2 = cluster.ctld.submit(
            _hpcg(32, workflow="chain", dependency=(("afterok", j1),))
        )
        job2 = cluster.ctld.get_job(j2)
        assert job2.state is JobState.PENDING
        assert job2.pending_reason == "Dependency"
        cluster.ctld.wait_for_job(j2)
        job1 = cluster.ctld.get_job(j1)
        assert job2.state is JobState.COMPLETED
        assert job2.start_time >= job1.end_time
        # the release re-ran the prediction chain and recorded an attempt
        assert [a["reason"] for a in job2.attempts] == ["submit", "dep_release"]

    def test_afterok_on_failed_pred_cancels_immediately(self, cluster):
        j1 = cluster.ctld.submit(JobDescriptor(num_tasks=1, binary="/bin/nope"))
        assert cluster.ctld.get_job(j1).state is JobState.FAILED
        j2 = cluster.ctld.submit(_hpcg(4, dependency=(("afterok", j1),)))
        job2 = cluster.ctld.get_job(j2)
        assert job2.state is JobState.CANCELLED
        assert job2.pending_reason == "DependencyNeverSatisfied"

    def test_afternotok_and_afterany_semantics(self, cluster):
        j1 = cluster.ctld.submit(JobDescriptor(num_tasks=1, binary="/bin/nope"))
        j_notok = cluster.ctld.submit(_hpcg(4, dependency=(("afternotok", j1),)))
        j_any = cluster.ctld.submit(_hpcg(4, dependency=(("afterany", j1),)))
        cluster.ctld.wait_for_job(j_notok)
        cluster.ctld.wait_for_job(j_any)
        assert cluster.ctld.get_job(j_notok).state is JobState.COMPLETED
        assert cluster.ctld.get_job(j_any).state is JobState.COMPLETED
        # and afternotok on a *successful* predecessor never fires
        ok = cluster.ctld.submit(_hpcg(4))
        cluster.ctld.wait_for_job(ok)
        j_never = cluster.ctld.submit(_hpcg(4, dependency=(("afternotok", ok),)))
        assert cluster.ctld.get_job(j_never).state is JobState.CANCELLED

    def test_never_satisfied_cascades_through_held_dag(self):
        cluster = SimCluster(seed=7, hpcg_duration_s=30.0)
        blocker = cluster.ctld.submit(_hpcg(32))  # owns the whole node
        doomed = cluster.ctld.submit(
            JobDescriptor(num_tasks=32, binary="/bin/nope")
        )
        mid = cluster.ctld.submit(_hpcg(4, dependency=(("afterok", doomed),)))
        leaf = cluster.ctld.submit(_hpcg(4, dependency=(("afterok", mid),)))
        assert cluster.ctld.get_job(mid).pending_reason == "Dependency"
        cluster.ctld.wait_for_job(blocker)
        cluster.sim.run(until=cluster.sim.now + 1.0)
        for jid in (mid, leaf):
            job = cluster.ctld.get_job(jid)
            assert job.state is JobState.CANCELLED
            assert job.pending_reason == "DependencyNeverSatisfied"

    def test_dependency_on_array_master_waits_for_all_tasks(self):
        cluster = SimCluster(seed=7, hpcg_duration_s=30.0)
        master = cluster.ctld.submit(_hpcg(32, array=(0, 1, 2)))
        dep = cluster.ctld.submit(
            _hpcg(4, workflow="arr", dependency=(("afterok", master),))
        )
        cluster.ctld.wait_for_job(dep)
        tasks = cluster.ctld.array_tasks(master)
        assert all(t.state is JobState.COMPLETED for t in tasks)
        dep_job = cluster.ctld.get_job(dep)
        assert dep_job.start_time >= max(t.end_time for t in tasks)

    @settings(max_examples=8, deadline=None)
    @given(st.data())
    def test_release_order_invariant(self, data):
        """No job ever starts before an afterok/afterany pred ended."""
        n = data.draw(st.integers(min_value=2, max_value=5), label="n_jobs")
        cluster = SimCluster(seed=7, hpcg_duration_s=45.0)
        ids: list[int] = []
        edges: list[tuple[int, str, int]] = []  # (job, kind, pred)
        for i in range(n):
            deps = ()
            if ids and data.draw(st.booleans(), label=f"dep_{i}"):
                pred = data.draw(st.sampled_from(ids), label=f"pred_{i}")
                kind = data.draw(
                    st.sampled_from(("afterok", "afterany")), label=f"kind_{i}"
                )
                deps = ((kind, pred),)
            cores = data.draw(
                st.sampled_from((8, 16, 32)), label=f"cores_{i}"
            )
            jid = cluster.ctld.submit(
                _hpcg(cores, workflow="dag", dependency=deps)
            )
            ids.append(jid)
            edges.extend((jid, kind, pred) for kind, pred in deps)
        for jid in ids:
            cluster.ctld.wait_for_job(jid)
        for jid, _, pred in edges:
            job, pred_job = cluster.ctld.get_job(jid), cluster.ctld.get_job(pred)
            assert job.state is JobState.COMPLETED
            assert job.start_time >= pred_job.end_time


# ----------------------------------------------------------------------
# the --array %limit throttle
# ----------------------------------------------------------------------
class TestArrayThrottle:
    def test_limit_caps_concurrency_through_the_storm(self):
        cluster = SimCluster(seed=7, hpcg_duration_s=30.0)
        master = cluster.ctld.submit(
            _hpcg(4, array=tuple(range(12)), array_limit=2)
        )
        tasks = cluster.ctld.array_tasks(master)
        running = [t for t in tasks if t.state is JobState.RUNNING]
        assert len(running) == 2  # node could fit 8, the limit says 2
        throttled = [
            t for t in tasks if t.pending_reason == "JobArrayTaskLimit"
        ]
        assert throttled
        done = cluster.ctld.wait_for_array(master)
        assert all(t.state is JobState.COMPLETED for t in done)
        intervals = [(t.start_time, t.end_time) for t in done]
        for start, _ in intervals:
            overlapping = sum(1 for s, e in intervals if s <= start < e)
            assert overlapping <= 2

    def test_unlimited_array_fills_the_node(self):
        cluster = SimCluster(seed=7, hpcg_duration_s=30.0)
        master = cluster.ctld.submit(_hpcg(4, array=tuple(range(12))))
        tasks = cluster.ctld.array_tasks(master)
        assert sum(1 for t in tasks if t.state is JobState.RUNNING) == 8


# ----------------------------------------------------------------------
# energy-aware reschedule with model lineage
# ----------------------------------------------------------------------
class _StubProvider:
    """A live prediction provider whose registry identity can be bumped."""

    def __init__(self, cores: int = 8) -> None:
        self.cores = cores
        self.version = 1
        self.calls = 0

    def predict(self, request) -> PredictResponse:
        self.calls += 1
        return PredictResponse(
            cores=self.cores,
            threads_per_core=1,
            frequency=2_200_000,
            model_id=7,
            model_version=self.version,
        )


def _eco_cluster(retries: int = 2) -> "tuple[SimCluster, _StubProvider]":
    cluster = SimCluster(
        seed=7,
        hpcg_duration_s=600.0,
        config=SlurmConfig(
            job_submit_plugins=("eco",), reschedule_retries=retries
        ),
    )
    provider = _StubProvider()
    plugin = JobSubmitEco(
        cluster.node, provider=provider, state=PluginState("activated")
    )
    cluster.ctld.register_plugin(plugin)
    return cluster, provider


class TestReschedule:
    def test_auto_retry_repredicts_through_live_provider(self):
        cluster, provider = _eco_cluster(retries=2)
        jid = cluster.ctld.submit(
            _hpcg(32, workflow="retry", time_limit_s=60)
        )
        assert provider.calls == 1
        provider.version = 2  # a model promotion lands mid-workflow
        job = cluster.ctld.wait_for_job(jid)
        assert job.state is JobState.TIMEOUT
        reasons = [a["reason"] for a in job.attempts]
        assert reasons == ["submit", "reschedule", "reschedule"]
        lineage = [(a["model_id"], a["model_version"]) for a in job.attempts]
        assert lineage == [(7, 1), (7, 2), (7, 2)]
        assert provider.calls == 3  # every requeue re-ran the prediction

    def test_exit_127_is_never_retried(self):
        cluster, _ = _eco_cluster(retries=3)
        jid = cluster.ctld.submit(
            JobDescriptor(num_tasks=1, binary="/bin/nope", workflow="w")
        )
        job = cluster.ctld.get_job(jid)
        assert job.state is JobState.FAILED
        assert [a["reason"] for a in job.attempts] == ["submit"]

    def test_manual_reschedule_guards(self, cluster):
        done = cluster.submit_and_wait(
            build_script(4, 2_200_000, 1, HPCG_BINARY)
        )
        with pytest.raises(SubmitError, match="completed"):
            cluster.ctld.reschedule(done.job_id)
        running = cluster.ctld.submit(_hpcg(32))
        with pytest.raises(SubmitError, match="terminal"):
            cluster.ctld.reschedule(running)
        with pytest.raises(KeyError):
            cluster.ctld.reschedule(4242)

    def test_rollup_counts_each_lifecycle_once(self):
        cluster, provider = _eco_cluster(retries=1)
        jid = cluster.ctld.submit(
            _hpcg(32, workflow="retry", time_limit_s=60)
        )
        provider.version = 3
        job = cluster.ctld.wait_for_job(jid)
        roll = workflow_rollup(cluster.ctld.jobs.values())["retry"]
        assert roll["jobs"] == 1
        assert roll["attempts"] == len(job.attempts) == 2
        assert roll["models"] == ["7:v1", "7:v3"]
        # the latest lifecycle's joules, exactly once — not the sum of
        # every attempt's energy
        assert roll["total_energy_j"] == pytest.approx(job.consumed_energy_j)


# ----------------------------------------------------------------------
# slurmdbd agreement off the shared journal
# ----------------------------------------------------------------------
class TestDbdRollup:
    def test_dbd_workflows_match_controller_rollup(self, tmp_path):
        statesave = StateSave(str(tmp_path / "ss"))
        cluster = SimCluster(
            seed=7, hpcg_duration_s=60.0, statesave=statesave
        )
        j1 = cluster.ctld.submit(_hpcg(16, workflow="wf"))
        j2 = cluster.ctld.submit(
            _hpcg(16, workflow="wf", dependency=(("afterany", j1),))
        )
        cluster.ctld.wait_for_job(j2)
        dbd = SlurmDbd(statesave)
        dbd.pump()
        mine = workflow_rollup(cluster.ctld.jobs.values())["wf"]
        theirs = dbd.workflows()["wf"]
        assert theirs["job_ids"] == mine["job_ids"]
        assert theirs["attempts"] == mine["attempts"]
        assert theirs["models"] == mine["models"]
        assert theirs["total_energy_j"] == pytest.approx(
            mine["total_energy_j"]
        )
        # at-least-once delivery: pumping the same journal again must
        # not double anything
        dbd.pump()
        again = dbd.workflows()["wf"]
        assert again["total_energy_j"] == pytest.approx(
            mine["total_energy_j"]
        )
        assert again["attempts"] == mine["attempts"]


# ----------------------------------------------------------------------
# failover: held dependencies survive a leader kill
# ----------------------------------------------------------------------
class TestFailover:
    def test_backup_releases_dependencies_held_at_the_kill(self, tmp_path):
        drill = build_drill_plane(str(tmp_path / "ss"))
        sim = drill.sim
        leader = drill.plane.leader()
        j1 = leader.submit(
            JobDescriptor(
                name="wf-a", num_tasks=1, binary=DRILL_BINARY,
                time_limit_s=120, workflow="wf",
            )
        )
        j2 = leader.submit(
            JobDescriptor(
                name="wf-b", num_tasks=1, binary=DRILL_BINARY,
                time_limit_s=120, workflow="wf",
                dependency=(("afterok", j1),),
            )
        )
        sim.run(until=2.0)
        assert leader.jobs[j1].state is JobState.RUNNING
        assert leader.jobs[j2].pending_reason == "Dependency"
        drill.leader_peer().kill()

        ctld = None
        for _ in range(120):
            try:
                sim.run(until=sim.now + 2.0)
            except (ControllerCrashError, StaleEpochError):
                pass
            drill.restart_dead_peers()
            try:
                ctld = drill.plane.leader()
            except NoLeaderError:
                continue
            if all(ctld.jobs[j].state.is_terminal for j in (j1, j2)):
                break
        assert ctld is not None
        assert sum(p.takeovers for p in drill.peers) >= 1
        job1, job2 = ctld.jobs[j1], ctld.jobs[j2]
        assert job1.state is JobState.COMPLETED
        assert job2.state is JobState.COMPLETED
        assert job2.start_time >= job1.end_time
        assert [a["reason"] for a in job2.attempts] == [
            "submit", "dep_release",
        ]
        drill.dbd.pump()
        theirs = drill.dbd.workflows()["wf"]
        mine = workflow_rollup(ctld.jobs.values())["wf"]
        assert theirs["total_energy_j"] == pytest.approx(
            mine["total_energy_j"]
        )
        assert theirs["attempts"] == mine["attempts"]
