"""The incremental scheduler must be placement-identical to the reference.

``repro.slurm.scheduler`` stays the executable specification; the
fleet-scale fast path in ``repro.slurm.sched_index`` must produce the
same placements, in the same order, with the same pending reasons — over
randomized clusters and queues (Hypothesis), including drain/resume
mid-storm — while leaving its incremental state exactly as it found it.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.slurm.cluster import HPCG_BINARY, SimCluster
from repro.slurm.config import SlurmConfig
from repro.slurm.job import Job, JobDescriptor, JobState
from repro.slurm.sched_index import ClusterState, FreeCoreIndex
from repro.slurm.scheduler import NodeView, backfill_schedule, fifo_schedule


def make_job(job_id: int, tasks: int, limit_s: int = 600, nodes: int = 1) -> Job:
    return Job(
        job_id=job_id,
        descriptor=JobDescriptor(
            name=f"j{job_id}", num_tasks=tasks, time_limit_s=limit_s, nodes=nodes
        ),
        submit_time=0.0,
    )


# ---------------------------------------------------------------------------
# FreeCoreIndex unit behaviour
# ---------------------------------------------------------------------------
class TestFreeCoreIndex:
    def test_basic_queries(self):
        idx = FreeCoreIndex([4, 0, 8, 2])
        assert idx.max_free() == 8
        assert idx.find_first(3) == 0
        assert idx.find_first(5) == 2
        assert idx.find_first(3, start=1) == 2
        assert idx.find_first(9) is None
        assert idx.count_ge(2) == 3
        assert idx.find_k(2, 3) == [0, 2, 3]
        assert idx.find_k(2, 4) is None

    def test_set_and_add_update_queries(self):
        idx = FreeCoreIndex([4, 4, 4])
        idx.add(1, -4)
        assert idx.find_k(4, 3) is None
        assert idx.find_k(4, 2) == [0, 2]
        idx.set(1, 6)
        assert idx.max_free() == 6
        assert idx.find_first(5) == 1

    def test_single_node(self):
        idx = FreeCoreIndex([32])
        assert idx.find_first(32) == 0
        assert idx.find_first(33) is None
        idx.add(0, -32)
        assert idx.find_first(1) is None

    @settings(max_examples=80, deadline=None)
    @given(
        values=st.lists(st.integers(0, 64), min_size=1, max_size=33),
        need=st.integers(1, 64),
        start=st.integers(0, 32),
        updates=st.lists(
            st.tuples(st.integers(0, 32), st.integers(0, 64)), max_size=8
        ),
    )
    def test_matches_brute_force(self, values, need, start, updates):
        idx = FreeCoreIndex(values)
        for i, v in updates:
            if i < len(values):
                values[i] = v
                idx.set(i, v)
        expect_first = next(
            (i for i in range(start, len(values)) if values[i] >= need), None
        )
        assert idx.find_first(need, start) == expect_first
        assert idx.count_ge(need) == sum(1 for v in values if v >= need)
        want = [i for i, v in enumerate(values) if v >= need]
        for k in (1, 2, len(want) or 1, len(want) + 1):
            got = idx.find_k(need, k)
            assert got == (want[:k] if len(want) >= k else None)


# ---------------------------------------------------------------------------
# pass-level parity with the reference schedulers
# ---------------------------------------------------------------------------
node_strategy = st.lists(
    st.tuples(
        st.integers(1, 32),  # total cores
        st.lists(  # running steps: (cores, remaining seconds)
            st.tuples(st.integers(1, 8), st.integers(1, 5000)), max_size=3
        ),
    ),
    min_size=1,
    max_size=6,
)

job_strategy = st.lists(
    st.tuples(
        st.integers(1, 40),  # num_tasks
        st.integers(60, 7200),  # time limit
        st.integers(1, 3),  # nodes requested
    ),
    min_size=1,
    max_size=12,
)


def build_state(nodes_spec, drained=()):
    """A ClusterState and matching reference NodeViews from one spec."""
    state = ClusterState(
        (f"node{i + 1:03d}", total, total) for i, (total, _) in enumerate(nodes_spec)
    )
    for i, (total, running) in enumerate(nodes_spec):
        name = f"node{i + 1:03d}"
        free = total
        for cores, remaining in running:
            cores = min(cores, free)
            if cores < 1:
                break
            state.on_job_start([name], cores, float(remaining))
            free -= cores
    for name in drained:
        state.drain(name)
    return state


def reference_views(state: ClusterState) -> list[NodeView]:
    """Fresh reference-shaped views (the reference mutates its views)."""
    return state.node_views()


def make_queue(jobs_spec, node_count):
    jobs = []
    for i, (tasks, limit, nodes) in enumerate(jobs_spec):
        nodes = min(nodes, node_count, tasks)
        jobs.append(make_job(i + 1, tasks, limit, nodes))
    return jobs


def assert_parity(placements_ref, placements_inc, jobs_ref, jobs_inc):
    assert [
        (p.job.job_id, p.node_names) for p in placements_ref
    ] == [(p.job.job_id, p.node_names) for p in placements_inc]
    assert [j.pending_reason for j in jobs_ref] == [
        j.pending_reason for j in jobs_inc
    ]


class TestPassParity:
    @settings(max_examples=120, deadline=None)
    @given(nodes_spec=node_strategy, jobs_spec=job_strategy)
    def test_fifo_identical(self, nodes_spec, jobs_spec):
        state = build_state(nodes_spec)
        jobs_ref = make_queue(jobs_spec, len(nodes_spec))
        jobs_inc = make_queue(jobs_spec, len(nodes_spec))
        before = state.node_views()
        ref = fifo_schedule(jobs_ref, reference_views(state))
        inc = state.fifo_pass(jobs_inc)
        assert_parity(ref, inc, jobs_ref, jobs_inc)
        assert state.node_views() == before  # pass leaves no residue

    @settings(max_examples=120, deadline=None)
    @given(nodes_spec=node_strategy, jobs_spec=job_strategy)
    def test_backfill_identical(self, nodes_spec, jobs_spec):
        state = build_state(nodes_spec)
        jobs_ref = make_queue(jobs_spec, len(nodes_spec))
        jobs_inc = make_queue(jobs_spec, len(nodes_spec))
        before = state.node_views()
        ref = backfill_schedule(
            jobs_ref, reference_views(state), 0.0, default_limit_s=600
        )
        inc = state.backfill_pass(jobs_inc, 0.0, default_limit_s=600)
        assert_parity(ref, inc, jobs_ref, jobs_inc)
        assert state.node_views() == before

    @settings(max_examples=80, deadline=None)
    @given(
        nodes_spec=node_strategy,
        jobs_spec=job_strategy,
        drain_mask=st.lists(st.booleans(), min_size=6, max_size=6),
    )
    def test_backfill_identical_with_drained_nodes(
        self, nodes_spec, jobs_spec, drain_mask
    ):
        drained = [
            f"node{i + 1:03d}"
            for i in range(len(nodes_spec))
            if drain_mask[i % len(drain_mask)]
        ]
        state = build_state(nodes_spec, drained=drained)
        jobs_ref = make_queue(jobs_spec, len(nodes_spec))
        jobs_inc = make_queue(jobs_spec, len(nodes_spec))
        # the reference sees only the non-drained views (what the
        # controller hands it); node_views() already excludes drained
        ref = backfill_schedule(
            jobs_ref, reference_views(state), 0.0, default_limit_s=600
        )
        inc = state.backfill_pass(jobs_inc, 0.0, default_limit_s=600)
        assert_parity(ref, inc, jobs_ref, jobs_inc)

    def test_drain_resume_roundtrip(self):
        state = build_state([(8, []), (8, [])])
        state.drain("node001")
        assert state.is_drained("node001")
        jobs = [make_job(1, 8)]
        inc = state.fifo_pass(jobs)
        assert inc[0].node_names == ("node002",)
        state.resume("node001")
        jobs2 = [make_job(2, 8)]
        inc2 = state.fifo_pass(jobs2)
        assert inc2[0].node_names == ("node001",)


# ---------------------------------------------------------------------------
# controller-level parity: incremental vs SchedulerParameters=reference
# ---------------------------------------------------------------------------
def _storm_outcomes(ctld):
    return {
        j.job_id: (j.state, j.node_list, j.start_time, j.end_time)
        for j in ctld.jobs.values()
    }


def _run_storm(config_text, ops):
    cluster = SimCluster(
        seed=11, n_nodes=4, config=SlurmConfig.parse(config_text),
        hpcg_duration_s=300.0,
    )
    for op, payload in ops:
        if op == "submit":
            tasks, limit, nodes = payload
            cluster.ctld.submit(
                JobDescriptor(
                    name=f"s{tasks}", num_tasks=tasks, time_limit_s=limit,
                    nodes=nodes, binary=HPCG_BINARY,
                )
            )
        elif op == "drain":
            cluster.ctld.drain_node(payload)
        elif op == "resume":
            cluster.ctld.resume_node(payload)
        elif op == "step":
            cluster.sim.run(max_events=payload)
    cluster.sim.run_until_idle()
    return _storm_outcomes(cluster.ctld)


STORM_OPS = [
    ("submit", (64, 1200, 2)),
    ("submit", (32, 600, 1)),
    ("submit", (8, 300, 1)),
    ("step", 2),
    ("drain", "node003"),
    ("submit", (16, 900, 1)),
    ("submit", (128, 2400, 4)),
    ("step", 4),
    ("resume", "node003"),
    ("submit", (4, 120, 1)),
    ("submit", (32, 600, 1)),
]


class TestControllerParity:
    @pytest.mark.parametrize("sched", ["sched/backfill", "sched/builtin"])
    def test_storm_identical_to_reference(self, sched):
        base = f"SchedulerType={sched}\n"
        fast = _run_storm(base, STORM_OPS)
        ref = _run_storm(base + "SchedulerParameters=reference\n", STORM_OPS)
        assert fast == ref

    def test_defer_coalesces_but_matches(self):
        plain = _run_storm("SchedulerType=sched/backfill\n", STORM_OPS)
        deferred = _run_storm(
            "SchedulerType=sched/backfill\nSchedulerParameters=defer\n",
            STORM_OPS,
        )
        assert plain == deferred

    def test_queue_depth_bounds_one_pass(self):
        cluster = SimCluster(
            seed=3, n_nodes=1,
            config=SlurmConfig.parse(
                "SchedulerType=sched/builtin\n"
                "SchedulerParameters=default_queue_depth=1\n"
            ),
            hpcg_duration_s=60.0,
        )
        for _ in range(3):
            cluster.ctld.submit(
                JobDescriptor(
                    name="d", num_tasks=8, time_limit_s=120,
                    binary=HPCG_BINARY,
                )
            )
        # depth=1: each pass examines only the queue head, but completions
        # retrigger passes, so the whole queue still drains eventually
        cluster.sim.run_until_idle()
        assert all(
            j.state is JobState.COMPLETED for j in cluster.ctld.jobs.values()
        )

    def test_drain_unknown_node_raises(self, cluster):
        with pytest.raises(KeyError):
            cluster.ctld.drain_node("node999")
        with pytest.raises(KeyError):
            cluster.ctld.resume_node("node999")

    def test_drained_node_gets_no_new_jobs(self):
        cluster = SimCluster(seed=5, n_nodes=2, hpcg_duration_s=60.0)
        cluster.ctld.drain_node("node001")
        jid = cluster.ctld.submit(
            JobDescriptor(
                name="d", num_tasks=8, time_limit_s=120,
                binary=HPCG_BINARY,
            )
        )
        job = cluster.ctld.get_job(jid)
        assert job.node_list == ("node002",)
        cluster.sim.run_until_idle()

    def test_cluster_state_mirrors_nodes_after_storm(self):
        cluster = SimCluster(seed=8, n_nodes=2, hpcg_duration_s=120.0)
        for tasks in (16, 32, 8, 24):
            cluster.ctld.submit(
                JobDescriptor(
                    name="m", num_tasks=tasks, time_limit_s=600,
                    binary=HPCG_BINARY,
                )
            )
        cluster.sim.run_until_idle()
        for slurmd in cluster.slurmds:
            assert (
                cluster.ctld.cluster_state.free_cores(slurmd.hostname)
                == slurmd.node.free_cores()
            )
