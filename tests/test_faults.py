"""Tests for repro.faults: spec parsing, profiles, injector behaviour."""

import math

import pytest

from repro import faults
from repro.core.domain.errors import FaultSpecError
from repro.faults.injector import FaultInjector, FaultRule, NullInjector, parse_spec
from repro.faults.profiles import PROFILE_DESCRIPTIONS, PROFILES


@pytest.fixture(autouse=True)
def _no_leftover_faults():
    faults.reset()
    yield
    faults.reset()


class TestParseSpec:
    def test_single_site(self):
        rules, seed = parse_spec("ipmi.read=0.2")
        assert len(rules) == 1
        assert rules[0].site == "ipmi.read"
        assert rules[0].probability == 0.2
        assert rules[0].limit is None
        assert seed == 0

    def test_limit_and_seed(self):
        rules, seed = parse_spec("sqlite.busy=1:2,seed=42")
        assert rules[0].limit == 2
        assert seed == 42

    def test_profile_name_expands(self):
        rules, _ = parse_spec("flaky-ipmi")
        assert [(r.site, r.probability) for r in rules] == [("ipmi.read", 0.2)]

    def test_profile_mixed_with_entries(self):
        rules, seed = parse_spec("flaky-ipmi,seed=7")
        assert rules[0].site == "ipmi.read"
        assert seed == 7

    def test_unknown_site_rejected(self):
        with pytest.raises(FaultSpecError, match="unknown fault site"):
            parse_spec("warp.core=0.5")

    def test_bad_probability_rejected(self):
        with pytest.raises(FaultSpecError):
            parse_spec("ipmi.read=1.5")
        with pytest.raises(FaultSpecError):
            parse_spec("ipmi.read=lots")

    def test_bad_limit_rejected(self):
        with pytest.raises(FaultSpecError):
            parse_spec("ipmi.read=0.5:0")
        with pytest.raises(FaultSpecError):
            parse_spec("ipmi.read=0.5:many")

    def test_garbage_entry_rejected(self):
        with pytest.raises(FaultSpecError, match="cannot parse"):
            parse_spec("chaos please")

    def test_every_profile_parses(self):
        for name, spec in PROFILES.items():
            rules, _ = parse_spec(spec)
            assert rules, name
            assert name in PROFILE_DESCRIPTIONS


class TestFaultInjector:
    def test_certain_fault_always_fires(self):
        injector = FaultInjector([FaultRule("ipmi.read", 1.0)])
        assert all(injector.fire("ipmi.read") for _ in range(5))

    def test_unconfigured_site_never_fires_and_draws_no_rng(self):
        injector = FaultInjector([FaultRule("ipmi.read", 0.5)], seed=1)
        state = injector._rng.getstate()
        assert not injector.fire("predict.timeout")
        assert injector._rng.getstate() == state

    def test_limit_caps_firings(self):
        injector = FaultInjector([FaultRule("sqlite.busy", 1.0, limit=2)])
        fires = [injector.fire("sqlite.busy") for _ in range(5)]
        assert fires == [True, True, False, False, False]
        assert injector.fired_counts() == {"sqlite.busy": 2}

    def test_seeded_sequences_reproduce(self):
        a = FaultInjector([FaultRule("ipmi.read", 0.3)], seed=9)
        b = FaultInjector([FaultRule("ipmi.read", 0.3)], seed=9)
        seq_a = [a.fire("ipmi.read") for _ in range(50)]
        seq_b = [b.fire("ipmi.read") for _ in range(50)]
        assert seq_a == seq_b
        assert any(seq_a) and not all(seq_a)

    def test_spec_round_trips(self):
        injector = FaultInjector.from_spec("ipmi.read=0.2,sqlite.busy=1:2,seed=3")
        again = FaultInjector.from_spec(injector.spec())
        assert again.spec() == injector.spec()


class TestModuleState:
    def test_default_is_null(self):
        assert isinstance(faults.active(), NullInjector)
        assert not faults.enabled()
        assert not faults.fire("ipmi.read")

    def test_configure_and_reset(self):
        faults.configure("ipmi.read=1")
        assert faults.enabled()
        assert faults.fire("ipmi.read")
        faults.reset()
        assert not faults.enabled()

    def test_configure_empty_disables(self):
        faults.configure("ipmi.read=1")
        faults.configure(None)
        assert not faults.enabled()
        faults.configure("   ")
        assert not faults.enabled()

    def test_seed_override(self):
        faults.configure("ipmi.read=0.5,seed=1", seed=99)
        assert faults.active().seed == 99

    def test_env_var_configures_at_import(self, monkeypatch):
        # simulate what a forked sweep worker does at import time
        import importlib

        monkeypatch.setenv(faults.ENV_VAR, "flaky-ipmi,seed=5")
        importlib.reload(faults)
        try:
            assert faults.enabled()
            assert faults.active().seed == 5
        finally:
            monkeypatch.delenv(faults.ENV_VAR)
            importlib.reload(faults)


class TestFaultHooks:
    """The production hooks actually obey the injector."""

    def test_ipmi_read_fault_raises(self, cluster):
        from repro.hardware.ipmi import IpmiReadError

        faults.configure("ipmi.read=1")
        with pytest.raises(IpmiReadError):
            cluster.ipmi.read_sensor("Total_Power")

    def test_ipmi_nan_fault_poisons_reading(self, cluster):
        faults.configure("ipmi.nan=1")
        reading = cluster.ipmi.read_sensor("Total_Power")
        assert math.isnan(reading.value)

    def test_ipmi_spike_fault_inflates_reading(self, cluster):
        clean = cluster.ipmi.read_sensor("Total_Power").value
        faults.configure("ipmi.spike=1")
        spiked = cluster.ipmi.read_sensor("Total_Power").value
        assert spiked == pytest.approx(clean * 100.0, rel=0.5)

    def test_sweep_crash_fault_raises_in_worker(self, cluster):
        from repro.core.runners.sweep_worker import SweepPoint, run_sweep_point
        from repro.core.domain.configuration import Configuration

        faults.configure("sweep.crash=1")
        point = SweepPoint(Configuration(1, 1, 2_500_000), seed=0, duration_s=10.0)
        with pytest.raises(RuntimeError, match="injected fault"):
            run_sweep_point(point)

    def test_sqlite_busy_fault_retried_transparently(self, tmp_path):
        import sqlite3

        from repro.core.repositories.sqlite_repository import SqliteRepository
        from repro.core.services.lscpu_info import LscpuSystemInfo

        repo = SqliteRepository(str(tmp_path / "test.db"))
        info = LscpuSystemInfo(_node()).fetch()
        faults.configure("sqlite.busy=1:2")  # two injected lock errors
        system_id = repo.save_system(info)
        assert repo.get_system(system_id).cores == info.cores
        # the retries re-ran the whole transaction: exactly one row
        assert len(repo.list_systems()) == 1
        faults.configure("sqlite.busy=1")  # unlimited: retries exhaust
        row = _benchmark_row(system_id)
        with pytest.raises(sqlite3.OperationalError):
            repo.save_benchmark(row)
        # the failed flush left no partial rows behind
        assert repo.benchmarks_for_system(system_id) == []
        faults.reset()
        repo.save_benchmark(row)
        assert len(repo.benchmarks_for_system(system_id)) == 1


def _node():
    from repro.hardware.node import SimulatedNode
    from repro.simkernel.engine import Simulator

    return SimulatedNode(Simulator())


def _benchmark_row(system_id):
    from repro.core.domain.benchmark import BenchmarkResult
    from repro.core.domain.configuration import Configuration

    return BenchmarkResult(
        system_id=system_id,
        application="hpcg",
        configuration=Configuration(4, 1, 2_500_000),
        gflops=10.0,
        avg_system_w=200.0,
        avg_cpu_w=120.0,
        avg_cpu_temp_c=55.0,
        system_energy_j=1000.0,
        cpu_energy_j=600.0,
        runtime_s=5.0,
    )
