"""Unit + property tests for named random streams."""

import numpy as np
from hypothesis import given, strategies as st

from repro.simkernel.random import RandomStreams, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, "a") == derive_seed(1, "a")

    def test_name_sensitivity(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")

    def test_root_sensitivity(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    @given(st.integers(min_value=0, max_value=2**31), st.text(max_size=40))
    def test_in_64bit_range(self, root, name):
        s = derive_seed(root, name)
        assert 0 <= s < 2**64


class TestRandomStreams:
    def test_same_name_same_object(self):
        streams = RandomStreams(0)
        assert streams.get("x") is streams.get("x")

    def test_reproducible_across_instances(self):
        a = RandomStreams(42).get("bmc").normal(size=10)
        b = RandomStreams(42).get("bmc").normal(size=10)
        np.testing.assert_array_equal(a, b)

    def test_streams_independent(self):
        streams = RandomStreams(42)
        a = streams.get("a").normal(size=10)
        b = streams.get("b").normal(size=10)
        assert not np.allclose(a, b)

    def test_new_consumer_does_not_perturb_existing(self):
        """Adding a stream must not change another stream's draws."""
        only = RandomStreams(7)
        x1 = only.get("x").normal(size=5)
        both = RandomStreams(7)
        both.get("y").normal(size=100)  # interleaved consumer
        x2 = both.get("x").normal(size=5)
        np.testing.assert_array_equal(x1, x2)

    def test_fork_is_independent(self):
        parent = RandomStreams(1)
        child = parent.fork("child")
        assert not np.allclose(
            parent.get("s").normal(size=8), child.get("s").normal(size=8)
        )

    def test_contains(self):
        streams = RandomStreams(0)
        assert "a" not in streams
        streams.get("a")
        assert "a" in streams
