"""Tests for ETC settings storage and local blob storage."""

import os

import pytest

from repro.core.domain.errors import ModelNotFoundError, SettingsError
from repro.core.domain.settings import ChronusSettings
from repro.core.storage.etc_storage import EtcStorage
from repro.core.storage.local_file_repository import LocalFileRepository


class TestEtcStorage:
    def test_defaults_when_missing(self, tmp_path):
        storage = EtcStorage(str(tmp_path / "etc"))
        assert storage.load() == ChronusSettings()

    def test_save_load_roundtrip(self, tmp_path):
        storage = EtcStorage(str(tmp_path))
        settings = ChronusSettings().with_state("activated").with_database("x.db")
        storage.save(settings)
        assert storage.load() == settings

    def test_persisted_as_json_file(self, tmp_path):
        storage = EtcStorage(str(tmp_path))
        storage.save(ChronusSettings())
        assert os.path.exists(os.path.join(str(tmp_path), "settings.json"))

    def test_corrupt_file_raises_settings_error(self, tmp_path):
        storage = EtcStorage(str(tmp_path))
        with open(storage.settings_path, "w") as fh:
            fh.write("{not json")
        with pytest.raises(SettingsError):
            storage.load()

    def test_resolve_path(self, tmp_path):
        storage = EtcStorage(str(tmp_path))
        assert storage.resolve_path("optimizer/m.json") == os.path.join(
            str(tmp_path), "optimizer/m.json"
        )
        assert storage.resolve_path("/abs/path") == "/abs/path"

    def test_empty_root_rejected(self):
        with pytest.raises(ValueError):
            EtcStorage("")

    def test_atomic_write_leaves_no_tmp(self, tmp_path):
        storage = EtcStorage(str(tmp_path))
        storage.save(ChronusSettings())
        assert not os.path.exists(storage.settings_path + ".tmp")


class TestLocalFileRepository:
    def test_save_load_roundtrip(self, tmp_path):
        repo = LocalFileRepository(str(tmp_path / "blobs"))
        path = repo.save("model-1.json", b"payload")
        assert repo.exists(path)
        assert repo.load(path) == b"payload"

    def test_load_by_name(self, tmp_path):
        repo = LocalFileRepository(str(tmp_path / "blobs"))
        repo.save("m.json", b"x")
        assert repo.load("m.json") == b"x"

    def test_missing_blob_raises(self, tmp_path):
        repo = LocalFileRepository(str(tmp_path))
        with pytest.raises(ModelNotFoundError):
            repo.load("nope.json")

    def test_overwrite(self, tmp_path):
        repo = LocalFileRepository(str(tmp_path))
        path = repo.save("m.json", b"v1")
        repo.save("m.json", b"v2")
        assert repo.load(path) == b"v2"

    def test_path_traversal_blocked(self, tmp_path):
        repo = LocalFileRepository(str(tmp_path / "blobs"))
        with pytest.raises(ValueError, match="escapes"):
            repo.save("../outside.json", b"x")

    def test_empty_name_rejected(self, tmp_path):
        repo = LocalFileRepository(str(tmp_path))
        with pytest.raises(ValueError):
            repo.save("", b"x")

    def test_nested_names(self, tmp_path):
        repo = LocalFileRepository(str(tmp_path))
        path = repo.save("sys1/m.json", b"deep")
        assert repo.load(path) == b"deep"
