"""Tests for the versioned model registry and its lifecycle.

Acceptance bar: promoting a model while the serving daemon handles a
concurrent submit storm must switch every subsequent answer to the new
version with zero SHED answers and zero restarts; rollback restores the
prior version; pre-registry workspaces (old CSV headers, old SQLite
columns) migrate in place with their models listed as ``active``.
"""

from __future__ import annotations

import os
import shutil
import sqlite3
import threading

import pytest

from repro import telemetry
from repro.core.application.init_model_service import InitModelService
from repro.core.application.load_model_service import LoadModelService
from repro.core.application.model_registry_service import ModelRegistryService
from repro.core.application.slurm_config_service import SlurmConfigService
from repro.core.cli.main import main as cli_main
from repro.core.domain.errors import StageTransitionError
from repro.core.domain.model import (
    MODEL_STAGES,
    STAGE_ACTIVE,
    STAGE_ARCHIVED,
    STAGE_CANDIDATE,
    STAGE_SHADOW,
    ModelRecord,
    can_transition,
)
from repro.core.domain.system_info import SystemInfo
from repro.core.factory import ModelFactory
from repro.core.repositories.csv_repository import CsvRepository
from repro.core.repositories.memory_repository import MemoryRepository
from repro.core.repositories.sqlite_repository import SqliteRepository
from repro.core.storage.etc_storage import EtcStorage
from repro.core.storage.local_file_repository import LocalFileRepository
from repro.serving.protocol import ErrorResponse, PredictRequest
from repro.serving.server import ChronusServer

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures", "legacy")

SYSTEM = SystemInfo(
    cpu_name="AMD EPYC 7502P 32-Core Processor",
    cores=32,
    threads_per_core=2,
    frequencies=(1_500_000.0, 2_200_000.0, 2_500_000.0),
    ram_kb=268435456,
)


@pytest.fixture(autouse=True)
def clean_registry():
    telemetry.set_registry(telemetry.MetricsRegistry())
    yield
    telemetry.set_registry(telemetry.MetricsRegistry())


def counter_value(name: str) -> float:
    entry = telemetry.find_metric(telemetry.snapshot(), "counters", name)
    return entry["value"] if entry else 0.0


def _write_file(path: str, data: bytes) -> None:
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    with open(path, "wb") as fh:
        fh.write(data)


def _read_file(path: str) -> bytes:
    with open(path, "rb") as fh:
        return fh.read()


class Workspace:
    """A head node in a tmp dir: repo + blobs + real settings file.

    The settings file living on real disk is load-bearing: zero-restart
    promotion works by the serving path re-reading it per request.
    """

    def __init__(self, tmp_path, rows):
        self.repository = MemoryRepository()
        assert self.repository.save_system(SYSTEM) == 1
        for row in rows:
            self.repository.save_benchmark(row)
        self.blobs = LocalFileRepository(str(tmp_path / "blobs"))
        self.local = EtcStorage(str(tmp_path / "etc"))
        self.init = InitModelService(
            self.repository, self.blobs, ModelFactory.get_optimizer
        )
        self.load = LoadModelService(
            self.repository, self.blobs, self.local, write_local=_write_file
        )
        self.registry = ModelRegistryService(
            self.repository, self.load, self.local
        )

    def train(self, model_type="brute-force"):
        return self.init.run(model_type, 1, application="hpcg")

    def config_service(self, shadow_sample_rate=1.0):
        return SlurmConfigService(
            self.local,
            ModelFactory.load_optimizer,
            read_local=_read_file,
            shadow_sample_rate=shadow_sample_rate,
        )


@pytest.fixture
def ws(tmp_path, steady_rows):
    return Workspace(tmp_path, steady_rows)


# ---------------------------------------------------------------------------
# domain: lifecycle rules
# ---------------------------------------------------------------------------
class TestStageRules:
    def test_stage_universe(self):
        assert MODEL_STAGES == ("candidate", "shadow", "active", "archived")

    @pytest.mark.parametrize("frm,to,ok", [
        (STAGE_CANDIDATE, STAGE_SHADOW, True),
        (STAGE_CANDIDATE, STAGE_ACTIVE, True),
        (STAGE_SHADOW, STAGE_ACTIVE, True),
        (STAGE_SHADOW, STAGE_CANDIDATE, True),
        (STAGE_ACTIVE, STAGE_ARCHIVED, True),
        (STAGE_ARCHIVED, STAGE_ACTIVE, True),   # rollback
        (STAGE_ACTIVE, STAGE_SHADOW, False),
        (STAGE_ACTIVE, STAGE_CANDIDATE, False),
        (STAGE_ARCHIVED, STAGE_SHADOW, False),
        (STAGE_ARCHIVED, STAGE_CANDIDATE, False),
    ])
    def test_transition_table(self, frm, to, ok):
        assert can_transition(frm, to) is ok

    def test_record_rejects_unknown_stage(self):
        with pytest.raises(ValueError):
            ModelRecord(1, "t", 1, "hpcg", "/p", 0.0, 1, stage="retired")

    def test_legacy_dict_migrates_as_active(self):
        record = ModelRecord.from_dict({
            "model_id": "7", "model_type": "brute-force", "system_id": "1",
            "application": "hpcg", "blob_path": "/b", "created_at": "3.0",
            "training_points": "24",
        })
        assert record.stage == STAGE_ACTIVE
        assert record.version == 1
        assert record.parent_id is None


# ---------------------------------------------------------------------------
# registry lifecycle use cases
# ---------------------------------------------------------------------------
class TestRegistryLifecycle:
    def test_new_models_are_candidates_with_lineage(self, ws):
        first = ws.train()
        ws.registry.promote(first.model_id)
        second = ws.train("linear-regression")
        assert first.stage == STAGE_CANDIDATE
        assert (second.version, second.parent_id) == (2, first.model_id)
        assert second.digest and second.digest[:12] in second.blob_path

    def test_promote_archives_previous_active(self, ws):
        first = ws.train()
        second = ws.train("linear-regression")
        ws.registry.promote(first.model_id)
        ws.registry.promote(second.model_id)
        stages = {m.model_id: m.stage for m in ws.repository.list_models()}
        assert stages == {first.model_id: STAGE_ARCHIVED,
                          second.model_id: STAGE_ACTIVE}
        assert counter_value("model_promotions_total") == 2
        entry = ws.local.load().loaded_model_for(1)
        assert entry["model_id"] == second.model_id
        assert entry["stage"] == "active"

    def test_promote_active_again_refused(self, ws):
        meta = ws.train()
        ws.registry.promote(meta.model_id)
        with pytest.raises(StageTransitionError):
            ws.registry.promote(meta.model_id)

    def test_rollback_restores_prior_version(self, ws):
        first = ws.train()
        second = ws.train("linear-regression")
        ws.registry.promote(first.model_id)
        ws.registry.promote(second.model_id)
        restored = ws.registry.rollback(1, "hpcg")
        assert restored.model_id == first.model_id
        stages = {m.model_id: m.stage for m in ws.repository.list_models()}
        assert stages == {first.model_id: STAGE_ACTIVE,
                          second.model_id: STAGE_ARCHIVED}
        assert counter_value("model_rollbacks_total") == 1
        assert ws.local.load().loaded_model_for(1)["model_id"] == first.model_id

    def test_rollback_without_predecessor_refused(self, ws):
        meta = ws.train()
        ws.registry.promote(meta.model_id)
        with pytest.raises(StageTransitionError):
            ws.registry.rollback(1, "hpcg")

    def test_rollback_without_active_refused(self, ws):
        with pytest.raises(StageTransitionError):
            ws.registry.rollback(1, "hpcg")

    def test_shadow_records_projection(self, ws):
        first = ws.train()
        second = ws.train("linear-regression")
        ws.registry.promote(first.model_id)
        ws.registry.shadow(second.model_id)
        entry = ws.local.load().shadow_model_for(1, "hpcg")
        assert entry["model_id"] == second.model_id
        assert entry["stage"] == "shadow"
        # only one shadow per scope: a third model displaces the second
        third = ws.train()
        ws.registry.shadow(third.model_id)
        stages = {m.model_id: m.stage for m in ws.repository.list_models()}
        assert stages[second.model_id] == STAGE_CANDIDATE
        assert stages[third.model_id] == STAGE_SHADOW

    def test_promoting_the_shadow_clears_projection(self, ws):
        first = ws.train()
        second = ws.train("linear-regression")
        ws.registry.promote(first.model_id)
        ws.registry.shadow(second.model_id)
        ws.registry.promote(second.model_id)
        settings = ws.local.load()
        assert settings.shadow_model_for(1, "hpcg") is None
        assert settings.loaded_model_for(1)["model_id"] == second.model_id


# ---------------------------------------------------------------------------
# zero-restart promotion through the serving path
# ---------------------------------------------------------------------------
class TestZeroRestartPromotion:
    def test_promotion_visible_to_live_service(self, ws):
        first = ws.train()
        second = ws.train("linear-regression")
        ws.registry.promote(first.model_id)
        svc = ws.config_service(shadow_sample_rate=0.0)
        before = svc.predict(PredictRequest(system_id=1))
        assert (before.model_id, before.model_version) == (first.model_id, 1)
        # promote through a *different* stack (another process in real
        # life); the live service must pick it up on the next request
        ws.registry.promote(second.model_id)
        after = svc.predict(PredictRequest(system_id=1))
        assert (after.model_id, after.model_version) == (second.model_id, 2)
        assert after.model_type == "linear-regression"
        assert counter_value("model_cache_stale_total") == 1.0

    def test_rollback_visible_to_live_service(self, ws):
        first = ws.train()
        second = ws.train("linear-regression")
        ws.registry.promote(first.model_id)
        ws.registry.promote(second.model_id)
        svc = ws.config_service(shadow_sample_rate=0.0)
        assert svc.predict(PredictRequest(system_id=1)).model_id == second.model_id
        ws.registry.rollback(1, "hpcg")
        answer = svc.predict(PredictRequest(system_id=1))
        assert (answer.model_id, answer.model_version) == (first.model_id, 1)

    def test_promote_under_submit_storm_no_shed_no_restart(self, ws):
        """The acceptance scenario: storm + promotion, zero SHED."""
        first = ws.train()
        second = ws.train("linear-regression")
        ws.registry.promote(first.model_id)
        svc = ws.config_service(shadow_sample_rate=0.0)
        server = ChronusServer(
            svc, load_model_service=ws.load, queue_limit=512, max_batch=16
        )
        answers: dict[int, list] = {}
        promoted = threading.Event()

        def storm(worker: int) -> None:
            out = []
            for i in range(40):
                if worker == 0 and i == 10:
                    ws.registry.promote(second.model_id)
                    promoted.set()
                out.append(server.predict(PredictRequest(system_id=1)))
            answers[worker] = out

        with server:
            threads = [
                threading.Thread(target=storm, args=(w,)) for w in range(4)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            final = server.predict(PredictRequest(system_id=1))

        flat = [a for out in answers.values() for a in out]
        assert len(flat) == 160
        errors = [a for a in flat if isinstance(a, ErrorResponse)]
        assert errors == []  # zero SHED, zero failures of any kind
        assert {a.model_id for a in flat} <= {first.model_id, second.model_id}
        # each worker's stream flips at most once, old -> new, never back
        for out in answers.values():
            versions = [a.model_version for a in out]
            assert versions == sorted(versions)
        # after the storm the daemon answers with the new version — same
        # process, same server object, no restart
        assert promoted.is_set()
        assert final.model_id == second.model_id
        assert final.model_version == 2


# ---------------------------------------------------------------------------
# shadow evaluation
# ---------------------------------------------------------------------------
class TestShadowEvaluation:
    def _stack(self, ws, steady_rows):
        """Active model on the full sweep, shadow trained on a biased slice.

        The shadow is fit only on rows whose core count differs from the
        active model's best configuration, so its answer *must* diverge.
        """
        active = ws.train()
        ws.registry.promote(active.model_id)
        full = ModelFactory.get_optimizer("brute-force")
        full.fit(steady_rows)
        best_cores = full.best_configuration(None).cores
        biased_rows = [
            r for r in steady_rows if r.configuration.cores != best_cores
        ]
        optimizer = ModelFactory.get_optimizer("brute-force")
        optimizer.fit(biased_rows)
        blob_path = ws.blobs.save("shadow-biased.json", optimizer.serialize())
        shadow_meta = ModelRecord(
            model_id=0, model_type="brute-force", system_id=1,
            application="hpcg", blob_path=blob_path, created_at=1.0,
            training_points=len(biased_rows),
        )
        shadow_id = ws.repository.save_model_metadata(shadow_meta)
        ws.registry.shadow(shadow_id)
        return active, shadow_id

    def test_divergence_metrics_recorded(self, ws, steady_rows):
        active, shadow_id = self._stack(ws, steady_rows)
        svc = ws.config_service(shadow_sample_rate=1.0)
        for _ in range(4):
            answer = svc.predict(PredictRequest(system_id=1))
            # only the active model's answer is ever served
            assert answer.model_id == active.model_id
        assert counter_value("model_shadow_checks_total") == 4
        assert counter_value("model_shadow_diverged_total") == 4
        gauge = telemetry.find_metric(
            telemetry.snapshot(), "gauges", "model_shadow_divergence"
        )
        assert gauge is not None and gauge["value"] == 1.0

    def test_sampling_rate_thins_checks(self, ws, steady_rows):
        self._stack(ws, steady_rows)
        svc = ws.config_service(shadow_sample_rate=0.25)
        for _ in range(8):
            svc.predict(PredictRequest(system_id=1))
        assert counter_value("model_shadow_checks_total") == 2  # every 4th

    def test_shadow_failure_never_breaks_serving(self, ws):
        active = ws.train()
        ws.registry.promote(active.model_id)
        # hand-plant a shadow projection pointing at a missing artifact
        ws.local.mutate(
            lambda s: s.with_shadow_model(
                1, "hpcg", "/nowhere/missing.json", "brute-force",
                model_id=99, version=9,
            )
        )
        svc = ws.config_service(shadow_sample_rate=1.0)
        answer = svc.predict(PredictRequest(system_id=1))
        assert answer.model_id == active.model_id
        assert counter_value("model_shadow_errors_total") == 1
        assert counter_value("model_shadow_checks_total") == 0


# ---------------------------------------------------------------------------
# concurrency regressions (the satellite fixes)
# ---------------------------------------------------------------------------
class TestConcurrentIdAssignment:
    @pytest.mark.parametrize("backend", ["memory", "sqlite", "csv"])
    def test_parallel_saves_never_share_an_id(self, backend, tmp_path):
        if backend == "memory":
            repo = MemoryRepository()
        elif backend == "sqlite":
            repo = SqliteRepository(str(tmp_path / "data.db"))
        else:
            repo = CsvRepository(str(tmp_path / "csvrepo"))
        repo.save_system(SYSTEM)
        ids: list[int] = []
        lock = threading.Lock()

        def saver(worker: int) -> None:
            got = []
            for i in range(5):
                meta = ModelRecord(
                    model_id=0, model_type="brute-force", system_id=1,
                    application="hpcg", blob_path=f"/b/{worker}-{i}.json",
                    created_at=0.0, training_points=1,
                )
                got.append(repo.save_model_metadata(meta))
            with lock:
                ids.extend(got)

        threads = [threading.Thread(target=saver, args=(w,)) for w in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(ids) == 40
        assert len(set(ids)) == 40, "duplicate model ids were handed out"
        assert len(repo.list_models()) == 40

    def test_next_model_id_is_only_a_hint(self, tmp_path):
        repo = SqliteRepository(str(tmp_path / "data.db"))
        hint = repo.next_model_id()
        meta = ModelRecord(
            model_id=0, model_type="t", system_id=1, application="hpcg",
            blob_path="/b.json", created_at=0.0, training_points=1,
        )
        assigned = repo.save_model_metadata(meta)
        # the save assigned the id itself; the earlier hint happens to
        # match only because nothing raced — callers must use the return
        assert assigned == hint
        assert repo.get_model_metadata(assigned).blob_path == "/b.json"


class TestSettingsMutateRace:
    def test_threaded_mutations_lose_nothing(self, tmp_path):
        storage = EtcStorage(str(tmp_path / "etc"))

        def register(i: int) -> None:
            storage.mutate(lambda s: s.with_binary_alias(str(1000 + i), f"app{i}"))

        threads = [
            threading.Thread(target=register, args=(i,)) for i in range(16)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        aliases = storage.load().binary_aliases
        assert len(aliases) == 16, f"lost updates: {sorted(aliases)}"

    def test_mixed_field_mutations_do_not_clobber(self, tmp_path):
        """register_binary vs model-load: different fields, one file."""
        storage = EtcStorage(str(tmp_path / "etc"))

        def aliases(_: int) -> None:
            for i in range(10):
                storage.mutate(
                    lambda s, i=i: s.with_binary_alias(str(i), f"app{i}")
                )

        def models(_: int) -> None:
            for i in range(10):
                storage.mutate(
                    lambda s, i=i: s.with_loaded_model(
                        i + 1, f"/opt/m{i}.json", "brute-force",
                        application="hpcg", model_id=i + 1, version=1,
                    )
                )

        t1 = threading.Thread(target=aliases, args=(0,))
        t2 = threading.Thread(target=models, args=(0,))
        t1.start(); t2.start(); t1.join(); t2.join()
        settings = storage.load()
        assert len(settings.binary_aliases) == 10
        # with_loaded_model writes both the bare and qualified keys
        assert len(settings.loaded_models) == 20


class TestLoadDurability:
    def test_destination_directory_is_fsynced(self, ws):
        meta = ws.train()
        fsynced = []
        ws.load._fsync_dir = fsynced.append
        _, local_path = ws.load.run(meta.model_id)
        assert fsynced == [os.path.dirname(local_path)]


# ---------------------------------------------------------------------------
# legacy workspace migration (checked-in pre-registry fixtures)
# ---------------------------------------------------------------------------
class TestLegacyMigration:
    def test_sqlite_fixture_is_really_pre_registry(self):
        conn = sqlite3.connect(os.path.join(FIXTURES, "data.db"))
        cols = {row[1] for row in conn.execute("PRAGMA table_info(models)")}
        conn.close()
        assert "stage" not in cols and "version" not in cols

    def test_sqlite_workspace_migrates_in_place(self, tmp_path):
        db = str(tmp_path / "data.db")
        shutil.copy(os.path.join(FIXTURES, "data.db"), db)
        repo = SqliteRepository(db)
        models = repo.list_models()
        assert [m.model_id for m in models] == [1, 2]
        assert all(m.stage == STAGE_ACTIVE for m in models)
        assert all(m.version == 1 for m in models)
        # the migration is durable: a fresh open sees lifecycle columns
        conn = sqlite3.connect(db)
        cols = {row[1] for row in conn.execute("PRAGMA table_info(models)")}
        conn.close()
        assert {"stage", "version", "parent_id", "digest", "provenance"} <= cols
        # and the registry can promote over migrated history
        registry_rows = SqliteRepository(db).list_models()
        assert registry_rows == models

    def test_csv_workspace_migrates_in_place(self, tmp_path):
        directory = str(tmp_path / "csvrepo")
        shutil.copytree(os.path.join(FIXTURES, "csv"), directory)
        repo = CsvRepository(directory)
        models = repo.list_models()
        assert [m.model_id for m in models] == [1, 2]
        assert all(m.stage == STAGE_ACTIVE for m in models)
        with open(os.path.join(directory, "models.csv")) as fh:
            header = fh.readline().strip().split(",")
        assert "stage" in header and "provenance" in header

    def test_legacy_workspace_roundtrips_through_cli(self, tmp_path, capsys):
        """`chronus models list` over a pre-registry workspace."""
        workspace = str(tmp_path / "ws")
        os.makedirs(workspace)
        shutil.copy(
            os.path.join(FIXTURES, "data.db"),
            os.path.join(workspace, "chronus.db"),
        )
        rc = cli_main(["--workspace", workspace, "models", "list"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "active" in out and "linear-regression" in out
        rc = cli_main(
            ["--workspace", workspace, "models", "list", "--stage", "candidate"]
        )
        out = capsys.readouterr().out
        assert rc == 0 and "linear-regression" not in out
