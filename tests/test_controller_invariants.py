"""Randomised controller stress tests: global invariants under arbitrary
job streams.

Hypothesis drives random mixes of job sizes, node counts, time limits and
cancellations through the full controller and asserts the properties a
production scheduler must never violate:

* cores are never oversubscribed at any instant,
* every accepted job eventually reaches a terminal state,
* energy attribution is non-negative and additive,
* accounting has exactly one row per terminal job.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.slurm.batch_script import build_script
from repro.slurm.cluster import HPCG_BINARY, SimCluster
from repro.slurm.commands import parse_sbatch_output

job_strategy = st.lists(
    st.tuples(
        st.integers(1, 32),            # tasks per job
        st.sampled_from([1_500_000, 2_200_000, 2_500_000]),
        st.integers(1, 30),            # time limit minutes
        st.booleans(),                 # cancel this one right away?
    ),
    min_size=1,
    max_size=12,
)


def check_no_oversubscription(cluster: SimCluster) -> None:
    for node in cluster.nodes:
        assert len(node.allocated_core_ids()) <= node.total_cores
        used = sum(rw.workload.cores for rw in node.running_workloads())
        assert used == len(node.allocated_core_ids())


class TestRandomJobStreams:
    @settings(max_examples=25, deadline=None)
    @given(jobs=job_strategy, n_nodes=st.integers(1, 3), seed=st.integers(0, 99))
    def test_invariants_hold(self, jobs, n_nodes, seed):
        cluster = SimCluster(seed=seed, n_nodes=n_nodes, hpcg_duration_s=400.0)
        ids = []
        for tasks, freq, limit_min, cancel in jobs:
            script = build_script(
                tasks, freq, 1, HPCG_BINARY, time_limit=f"{limit_min}:00"
            )
            jid = parse_sbatch_output(cluster.commands.sbatch(script))
            ids.append(jid)
            check_no_oversubscription(cluster)
            if cancel:
                cluster.ctld.cancel(jid)
                check_no_oversubscription(cluster)

        # drain the simulation; every job must reach a terminal state
        cluster.sim.run_until_idle()
        for jid in ids:
            job = cluster.ctld.get_job(jid)
            assert job.state.is_terminal, f"job {jid} stuck in {job.state}"
            assert job.consumed_energy_j >= 0.0
        check_no_oversubscription(cluster)
        assert cluster.ctld.pending_jobs() == []
        assert cluster.ctld.running_jobs() == []

        # accounting: exactly one row per job, energy totals additive
        assert len(cluster.accounting) == len(ids)
        total = cluster.accounting.total_energy_j()
        assert total == pytest.approx(
            sum(cluster.ctld.get_job(j).consumed_energy_j for j in ids)
        )

    @settings(max_examples=10, deadline=None)
    @given(jobs=job_strategy, seed=st.integers(0, 20))
    def test_fifo_vs_backfill_complete_same_jobs(self, jobs, seed):
        """Both schedulers must finish the same job set (backfill changes
        order, never outcomes)."""
        from repro.slurm.config import SlurmConfig

        outcomes = {}
        for sched in ("sched/backfill", "sched/builtin"):
            cluster = SimCluster(
                seed=seed,
                config=SlurmConfig.parse(f"SchedulerType={sched}\n"),
                hpcg_duration_s=300.0,
            )
            ids = []
            for tasks, freq, limit_min, _ in jobs:
                script = build_script(
                    tasks, freq, 1, HPCG_BINARY, time_limit=f"{limit_min}:00"
                )
                ids.append(parse_sbatch_output(cluster.commands.sbatch(script)))
            cluster.sim.run_until_idle()
            outcomes[sched] = {
                jid: cluster.ctld.get_job(jid).state for jid in ids
            }
        assert outcomes["sched/backfill"] == outcomes["sched/builtin"]
