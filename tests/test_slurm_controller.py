"""Tests for slurmctld: lifecycle, scheduling, accounting, commands."""

import pytest

from repro.slurm.batch_script import build_script
from repro.slurm.cluster import HPCG_BINARY
from repro.slurm.commands import parse_sbatch_output
from repro.slurm.controller import SubmitError
from repro.slurm.job import JobDescriptor, JobState


def submit(cluster, script) -> int:
    return parse_sbatch_output(cluster.commands.sbatch(script))


class TestLifecycle:
    def test_job_runs_to_completion(self, cluster):
        job = cluster.submit_and_wait(
            build_script(32, 2_500_000, 1, HPCG_BINARY, job_name="std")
        )
        assert job.state is JobState.COMPLETED
        assert job.exit_code == 0
        assert job.elapsed_s == pytest.approx(18 * 60 + 29, rel=0.03)
        assert "GFLOP/s rating" in job.stdout

    def test_energy_attributed(self, cluster):
        job = cluster.submit_and_wait(build_script(32, 2_500_000, 1, HPCG_BINARY))
        # ~218 W for ~1109 s ~ 242 kJ
        assert job.consumed_energy_j == pytest.approx(242_000, rel=0.05)

    def test_timeout_kills_job(self, cluster):
        script = build_script(32, 2_500_000, 1, HPCG_BINARY, time_limit="0:01:00")
        job = cluster.submit_and_wait(script)
        assert job.state is JobState.TIMEOUT
        assert job.elapsed_s == pytest.approx(60.0)
        assert "TIME LIMIT" in job.stdout

    def test_unknown_binary_fails_fast(self, cluster):
        script = "#!/bin/bash\n#SBATCH --ntasks=1\nsrun /bin/unknown-app\n"
        job_id = submit(cluster, script)
        job = cluster.ctld.get_job(job_id)
        assert job.state is JobState.FAILED
        assert job.exit_code == 127

    def test_cancel_pending(self, cluster):
        submit(cluster, build_script(32, 2_500_000, 1, HPCG_BINARY))
        j2 = submit(cluster, build_script(32, 2_500_000, 1, HPCG_BINARY))
        assert cluster.ctld.get_job(j2).state is JobState.PENDING
        cluster.ctld.cancel(j2)
        assert cluster.ctld.get_job(j2).state is JobState.CANCELLED

    def test_cancel_running_frees_node(self, cluster):
        j1 = submit(cluster, build_script(32, 2_500_000, 1, HPCG_BINARY))
        assert cluster.node.free_cores() == 0
        cluster.ctld.cancel(j1)
        assert cluster.node.free_cores() == 32
        assert cluster.ctld.get_job(j1).state is JobState.CANCELLED

    def test_cancel_unblocks_queue(self, cluster):
        j1 = submit(cluster, build_script(32, 2_500_000, 1, HPCG_BINARY))
        j2 = submit(cluster, build_script(32, 2_200_000, 1, HPCG_BINARY))
        cluster.ctld.cancel(j1)
        assert cluster.ctld.get_job(j2).state is JobState.RUNNING

    def test_cancel_terminal_is_noop(self, cluster):
        job = cluster.submit_and_wait(build_script(4, 2_200_000, 1, HPCG_BINARY))
        cluster.ctld.cancel(job.job_id)
        assert job.state is JobState.COMPLETED

    def test_sequential_jobs_share_node(self, cluster):
        j1 = submit(cluster, build_script(32, 2_500_000, 1, HPCG_BINARY))
        j2 = submit(cluster, build_script(32, 2_200_000, 1, HPCG_BINARY))
        job2 = cluster.ctld.wait_for_job(j2)
        job1 = cluster.ctld.get_job(j1)
        assert job1.state is JobState.COMPLETED
        assert job2.start_time == pytest.approx(job1.end_time)

    def test_parallel_jobs_when_cores_allow(self, cluster):
        j1 = submit(cluster, build_script(16, 2_200_000, 1, HPCG_BINARY))
        j2 = submit(cluster, build_script(16, 2_200_000, 1, HPCG_BINARY))
        assert cluster.ctld.get_job(j1).state is JobState.RUNNING
        assert cluster.ctld.get_job(j2).state is JobState.RUNNING

    def test_submit_validation_errors(self, cluster):
        with pytest.raises(SubmitError, match="exceeds"):
            cluster.ctld.submit(JobDescriptor(num_tasks=64, binary=HPCG_BINARY))

    def test_unknown_job_id(self, cluster):
        with pytest.raises(KeyError):
            cluster.ctld.get_job(42)
        with pytest.raises(KeyError):
            cluster.ctld.wait_for_job(42)


class TestPluginWiring:
    def test_register_requires_conf_entry(self, cluster):
        from repro.slurm.plugins.eco import JobSubmitEco

        plugin = JobSubmitEco(cluster.node, provider=None)  # type: ignore[arg-type]
        with pytest.raises(ValueError, match="not enabled"):
            cluster.ctld.register_plugin(plugin)


class TestCommands:
    def test_sbatch_output_shape(self, cluster):
        out = cluster.commands.sbatch(build_script(4, 2_200_000, 1, HPCG_BINARY))
        assert out.startswith("Submitted batch job ")
        assert parse_sbatch_output(out) == 1

    def test_parse_sbatch_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_sbatch_output("error: something")

    def test_squeue_shows_running_and_pending(self, cluster):
        submit(cluster, build_script(32, 2_500_000, 1, HPCG_BINARY, job_name="first"))
        submit(cluster, build_script(32, 2_500_000, 1, HPCG_BINARY, job_name="second"))
        text = cluster.commands.squeue()
        assert " R " in text
        assert "PD" in text
        assert "(Resources)" in text
        assert "first" in text and "second" in text

    def test_sinfo_states(self, cluster):
        assert "idle" in cluster.commands.sinfo()
        submit(cluster, build_script(32, 2_500_000, 1, HPCG_BINARY))
        assert "alloc" in cluster.commands.sinfo()

    def test_sinfo_mix(self, cluster):
        submit(cluster, build_script(4, 2_500_000, 1, HPCG_BINARY))
        assert "mix" in cluster.commands.sinfo()

    def test_scontrol_show_job(self, cluster):
        jid = submit(
            cluster,
            build_script(28, 2_200_000, 2, HPCG_BINARY, comment="chronus"),
        )
        text = cluster.commands.scontrol_show_job(jid)
        assert f"JobId={jid}" in text
        assert "NumTasks=28" in text
        assert "ThreadsPerCore=2" in text
        assert "CpuFreqMin=2200000" in text
        assert "Comment=chronus" in text

    def test_sacct_shows_energy(self, cluster):
        cluster.submit_and_wait(build_script(32, 2_500_000, 1, HPCG_BINARY))
        text = cluster.commands.sacct()
        assert "COMPLETED" in text
        assert "ConsumedEnergy" in text

    def test_scancel(self, cluster):
        jid = submit(cluster, build_script(4, 2_200_000, 1, HPCG_BINARY))
        cluster.commands.scancel(jid)
        assert cluster.ctld.get_job(jid).state is JobState.CANCELLED


class TestAccounting:
    def test_record_fields(self, cluster):
        job = cluster.submit_and_wait(
            build_script(28, 2_200_000, 2, HPCG_BINARY, job_name="acct")
        )
        rec = cluster.accounting.get(job.job_id)
        assert rec.state == "COMPLETED"
        assert rec.num_tasks == 28
        assert rec.threads_per_core == 2
        assert rec.cpu_freq_min == 2_200_000
        assert rec.energy_j > 0
        assert rec.elapsed_s == pytest.approx(job.elapsed_s)
        assert rec.wait_s == pytest.approx(0.0)

    def test_by_state_and_totals(self, cluster):
        cluster.submit_and_wait(build_script(4, 2_200_000, 1, HPCG_BINARY))
        assert len(cluster.accounting.by_state(JobState.COMPLETED)) == 1
        assert cluster.accounting.total_energy_j() > 0
        assert len(cluster.accounting) == 1

    def test_get_unknown(self, cluster):
        with pytest.raises(KeyError):
            cluster.accounting.get(9)
