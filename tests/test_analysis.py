"""Tests for metrics, tables, related-work comparison and calibration."""

import pytest
from hypothesis import given, strategies as st

from repro.analysis.comparison import (
    Table3Row,
    build_table3,
    related_work_reduction_pct,
)
from repro.analysis.metrics import (
    average,
    energy_joules,
    gflops_per_watt,
    percentage_difference,
)
from repro.analysis.tables import TextTable


class TestMetrics:
    def test_gflops_per_watt(self):
        assert gflops_per_watt(9.34829, 216.6) == pytest.approx(0.04316, abs=1e-4)

    def test_gflops_per_watt_validation(self):
        with pytest.raises(ValueError):
            gflops_per_watt(1.0, 0.0)
        with pytest.raises(ValueError):
            gflops_per_watt(-1.0, 10.0)

    def test_energy_trapezoid(self):
        # constant 100 W for 10 s = 1000 J
        assert energy_joules([0, 5, 10], [100, 100, 100]) == pytest.approx(1000)
        # ramp 0 -> 100 W over 10 s = 500 J
        assert energy_joules([0, 10], [0, 100]) == pytest.approx(500)

    def test_energy_edge_cases(self):
        assert energy_joules([], []) == 0.0
        assert energy_joules([1.0], [50.0]) == 0.0

    def test_energy_validation(self):
        with pytest.raises(ValueError):
            energy_joules([0, 0], [1, 1])  # non-increasing
        with pytest.raises(ValueError):
            energy_joules([0, 1], [1, 1, 1])

    def test_average(self):
        assert average([1.0, 2.0, 3.0]) == 2.0
        with pytest.raises(ValueError):
            average([])

    def test_percentage_difference_eq1(self):
        """The paper's Equation 1: |258 - 273.4| / 258 = 5.96%."""
        assert percentage_difference(258.0, 273.4) == pytest.approx(5.96, abs=0.02)

    def test_percentage_difference_validation(self):
        with pytest.raises(ValueError):
            percentage_difference(0.0, 100.0)

    @given(
        w=st.floats(min_value=1.0, max_value=1e4),
        n=st.integers(2, 50),
        dt=st.floats(min_value=0.1, max_value=100.0),
    )
    def test_constant_power_energy_property(self, w, n, dt):
        times = [i * dt for i in range(n)]
        watts = [w] * n
        assert energy_joules(times, watts) == pytest.approx(w * dt * (n - 1), rel=1e-9)


class TestTextTable:
    def test_render_alignment(self):
        table = TextTable(["A", "Bee"], title="T")
        table.add_row(1, 2.5)
        table.add_row("long-value", True)
        text = table.render()
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "A" in lines[1] and "Bee" in lines[1]
        assert "long-value" in text
        assert "t" in text  # bool rendered as paper's t/f

    def test_row_width_validation(self):
        table = TextTable(["A"])
        with pytest.raises(ValueError):
            table.add_row(1, 2)

    def test_needs_columns(self):
        with pytest.raises(ValueError):
            TextTable([])


class TestRelatedWorkComparison:
    def test_equation2(self):
        """106% improvement -> 5.66% reduction, the paper's Equation 2."""
        assert related_work_reduction_pct(106.0) == pytest.approx(5.66, abs=0.01)

    def test_no_improvement_no_reduction(self):
        assert related_work_reduction_pct(100.0) == pytest.approx(0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            related_work_reduction_pct(0.0)

    def test_build_table3(self):
        rows = build_table3(18.0, 11.0)
        assert rows[0] == Table3Row("Eco", 18.0, 11.0)
        assert rows[1].cpu_reduction_pct is None
        assert rows[1].system_reduction_pct == pytest.approx(5.66, abs=0.01)


class TestCalibration:
    def test_spearman_of_reference_against_itself(self):
        from repro.analysis.calibration import spearman_rho
        from repro.hpcg import reference

        perfect = {
            (p.cores, p.freq_ghz, p.hyperthread): p.gflops_per_watt
            for p in reference.GFLOPS_PER_WATT
        }
        assert spearman_rho(perfect) == pytest.approx(1.0)

    def test_shipped_models_rank_like_the_paper(self):
        from repro.analysis.calibration import predicted_efficiency, spearman_rho
        from repro.hardware.cpu import AMD_EPYC_7502P
        from repro.hardware.power import PowerModel
        from repro.hpcg.performance_model import HpcgPerformanceModel

        predicted = predicted_efficiency(HpcgPerformanceModel(), PowerModel(AMD_EPYC_7502P))
        assert spearman_rho(predicted) > 0.93

    def test_shipped_models_pick_the_papers_winner(self):
        from repro.analysis.calibration import predicted_efficiency
        from repro.hardware.cpu import AMD_EPYC_7502P
        from repro.hardware.power import PowerModel
        from repro.hpcg import reference
        from repro.hpcg.performance_model import HpcgPerformanceModel

        predicted = predicted_efficiency(HpcgPerformanceModel(), PowerModel(AMD_EPYC_7502P))
        assert max(predicted, key=predicted.get) == reference.BEST_CONFIG

    def test_steady_state_point_consistency(self):
        from repro.analysis.calibration import steady_state_point
        from repro.hardware.cpu import AMD_EPYC_7502P
        from repro.hardware.power import PowerModel
        from repro.hardware.thermal import ThermalParams
        from repro.hpcg.performance_model import HpcgPerformanceModel

        sp = steady_state_point(
            32, 2.5, False, HpcgPerformanceModel(), PowerModel(AMD_EPYC_7502P), ThermalParams()
        )
        assert sp.sys_w > sp.cpu_w
        assert sp.efficiency == pytest.approx(sp.gflops / sp.sys_w)
        # temperature consistent with the thermal model's steady state
        assert sp.temp_c == pytest.approx(ThermalParams().steady_state_c(sp.cpu_w))
