"""Failure injection and determinism: production-credibility tests.

An energy optimizer must never take the cluster down (the eco plugin's
failure policy) and must never corrupt its own data on partial failures.
"""

import os

import pytest

from repro.core.application.benchmark_service import BenchmarkService
from repro.core.domain.configuration import Configuration
from repro.core.domain.errors import ChronusError, OptimizerError, SettingsError
from repro.core.factory import ChronusApp
from repro.core.repositories.memory_repository import MemoryRepository
from repro.core.runners.hpcg_runner import HpcgRunner
from repro.core.services.ipmi_service import IpmiSystemService
from repro.core.services.lscpu_info import LscpuSystemInfo
from repro.slurm.batch_script import build_script
from repro.slurm.cluster import HPCG_BINARY, SimCluster
from repro.slurm.commands import parse_sbatch_output
from repro.slurm.config import SlurmConfig

SMALL_SWEEP = [Configuration(32, 1, f) for f in (2_200_000, 2_500_000)]


class TestIpmiFailureMidSweep:
    def test_denied_ipmi_aborts_without_partial_rows(self, sweep_cluster):
        repo = MemoryRepository()
        service = BenchmarkService(
            repo,
            HpcgRunner(sweep_cluster, HPCG_BINARY),
            IpmiSystemService(sweep_cluster.ipmi, clock=lambda: sweep_cluster.sim.now),
            LscpuSystemInfo(sweep_cluster.node),
        )
        # access revoked mid-campaign (e.g. /dev/ipmi0 permissions reset)
        sweep_cluster.ipmi.chmod_device(False)
        with pytest.raises(ChronusError, match="IPMI access denied"):
            service.run_benchmarks(SMALL_SWEEP, clock=lambda: sweep_cluster.sim.now)
        # the aborted configuration left no half-written benchmark row
        assert repo.benchmarks_for_system(1) == []


class TestFailedJobsMidSweep:
    def test_unknown_binary_yields_empty_results_not_crash(self, sweep_cluster):
        repo = MemoryRepository()
        service = BenchmarkService(
            repo,
            HpcgRunner(sweep_cluster, "/opt/unknown/app"),
            IpmiSystemService(sweep_cluster.ipmi, clock=lambda: sweep_cluster.sim.now),
            LscpuSystemInfo(sweep_cluster.node),
        )
        results = service.run_benchmarks(
            SMALL_SWEEP, clock=lambda: sweep_cluster.sim.now
        )
        assert results == []
        assert repo.benchmarks_for_system(1) == []

    def test_timeout_job_skipped_but_sweep_continues(self, cluster):
        """A configuration whose run exceeds the runner's time limit is
        recorded as failed and skipped; the rest of the sweep completes."""
        repo = MemoryRepository()
        runner = HpcgRunner(cluster, HPCG_BINARY, time_limit="0:10:00")  # < ~19 min runs
        service = BenchmarkService(
            repo, runner,
            IpmiSystemService(cluster.ipmi, clock=lambda: cluster.sim.now),
            LscpuSystemInfo(cluster.node),
        )
        results = service.run_benchmarks(SMALL_SWEEP, clock=lambda: cluster.sim.now)
        assert results == []  # every full run outlives 10 minutes
        assert all(r.state == "TIMEOUT" for r in cluster.accounting.all())


class TestCorruptArtifacts:
    def test_corrupt_settings_raise_settings_error(self, tmp_path):
        from repro.core.storage.etc_storage import EtcStorage

        etc = EtcStorage(str(tmp_path))
        with open(etc.settings_path, "w") as fh:
            fh.write('{"plugin_state": "always"}')  # invalid state value
        with pytest.raises(SettingsError):
            etc.load()

    def test_corrupt_model_on_disk_leaves_jobs_unmodified(self, tmp_path):
        """The pre-loaded model file gets corrupted; the plugin must still
        let submissions through untouched."""
        cluster = SimCluster(
            seed=3, config=SlurmConfig.parse("JobSubmitPlugins=eco\n"),
            hpcg_duration_s=300.0,
        )
        app = ChronusApp(cluster, str(tmp_path / "ws"))
        app.benchmark_service.run_benchmarks(SMALL_SWEEP, clock=app.clock)
        meta = app.init_model_service.run("brute-force", 1)
        _, local_path = app.load_model_service.run(meta.model_id)
        app.enable_eco_plugin()
        with open(local_path, "w") as fh:
            fh.write("corrupted bytes")
        script = build_script(8, 2_500_000, 1, HPCG_BINARY, comment="chronus")
        job_id = parse_sbatch_output(cluster.commands.sbatch(script))
        job = cluster.ctld.get_job(job_id)
        assert job.descriptor.num_tasks == 8  # untouched
        assert not job.state.is_terminal or job.state.value == "RUNNING"

    def test_corrupt_model_raises_for_direct_callers(self, tmp_path):
        cluster = SimCluster(seed=3, hpcg_duration_s=300.0)
        app = ChronusApp(cluster, str(tmp_path / "ws"))
        app.benchmark_service.run_benchmarks(SMALL_SWEEP, clock=app.clock)
        meta = app.init_model_service.run("brute-force", 1)
        _, local_path = app.load_model_service.run(meta.model_id)
        with open(local_path, "w") as fh:
            fh.write("not json")
        with pytest.raises(OptimizerError, match="corrupt"):
            app.slurm_config_service.run(1)

    def test_missing_blob_raises_model_not_found(self, tmp_path):
        from repro.core.domain.errors import ModelNotFoundError

        cluster = SimCluster(seed=3, hpcg_duration_s=300.0)
        app = ChronusApp(cluster, str(tmp_path / "ws"))
        app.benchmark_service.run_benchmarks(SMALL_SWEEP, clock=app.clock)
        meta = app.init_model_service.run("brute-force", 1)
        os.remove(meta.blob_path)
        with pytest.raises(ModelNotFoundError):
            app.load_model_service.run(meta.model_id)


class TestDeterminism:
    def test_same_seed_same_sweep(self):
        def sweep(seed):
            cluster = SimCluster(seed=seed, hpcg_duration_s=300.0)
            repo = MemoryRepository()
            service = BenchmarkService(
                repo, HpcgRunner(cluster, HPCG_BINARY),
                IpmiSystemService(cluster.ipmi, clock=lambda: cluster.sim.now),
                LscpuSystemInfo(cluster.node),
            )
            return service.run_benchmarks(SMALL_SWEEP, clock=lambda: cluster.sim.now)

        a = sweep(77)
        b = sweep(77)
        assert [(r.gflops, r.avg_system_w) for r in a] == [
            (r.gflops, r.avg_system_w) for r in b
        ]

    def test_different_seed_different_noise(self):
        def one(seed):
            cluster = SimCluster(seed=seed, hpcg_duration_s=300.0)
            repo = MemoryRepository()
            service = BenchmarkService(
                repo, HpcgRunner(cluster, HPCG_BINARY),
                IpmiSystemService(cluster.ipmi, clock=lambda: cluster.sim.now),
                LscpuSystemInfo(cluster.node),
            )
            return service.run_benchmarks(
                SMALL_SWEEP[:1], clock=lambda: cluster.sim.now
            )[0]

        assert one(1).gflops != one(2).gflops
