"""Tests for HPL and per-binary model dispatch (paper limitations
6.1.2/6.1.3 fixed).

HPL is compute-bound: its energy-optimal configuration (max frequency,
TDP-capped) differs from HPCG's (2.2 GHz).  With both applications
benchmarked and their models loaded, the eco plugin must rewrite each
job according to *its own* binary.
"""

import pytest

from repro.core.application.benchmark_service import BenchmarkService
from repro.core.domain.configuration import Configuration
from repro.core.factory import ChronusApp
from repro.core.runners.hpl_runner import HplRunner
from repro.hpl import HPL_BINARY
from repro.hpl.model import HplPerformanceModel
from repro.hpl.workload import HplWorkload
from repro.slurm.batch_script import build_script
from repro.slurm.cluster import HPCG_BINARY, SimCluster
from repro.slurm.commands import parse_sbatch_output
from repro.slurm.config import SlurmConfig

SWEEP = [
    Configuration(c, t, f)
    for c in (16, 32)
    for f in (1_500_000, 2_200_000, 2_500_000)
    for t in (1, 2)
]


class TestHplModel:
    def test_compute_bound_scaling(self):
        m = HplPerformanceModel()
        g22 = m.gflops(32, 2_200_000, 1)
        g25 = m.gflops(32, 2_500_000, 1)
        # near-linear in frequency (unlike HPCG's 2% gain)
        assert g25 / g22 == pytest.approx(2.5 / 2.2, rel=0.01)

    def test_plausible_peak_fraction(self):
        m = HplPerformanceModel()
        g = m.gflops(32, 2_500_000, 1)
        peak = 32 * 2.5 * 16  # AVX2 FMA peak of the part
        assert 0.6 < g / peak < 0.85

    def test_ht_does_not_help(self):
        m = HplPerformanceModel()
        assert m.gflops(32, 2_500_000, 2) < m.gflops(32, 2_500_000, 1)

    def test_validation(self):
        m = HplPerformanceModel()
        with pytest.raises(ValueError):
            m.gflops(0, 2_500_000)
        with pytest.raises(ValueError):
            m.gflops(4, 2_500_000, 4)


class TestHplWorkloadOnNode:
    def test_tdp_cap_engages(self, cluster):
        """Full-tilt HPL drives the package into its 180 W limit."""
        wl = HplWorkload(32, 1, 2_500_000)
        cluster.node.start_workload(wl, freq_min_khz=2_500_000, freq_max_khz=2_500_000)
        cluster.sim.call_at(300.0, lambda: None)
        cluster.sim.run()
        bd = cluster.node.instantaneous_power()
        assert bd.cpu_w == pytest.approx(cluster.node.spec.tdp_watts, abs=1.0)

    def test_capped_power_equal_across_top_freqs(self, cluster):
        """2.2 and 2.5 GHz both saturate the cap -> same package power,
        which is why max frequency wins for HPL."""
        powers = {}
        for freq in (2_200_000, 2_500_000):
            h = cluster.node.start_workload(
                HplWorkload(32, 1, freq), freq_min_khz=freq, freq_max_khz=freq
            )
            powers[freq] = cluster.node.instantaneous_power().cpu_w
            cluster.node.stop_workload(h)
        assert powers[2_200_000] == pytest.approx(powers[2_500_000], rel=0.01)

    def test_output_parsable_by_runner(self):
        from repro.core.runners.hpcg_runner import parse_hpcg_rating

        wl = HplWorkload(32, 1, 2_500_000)
        assert parse_hpcg_rating(wl.render_output()) == pytest.approx(
            wl.rating_gflops, abs=1e-4
        )


@pytest.fixture
def dual_app(tmp_path):
    """Cluster + ChronusApp with models for BOTH applications loaded."""
    cluster = SimCluster(
        seed=15,
        config=SlurmConfig.parse("JobSubmitPlugins=eco\n"),
        hpcg_duration_s=300.0,
    )
    app = ChronusApp(cluster, str(tmp_path / "ws"))
    app.register_binary(HPL_BINARY, "hpl")

    # benchmark HPCG
    app.benchmark_service.run_benchmarks(SWEEP, clock=app.clock)
    # benchmark HPL through the second runner implementation
    hpl_bench = BenchmarkService(
        app.repository,
        HplRunner(cluster),
        app.system_service,
        app.system_info,
        sample_interval_s=3.0,
    )
    hpl_bench.run_benchmarks(SWEEP, clock=app.clock)

    hpcg_model = app.init_model_service.run("brute-force", 1, application="hpcg")
    hpl_model = app.init_model_service.run("brute-force", 1, application="hpl")
    app.load_model_service.run(hpcg_model.model_id)
    app.load_model_service.run(hpl_model.model_id)
    app.enable_eco_plugin()
    cluster.hpcg_duration_s = None
    return cluster, app


class TestPerBinaryDispatch:
    def test_different_optimal_configs(self, dual_app):
        _, app = dual_app
        hpcg_rows = app.repository.benchmarks_for_system(1, "hpcg")
        hpl_rows = app.repository.benchmarks_for_system(1, "hpl")
        hpcg_best = max(hpcg_rows, key=lambda r: r.gflops_per_watt).configuration
        hpl_best = max(hpl_rows, key=lambda r: r.gflops_per_watt).configuration
        assert hpcg_best.frequency == 2_200_000
        assert hpl_best.frequency == 2_500_000

    def test_plugin_rewrites_per_binary(self, dual_app):
        cluster, _ = dual_app
        hpcg_id = parse_sbatch_output(cluster.commands.sbatch(
            build_script(8, 1_500_000, 2, HPCG_BINARY, comment="chronus")
        ))
        hpcg_job = cluster.ctld.get_job(hpcg_id)
        cluster.ctld.cancel(hpcg_id)
        hpl_id = parse_sbatch_output(cluster.commands.sbatch(
            build_script(8, 1_500_000, 2, HPL_BINARY, comment="chronus")
        ))
        hpl_job = cluster.ctld.get_job(hpl_id)

        assert hpcg_job.descriptor.cpu_freq_max == 2_200_000
        assert hpl_job.descriptor.cpu_freq_max == 2_500_000
        assert hpcg_job.descriptor.num_tasks == 32
        assert hpl_job.descriptor.num_tasks == 32

    def test_sacct_shows_both_applications(self, dual_app):
        cluster, _ = dual_app
        assert len(cluster.accounting.all()) == 2 * len(SWEEP)

    def test_settings_hold_both_models(self, dual_app):
        _, app = dual_app
        settings = app.local_storage.load()
        assert settings.loaded_model_for(1, "hpcg") is not None
        assert settings.loaded_model_for(1, "hpl") is not None
        assert (
            settings.loaded_model_for(1, "hpcg")["path"]
            != settings.loaded_model_for(1, "hpl")["path"]
        )

    def test_binary_alias_roundtrip(self, dual_app):
        from repro.core.domain.settings import ChronusSettings
        from repro.slurm.plugins.chash import simple_hash

        _, app = dual_app
        settings = app.local_storage.load()
        again = ChronusSettings.from_json(settings.to_json())
        assert again.application_for_binary(simple_hash(HPL_BINARY)) == "hpl"
        assert again.application_for_binary(simple_hash(HPCG_BINARY)) == "hpcg"
        assert again.application_for_binary("unknown") is None

    def test_alias_validation(self):
        from repro.core.domain.settings import ChronusSettings

        with pytest.raises(ValueError):
            ChronusSettings().with_binary_alias(123, "")
