"""HA control plane: fenced failover, zombie rejection, idempotent accounting.

The headline drill is the ISSUE's acceptance scenario: a two-peer
slurmctld pair serving a submit storm, the leader SIGKILL'd mid-storm —
**zero jobs lost, zero duplicated**, accounting bit-consistent between
the controller and the journal-fed slurmdbd.
"""

import pytest

from repro import faults, telemetry
from repro.core.domain.errors import ControllerCrashError, StaleEpochError
from repro.slurm.accounting import AccountingDatabase, JobRecord
from repro.slurm.cluster import HPCG_BINARY, SimCluster
from repro.slurm.controller import Slurmctld
from repro.slurm.dbd import SlurmDbd
from repro.slurm.ha import HaControlPlane, SlurmctldPeer, run_failover_drill
from repro.slurm.job import JobDescriptor
from repro.slurm.statesave import StateSave


def _metric(name: str) -> float:
    from repro.faults.scenarios import metric_total

    return metric_total(telemetry.snapshot(), name)


class TestFailoverDrill:
    def test_sigkill_leader_zero_lost_zero_duplicated(self, tmp_path):
        report = run_failover_drill(
            jobs=40, statesave_path=str(tmp_path), kill_at_fraction=0.5
        )
        assert report.ok, report.render()
        assert report.submitted == 40
        assert report.completed == 40
        assert report.lost == 0
        assert report.duplicated == 0
        assert report.takeovers == 1
        assert report.replayed_records > 0
        assert report.dbd_rows == report.accounting_rows == 40

    def test_no_kill_baseline_never_fails_over(self, tmp_path):
        report = run_failover_drill(
            jobs=20, statesave_path=str(tmp_path), kill_at_fraction=None
        )
        assert report.ok, report.render()
        assert report.takeovers == 0
        assert report.retries == 0
        assert report.completed == 20

    def test_drill_under_fault_profile(self, tmp_path):
        # the registered chaos profile: crash + torn-write + partition
        report = run_failover_drill(
            jobs=40,
            statesave_path=str(tmp_path),
            kill_at_fraction=0.5,
            fault_profile="ctld.crash=0.02:1,journal.torn_write=0.02:1,peer.partition=0.05",
            snapshot_interval=15,
        )
        assert report.ok, report.render()
        assert report.takeovers >= 1
        assert report.completed == 40

    def test_durable_submit_with_lost_ack_survives_takeover(self, tmp_path):
        # ctld.crash fires AFTER the append is durable: the ack is lost
        # but the record is not — the new leader must restore the job, so
        # the client's by-name recheck dedups the retry instead of
        # resubmitting
        ss = StateSave(str(tmp_path), fsync=False)
        cluster = SimCluster(statesave=ss, hpcg_duration_s=30)
        faults.configure("ctld.crash=1:1", seed=0)
        try:
            with pytest.raises(ControllerCrashError):
                cluster.ctld.submit(
                    JobDescriptor(name="retry-me", num_tasks=4, binary=HPCG_BINARY)
                )
        finally:
            faults.reset()
        assert cluster.ctld.halted
        new_epoch = ss.bump_epoch()
        ss.recover()
        fresh = SimCluster(hpcg_duration_s=30)
        restored = Slurmctld.restore(
            fresh.sim, fresh.ctld.config, fresh.ctld.nodes, ss,
            epoch=new_epoch, attach=False,
        )
        names = [j.descriptor.name for j in restored.jobs.values()]
        assert names.count("retry-me") == 1


class TestZombieFencing:
    def _pair(self, tmp_path):
        ss = StateSave(str(tmp_path), fsync=False)
        cluster = SimCluster(statesave=ss, hpcg_duration_s=30)
        return ss, cluster

    def test_fenced_submit_raises_and_halts(self, tmp_path):
        ss, cluster = self._pair(tmp_path)
        before = _metric("ha_fenced_writes_total")
        ss.bump_epoch()  # a peer took over behind our back
        with pytest.raises(StaleEpochError):
            cluster.ctld.submit(
                JobDescriptor(name="zombie", num_tasks=4, binary=HPCG_BINARY)
            )
        assert cluster.ctld.halted
        assert _metric("ha_fenced_writes_total") > before
        # the zombie's journal never saw the rejected submit
        assert all(r.type == "genesis" for r in ss.read_records())

    def test_peer_demotes_when_lease_renewal_is_fenced(self, tmp_path):
        ss = StateSave(str(tmp_path), fsync=False)
        from repro.simkernel.engine import Simulator
        from repro.slurm.config import SlurmConfig
        from repro.slurm.ha import DRILL_BINARY, _drill_factory
        from repro.slurm.nodemgr import ApplicationRegistry, Slurmd
        from repro.hardware.node import SimulatedNode

        sim = Simulator()
        registry = ApplicationRegistry()
        registry.register(DRILL_BINARY, _drill_factory)
        slurmds = [Slurmd(SimulatedNode(sim, hostname="node001"), registry)]
        config = SlurmConfig(sched_defer=True)
        peer = SlurmctldPeer("ctld-a", sim, ss, config, slurmds)
        peer.start(as_leader=True)
        ss.bump_epoch()  # someone else fenced us
        sim.call_at(5.0, lambda: None)
        sim.run()
        assert peer.role == "fenced"
        plane = HaControlPlane([peer], ss)
        from repro.core.domain.errors import NoLeaderError

        with pytest.raises(NoLeaderError):
            plane.leader()


class TestDbdIdempotency:
    def _completed_cluster(self, tmp_path, n_jobs=3):
        ss = StateSave(str(tmp_path), fsync=False)
        cluster = SimCluster(statesave=ss, hpcg_duration_s=30)
        for i in range(n_jobs):
            cluster.ctld.submit(
                JobDescriptor(
                    name=f"acct-{i}", num_tasks=8, binary=HPCG_BINARY,
                    time_limit_s=600,
                )
            )
        cluster.sim.run()
        assert len(cluster.accounting) == n_jobs
        return ss, cluster

    def test_redelivered_finish_does_not_double_count_energy(self, tmp_path):
        ss, cluster = self._completed_cluster(tmp_path)
        dbd = SlurmDbd(ss)
        applied = dbd.pump()
        assert applied > 0
        rows = len(dbd.db)
        energy = dbd.db.total_energy_j()
        assert energy > 0.0
        assert energy == pytest.approx(cluster.accounting.total_energy_j())
        # at-least-once delivery: rewind the cursor and re-deliver EVERYTHING
        dbd.cursor = 0
        redelivered = dbd.pump()
        assert redelivered == applied
        assert dbd.duplicates_dropped >= rows
        assert len(dbd.db) == rows
        assert dbd.db.total_energy_j() == pytest.approx(energy)

    def test_dbd_bootstraps_from_snapshot_after_compaction(self, tmp_path):
        ss, cluster = self._completed_cluster(tmp_path)
        ss.write_snapshot(
            cluster.ctld.capture_state(), epoch=ss.epoch, time=cluster.sim.now
        )
        assert ss.compact() > 0
        # more work lands after the compaction point
        cluster.ctld.submit(
            JobDescriptor(
                name="acct-late", num_tasks=8, binary=HPCG_BINARY,
                time_limit_s=600,
            )
        )
        cluster.sim.run()
        late = SlurmDbd(ss)  # cursor 0 — the records it missed are gone
        late.pump()
        assert late.bootstraps == 1
        assert len(late.db) == len(cluster.accounting)
        assert late.db.total_energy_j() == pytest.approx(
            cluster.accounting.total_energy_j()
        )

    @staticmethod
    def _record(state: str, energy_j: float, end: "float | None") -> JobRecord:
        return JobRecord(
            job_id=1, name="a", state=state, submit_time=0.0, start_time=1.0,
            end_time=end, node="node001", num_tasks=4, threads_per_core=1,
            cpu_freq_min=0, cpu_freq_max=0, energy_j=energy_j, exit_code=0,
        )

    def test_apply_dedups_by_job_epoch_seq(self):
        db = AccountingDatabase()
        rec = self._record("COMPLETED", 100.0, end=2.0)
        assert db.apply(rec, epoch=0, seq=7) is True
        assert db.apply(rec, epoch=0, seq=7) is False  # exact re-delivery
        assert db.duplicates_dropped == 1
        assert db.total_energy_j() == 100.0
        # same event re-shipped by a new leader under a new epoch: the
        # (job_id, epoch, seq) key differs but the terminal guard holds
        assert db.apply(rec, epoch=1, seq=7) is False
        assert db.total_energy_j() == 100.0

    def test_terminal_row_never_regresses_to_running(self):
        db = AccountingDatabase()
        done = self._record("COMPLETED", 100.0, end=2.0)
        stale = self._record("RUNNING", 0.0, end=None)
        db.apply(done, epoch=0, seq=5)
        assert db.apply(stale, epoch=0, seq=3) is False  # late, out of order
        assert db.get(1).state == "COMPLETED"
        assert db.total_energy_j() == 100.0


class TestRestartedPeerSupervision:
    def test_killed_leader_restarts_as_backup_and_can_take_over_again(
        self, tmp_path
    ):
        # two takeovers in one drill: kill the original leader, then the
        # drill's supervision restarts it as backup; crash faults on the
        # journal can kill the second leader, handing leadership back
        report = run_failover_drill(
            jobs=30,
            statesave_path=str(tmp_path),
            kill_at_fraction=0.3,
            fault_profile="ctld.crash=0.05:2",
        )
        assert report.ok, report.render()
        assert report.takeovers >= 1
        assert report.completed == 30
