"""Tests for the calibrated roofline model and the HPCG workload."""

import pytest
from hypothesis import given, strategies as st

from repro.hpcg import reference
from repro.hpcg.performance_model import HpcgPerformanceModel, PAPER_TOTAL_FLOPS
from repro.hpcg.workload import HpcgWorkload
from repro.simkernel.random import RandomStreams


@pytest.fixture(scope="module")
def model() -> HpcgPerformanceModel:
    return HpcgPerformanceModel()


class TestRoofline:
    def test_fig1_anchor(self, model):
        """Standard config reproduces the paper's 9.34829 GFLOP/s (+-2%)."""
        assert model.gflops(32, 2_500_000, 1) == pytest.approx(
            reference.FIG1_GFLOPS, rel=0.02
        )

    def test_monotone_in_cores(self, model):
        values = [model.gflops(c, 2_500_000, 1) for c in range(1, 33)]
        assert values == sorted(values)

    def test_monotone_in_frequency(self, model):
        values = [model.gflops(16, f, 1) for f in (1_500_000, 2_200_000, 2_500_000)]
        assert values == sorted(values)

    def test_below_both_roofs(self, model):
        g = model.gflops(16, 2_200_000, 1)
        assert g < model.compute_roof_gflops(16, 2_200_000, 1)
        assert g < model.memory_roof_gflops(16, 1)

    def test_saturation_shape(self, model):
        """Going 16 -> 32 cores gains far less than 1 -> 17 (memory bound)."""
        low_gain = model.gflops(17, 2_500_000, 1) - model.gflops(1, 2_500_000, 1)
        high_gain = model.gflops(32, 2_500_000, 1) - model.gflops(16, 2_500_000, 1)
        assert high_gain < 0.45 * low_gain

    def test_table1_performance_ratios(self, model):
        """Relative GFLOP/s of the key configs match Table 1 (+-0.05)."""
        std = model.gflops(32, 2_500_000, 1)
        for (c, f, ht), (_, perf_ratio) in reference.TABLE1_RELATIVE.items():
            g = model.gflops(c, int(f * 1e6), 2 if ht else 1)
            assert g / std == pytest.approx(perf_ratio, abs=0.05)

    def test_compute_fraction_in_unit_interval(self, model):
        for c in (1, 8, 32):
            cf = model.compute_fraction(c, 2_200_000, 1)
            assert 0.0 < cf < 1.0

    def test_bandwidth_consistent_with_ai(self, model):
        g = model.gflops(32, 2_500_000, 1)
        assert model.bandwidth_gbs(32, 2_500_000, 1) == pytest.approx(g / 0.25)

    def test_runtime_matches_table2(self, model):
        """Fixed-work runtime reproduces Table 2's 18:29 / ~18:47."""
        t_std = model.runtime_seconds(32, 2_500_000, 1)
        t_best = model.runtime_seconds(32, 2_200_000, 1)
        assert t_std == pytest.approx(18 * 60 + 29, rel=0.02)
        assert t_best == pytest.approx(18 * 60 + 47, rel=0.04)
        assert t_best > t_std

    def test_validation(self, model):
        with pytest.raises(ValueError):
            model.gflops(0, 2_500_000, 1)
        with pytest.raises(ValueError):
            model.gflops(4, 2_500_000, 3)

    def test_with_params_override(self, model):
        slower = model.with_params(kappa_flops_per_cycle=1.0)
        assert slower.gflops(4, 2_500_000, 1) < model.gflops(4, 2_500_000, 1)

    @given(
        cores=st.integers(1, 32),
        freq=st.sampled_from([1_500_000, 2_200_000, 2_500_000]),
        tpc=st.sampled_from([1, 2]),
    )
    def test_gflops_positive_finite(self, cores, freq, tpc):
        g = HpcgPerformanceModel().gflops(cores, freq, tpc)
        assert 0 < g < 50


class TestHtCrossover:
    def test_ht_loses_at_32_cores(self, model):
        assert model.gflops(32, 2_200_000, 1) > model.gflops(32, 2_200_000, 2)

    def test_memory_roof_penalised_by_ht_at_saturation(self, model):
        assert model.memory_roof_gflops(32, 2) < model.memory_roof_gflops(32, 1) * 1.001


class TestWorkload:
    def test_completion_mode_runtime(self):
        wl = HpcgWorkload(32, 1, 2_500_000)
        assert wl.runtime_s == pytest.approx(
            PAPER_TOTAL_FLOPS / (wl.rating_gflops * 1e9)
        )
        assert wl.completed_flops == PAPER_TOTAL_FLOPS

    def test_duration_mode(self):
        wl = HpcgWorkload(16, 1, 2_200_000, duration_s=1200.0)
        assert wl.runtime_s == 1200.0
        assert wl.completed_flops < PAPER_TOTAL_FLOPS

    def test_rating_noise_seeded(self):
        streams_a = RandomStreams(5)
        streams_b = RandomStreams(5)
        a = HpcgWorkload(8, 1, 2_200_000, streams=streams_a, run_tag="x")
        b = HpcgWorkload(8, 1, 2_200_000, streams=streams_b, run_tag="x")
        assert a.rating_gflops == b.rating_gflops
        c = HpcgWorkload(8, 1, 2_200_000, streams=streams_a, run_tag="y")
        assert c.rating_gflops != a.rating_gflops

    def test_setup_phase_draws_less(self):
        wl = HpcgWorkload(32, 1, 2_200_000)
        assert wl.compute_fraction(0.0) < wl.compute_fraction(wl.runtime_s / 2)
        assert wl.bandwidth_gbs(0.0) < wl.bandwidth_gbs(wl.runtime_s / 2)

    def test_oscillation_only_at_top_pstate(self):
        top = HpcgWorkload(32, 1, 2_500_000)
        mid = HpcgWorkload(32, 1, 2_200_000)
        t = top.setup_seconds + 30.0
        mods_top = {round(top.power_modulation(t + dt), 6) for dt in range(0, 42, 7)}
        mods_mid = {round(mid.power_modulation(t + dt), 6) for dt in range(0, 42, 7)}
        assert len(mods_top) > 1  # oscillating
        assert mods_mid == {1.0}  # flat

    def test_render_output_parsable(self):
        from repro.core.runners.hpcg_runner import parse_hpcg_rating

        wl = HpcgWorkload(32, 2, 2_500_000)
        assert parse_hpcg_rating(wl.render_output()) == pytest.approx(
            wl.rating_gflops, abs=1e-4
        )


class TestReferenceData:
    def test_point_count(self):
        assert len(reference.GFLOPS_PER_WATT) == 138

    def test_all_configurations_unique(self):
        keys = {(p.cores, p.freq_ghz, p.hyperthread) for p in reference.GFLOPS_PER_WATT}
        assert len(keys) == 138

    def test_sorted_descending(self):
        values = [p.gflops_per_watt for p in reference.GFLOPS_PER_WATT]
        assert values == sorted(values, reverse=True)

    def test_core_counts(self):
        assert len(reference.CORE_COUNTS) == 23
        assert reference.CORE_COUNTS[0] == 1
        assert reference.CORE_COUNTS[-1] == 32

    def test_lookup(self):
        p = reference.lookup(32, 2.2, False)
        assert p.gflops_per_watt == 0.048767
        with pytest.raises(KeyError):
            reference.lookup(13, 2.2, False)

    def test_best_and_standard_rows(self):
        best = reference.lookup(*reference.BEST_CONFIG)
        assert best.gflops_per_watt == max(
            p.gflops_per_watt for p in reference.GFLOPS_PER_WATT
        )

    def test_eq1_numbers(self):
        from repro.analysis.metrics import percentage_difference

        assert percentage_difference(
            reference.EQ1_IPMI_WATTS, reference.EQ1_WATTMETER_WATTS
        ) == pytest.approx(reference.EQ1_PERCENT_DIFFERENCE, abs=0.01)
