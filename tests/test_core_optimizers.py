"""Tests for all four optimizers: fit, predict, best-config, artifacts."""

import pytest

from repro.core.domain.configuration import Configuration
from repro.core.domain.errors import OptimizerError
from repro.core.optimizers import (
    OPTIMIZER_TYPES,
    BruteForceOptimizer,
    GeneticOptimizer,
    LinearRegressionOptimizer,
    RandomForestOptimizer,
    deserialize_optimizer,
    optimizer_from_name,
)

BEST = Configuration(32, 1, 2_200_000)
STANDARD = Configuration(32, 1, 2_500_000)

ALL_TYPES = [
    BruteForceOptimizer,
    LinearRegressionOptimizer,
    RandomForestOptimizer,
    GeneticOptimizer,
]


@pytest.fixture(params=ALL_TYPES, ids=lambda c: c.name())
def fitted(request, paper_rows):
    opt = request.param()
    opt.fit(paper_rows)
    return opt


class TestRegistry:
    def test_all_registered(self):
        assert set(OPTIMIZER_TYPES) >= {
            "brute-force",
            "linear-regression",
            "random-forest",
            "genetic",
        }

    def test_factory_dispatch(self):
        assert isinstance(optimizer_from_name("brute-force"), BruteForceOptimizer)

    def test_unknown_type(self):
        with pytest.raises(OptimizerError, match="Unknown optimizer type"):
            optimizer_from_name("neural-net")
        with pytest.raises(OptimizerError):
            deserialize_optimizer("neural-net", b"{}")


class TestCommonContract:
    def test_unfitted_raises(self, request):
        for cls in ALL_TYPES:
            opt = cls()
            with pytest.raises(OptimizerError, match="not fitted"):
                opt.predict_efficiency(BEST)
            with pytest.raises(OptimizerError):
                opt.best_configuration()
            with pytest.raises(OptimizerError):
                opt.serialize()

    def test_fit_on_empty_raises(self):
        for cls in ALL_TYPES:
            with pytest.raises(OptimizerError, match="zero benchmarks"):
                cls().fit([])

    def test_finds_paper_winner(self, fitted):
        """Every optimizer must recover (32, 2.2 GHz, no-HT) from the full
        sweep — the paper's headline result."""
        assert fitted.best_configuration() == BEST

    def test_predictions_positive(self, fitted, paper_rows):
        for row in paper_rows[:20]:
            assert fitted.predict_efficiency(row.configuration) > 0

    def test_best_beats_standard(self, fitted):
        assert fitted.predict_efficiency(BEST) > fitted.predict_efficiency(STANDARD)

    def test_training_configurations(self, fitted, paper_rows):
        configs = fitted.training_configurations()
        assert len(configs) == len({r.configuration for r in paper_rows})

    def test_serialize_roundtrip(self, fitted, paper_rows):
        data = fitted.serialize()
        again = type(fitted).deserialize(data)
        for row in paper_rows[::10]:
            assert again.predict_efficiency(row.configuration) == pytest.approx(
                fitted.predict_efficiency(row.configuration)
            )
        assert again.best_configuration() == fitted.best_configuration()

    def test_explicit_candidates(self, fitted):
        pool = [STANDARD, Configuration(16, 1, 1_500_000)]
        assert fitted.best_configuration(pool) == STANDARD

    def test_empty_candidates_raises(self, fitted):
        with pytest.raises(OptimizerError):
            fitted.best_configuration([])


class TestArtifactEnvelope:
    def test_rejects_wrong_format(self, paper_rows):
        with pytest.raises(OptimizerError, match="not a chronus optimizer"):
            BruteForceOptimizer.deserialize(b'{"format": "pickle"}')

    def test_rejects_wrong_type(self, paper_rows):
        opt = BruteForceOptimizer()
        opt.fit(paper_rows)
        data = opt.serialize()
        with pytest.raises(OptimizerError, match="expected 'linear-regression'"):
            LinearRegressionOptimizer.deserialize(data)

    def test_rejects_corrupt_bytes(self):
        with pytest.raises(OptimizerError, match="corrupt"):
            BruteForceOptimizer.deserialize(b"\xff\xfe garbage")

    def test_rejects_wrong_version(self, paper_rows):
        import json

        opt = BruteForceOptimizer()
        opt.fit(paper_rows)
        env = json.loads(opt.serialize())
        env["version"] = 99
        with pytest.raises(OptimizerError, match="version"):
            BruteForceOptimizer.deserialize(json.dumps(env).encode())

    def test_artifact_is_json_not_pickle(self, paper_rows):
        import json

        opt = RandomForestOptimizer(n_trees=3)
        opt.fit(paper_rows)
        env = json.loads(opt.serialize())
        assert env["format"] == "chronus-optimizer"
        assert env["type"] == "random-forest"
        assert "candidates" in env


class TestBruteForce:
    def test_exact_lookup(self, paper_rows):
        opt = BruteForceOptimizer()
        opt.fit(paper_rows)
        row = paper_rows[0]
        assert opt.predict_efficiency(row.configuration) == pytest.approx(
            row.gflops_per_watt
        )

    def test_cannot_extrapolate(self, paper_rows):
        opt = BruteForceOptimizer()
        opt.fit(paper_rows)
        with pytest.raises(OptimizerError, match="cannot extrapolate"):
            opt.predict_efficiency(Configuration(13, 1, 2_200_000))

    def test_repeated_measurements_averaged(self, paper_rows):
        doubled = list(paper_rows) + list(paper_rows)
        opt = BruteForceOptimizer()
        opt.fit(doubled)
        row = paper_rows[0]
        assert opt.predict_efficiency(row.configuration) == pytest.approx(
            row.gflops_per_watt
        )


class TestLinearRegression:
    def test_good_fit_on_smooth_surface(self, paper_rows):
        opt = LinearRegressionOptimizer()
        opt.fit(paper_rows)
        assert opt.r_squared(paper_rows) > 0.95

    def test_interpolates_unseen_config(self, paper_rows):
        opt = LinearRegressionOptimizer()
        opt.fit(paper_rows)
        # 13 cores was never measured; prediction must land between
        # neighbouring core counts
        e13 = opt.predict_efficiency(Configuration(13, 1, 2_200_000))
        e12 = opt.predict_efficiency(Configuration(12, 1, 2_200_000))
        e14 = opt.predict_efficiency(Configuration(14, 1, 2_200_000))
        assert min(e12, e14) * 0.95 < e13 < max(e12, e14) * 1.05

    def test_restore_validates_coefficient_count(self):
        import json

        env = {
            "format": "chronus-optimizer",
            "version": 1,
            "type": "linear-regression",
            "candidates": [],
            "payload": {"coefficients": [1.0, 2.0]},
        }
        with pytest.raises(OptimizerError, match="coefficients"):
            LinearRegressionOptimizer.deserialize(json.dumps(env).encode())


class TestRandomForest:
    def test_deterministic_given_seed(self, paper_rows):
        a = RandomForestOptimizer(n_trees=10, seed=7)
        b = RandomForestOptimizer(n_trees=10, seed=7)
        a.fit(paper_rows)
        b.fit(paper_rows)
        cfg = paper_rows[5].configuration
        assert a.predict_efficiency(cfg) == b.predict_efficiency(cfg)

    def test_seed_changes_predictions(self, paper_rows):
        a = RandomForestOptimizer(n_trees=10, seed=7)
        b = RandomForestOptimizer(n_trees=10, seed=8)
        a.fit(paper_rows)
        b.fit(paper_rows)
        cfg = Configuration(13, 1, 2_200_000)
        assert a.predict_efficiency(cfg) != b.predict_efficiency(cfg)

    def test_fit_quality(self, paper_rows):
        opt = RandomForestOptimizer()
        opt.fit(paper_rows)
        errors = [
            abs(opt.predict_efficiency(r.configuration) - r.gflops_per_watt)
            / r.gflops_per_watt
            for r in paper_rows
        ]
        assert sum(errors) / len(errors) < 0.05

    def test_param_validation(self):
        with pytest.raises(ValueError):
            RandomForestOptimizer(n_trees=0)

    def test_tree_validation(self):
        from repro.core.optimizers.random_forest import DecisionTree
        import numpy as np

        with pytest.raises(ValueError):
            DecisionTree(max_depth=0)
        with pytest.raises(ValueError):
            DecisionTree(min_samples_leaf=0)
        tree = DecisionTree()
        with pytest.raises(ValueError):
            tree.fit(np.zeros((0, 3)), np.zeros(0), np.random.default_rng(0))
        with pytest.raises(OptimizerError):
            tree.predict_one(np.zeros(3))

    def test_single_tree_on_constant_target(self):
        from repro.core.optimizers.random_forest import DecisionTree
        import numpy as np

        tree = DecisionTree()
        X = np.array([[1.0, 1.5, 0.0], [2.0, 2.2, 0.0]])
        y = np.array([5.0, 5.0])
        tree.fit(X, y, np.random.default_rng(0))
        assert tree.predict_one(np.array([1.5, 2.0, 0.0])) == 5.0
        assert tree.depth() == 0


class TestGenetic:
    def test_deterministic(self, paper_rows):
        a = GeneticOptimizer(seed=3)
        b = GeneticOptimizer(seed=3)
        a.fit(paper_rows)
        b.fit(paper_rows)
        assert a.best_configuration() == b.best_configuration()

    def test_finds_near_optimum_from_sparse_data(self, paper_rows):
        """Train on every other configuration; the GA's pick must still be
        within 5% of the global optimum's efficiency."""
        sparse = paper_rows[::2]
        opt = GeneticOptimizer(seed=1)
        opt.fit(sparse)
        best_cfg = opt.best_configuration()
        lookup = {r.configuration: r.gflops_per_watt for r in paper_rows}
        truth = max(lookup.values())
        # GA picks from the discrete space of its training values; score the
        # pick on the full table when available
        picked = lookup.get(best_cfg)
        assert picked is not None
        assert picked > 0.95 * truth

    def test_param_validation(self):
        with pytest.raises(ValueError):
            GeneticOptimizer(population=2)
        with pytest.raises(ValueError):
            GeneticOptimizer(mutation_rate=2.0)
        with pytest.raises(ValueError):
            GeneticOptimizer(population=8, elite=8)


class TestBatchParity:
    """The vectorized hot path must agree with the scalar path.

    ``best_configurations`` answers must be *bit-identical* to the scalar
    ``best_configuration`` — both select by argmax over one shared score
    vector, so equality here holds by construction and this test is the
    tripwire for anyone re-deriving scores per call.  Raw batch *values*
    may differ from scalar ones in final-ulp rounding (BLAS matmul), so
    they are compared with approx.
    """

    def test_batch_values_match_scalar(self, fitted, paper_rows):
        configs = [r.configuration for r in paper_rows[:25]]
        batch = fitted.predict_efficiency_batch(configs)
        assert batch.shape == (len(configs),)
        for got, cfg in zip(batch, configs):
            assert got == pytest.approx(fitted.predict_efficiency(cfg))

    def test_batch_of_empty(self, fitted):
        assert fitted.predict_efficiency_batch([]).shape == (0,)

    def test_array_api(self, fitted):
        import numpy as np

        freqs = [2_200_000, 2_500_000, 1_500_000]
        cores = [32, 16, 8]
        out = fitted.predict_batch(freqs, cores)
        configs = [Configuration(c, 1, f) for f, c in zip(freqs, cores)]
        assert np.array_equal(out, fitted.predict_efficiency_batch(configs))

    def test_array_api_length_mismatch(self, fitted):
        with pytest.raises(ValueError, match="equal-length"):
            fitted.predict_batch([2_200_000], [32, 16])

    def test_best_configurations_bit_identical(self, fitted):
        universe = fitted.training_configurations()
        pools = [
            None,
            universe,
            universe[::2],
            universe[::-1],
            [STANDARD, Configuration(16, 1, 1_500_000)],
            universe[:1],
        ]
        batched = fitted.best_configurations(pools)
        scalar = [fitted.best_configuration(pool) for pool in pools]
        assert batched == scalar

    def test_best_configurations_after_roundtrip(self, fitted):
        again = type(fitted).deserialize(fitted.serialize())
        pools = [None, fitted.training_configurations()[::3]]
        assert again.best_configurations(pools) == fitted.best_configurations(pools)

    def test_warm_covers_candidates_and_preserves_answer(self, fitted):
        before = fitted.best_configuration()
        clone = type(fitted).deserialize(fitted.serialize())
        covered = clone.warm()
        assert covered == len(clone.training_configurations())
        assert clone.best_configuration() == before

    def test_novel_pool_not_in_cache(self, fitted):
        """Pools containing configurations never seen at fit time must
        still be answered (cache-miss fallback scores them directly)."""
        novel = Configuration(2, 1, 1_500_000)
        pool = [STANDARD, novel]
        assert fitted.best_configurations([pool]) == [
            fitted.best_configuration(pool)
        ]
