"""Unit + property tests for the power and thermal models."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.hardware.cpu import AMD_EPYC_7502P
from repro.hardware.memory import SR650_MEMORY, MemorySpec
from repro.hardware.power import PowerModel
from repro.hardware.thermal import ThermalModel, ThermalParams


@pytest.fixture
def model() -> PowerModel:
    return PowerModel(AMD_EPYC_7502P)


class TestPowerModel:
    def test_idle_below_loaded(self, model):
        idle = model.idle_breakdown()
        loaded = model.breakdown(32, 1, 2_500_000, compute_fraction=0.1,
                                 bandwidth_gbs=37.0, cpu_temp_c=60.0)
        assert idle.system_w < loaded.system_w
        assert idle.cpu_w < loaded.cpu_w

    def test_breakdown_sums(self, model):
        bd = model.breakdown(16, 1, 2_200_000, compute_fraction=0.5,
                             bandwidth_gbs=20.0, cpu_temp_c=50.0)
        assert bd.cpu_w == pytest.approx(bd.uncore_w + bd.idle_cores_w + bd.active_cores_w)
        assert bd.system_w == pytest.approx(
            bd.platform_w + bd.dram_w + bd.fan_w + bd.cpu_w
        )

    def test_monotonic_in_cores(self, model):
        powers = [
            model.breakdown(c, 1, 2_500_000, compute_fraction=0.3).cpu_w
            for c in (1, 8, 16, 32)
        ]
        assert powers == sorted(powers)

    def test_monotonic_in_frequency(self, model):
        powers = [
            model.breakdown(32, 1, f, compute_fraction=0.3).cpu_w
            for f in (1_500_000, 2_200_000, 2_500_000)
        ]
        assert powers == sorted(powers)

    def test_fan_power_kicks_in_above_knee(self, model):
        cold = model.breakdown(1, 1, 1_500_000, cpu_temp_c=35.0)
        hot = model.breakdown(1, 1, 1_500_000, cpu_temp_c=70.0)
        assert cold.fan_w == 0.0
        assert hot.fan_w > 0.0

    def test_stall_model_reduces_power(self, model):
        stalled = model.breakdown(32, 1, 2_500_000, compute_fraction=0.0)
        busy = model.breakdown(32, 1, 2_500_000, compute_fraction=1.0)
        assert stalled.cpu_w < busy.cpu_w

    def test_effective_activity_range(self, model):
        lo = model.effective_activity(0.0)
        hi = model.effective_activity(1.0)
        assert lo == pytest.approx(model.params.stall_floor)
        assert hi == pytest.approx(1.0)
        assert model.effective_activity(-3.0) == lo  # clamped
        assert model.effective_activity(5.0) == hi

    def test_validation(self, model):
        with pytest.raises(ValueError):
            model.breakdown(33, 1, 2_500_000)
        with pytest.raises(ValueError):
            model.breakdown(-1, 1, 2_500_000)
        with pytest.raises(ValueError):
            model.breakdown(1, 3, 2_500_000)
        with pytest.raises(ValueError):
            model.breakdown(1, 1, 2_500_000, utilization=2.0)

    def test_calibrated_operating_points(self, model):
        """The shipped constants reproduce Table 2's power split (+-3%)."""
        from repro.hpcg.performance_model import HpcgPerformanceModel

        perf = HpcgPerformanceModel()
        for freq, sys_ref, cpu_ref in (
            (2_500_000, 216.6, 120.4),
            (2_200_000, 190.1, 97.4),
        ):
            cf = perf.compute_fraction(32, freq, 1)
            bw = perf.bandwidth_gbs(32, freq, 1)
            bd0 = model.breakdown(32, 1, freq, compute_fraction=cf, bandwidth_gbs=bw)
            temp = ThermalParams().steady_state_c(bd0.cpu_w)
            bd = model.breakdown(
                32, 1, freq, compute_fraction=cf, bandwidth_gbs=bw, cpu_temp_c=temp
            )
            assert bd.system_w == pytest.approx(sys_ref, rel=0.03)
            assert bd.cpu_w == pytest.approx(cpu_ref, rel=0.03)

    @given(
        cores=st.integers(min_value=0, max_value=32),
        tpc=st.sampled_from([1, 2]),
        freq=st.sampled_from([1_500_000, 2_200_000, 2_500_000]),
        cf=st.floats(min_value=0.0, max_value=1.0),
        bw=st.floats(min_value=0.0, max_value=80.0),
        temp=st.floats(min_value=20.0, max_value=95.0),
    )
    def test_power_always_positive_and_finite(self, cores, tpc, freq, cf, bw, temp):
        model = PowerModel(AMD_EPYC_7502P)
        bd = model.breakdown(
            cores, tpc, freq, compute_fraction=cf, bandwidth_gbs=bw, cpu_temp_c=temp
        )
        assert bd.system_w > 0
        assert bd.cpu_w > 0
        assert math.isfinite(bd.system_w)


class TestThermalModel:
    def test_steady_state_linear(self):
        params = ThermalParams(ambient_c=15.7, theta_c_per_w=0.391)
        assert params.steady_state_c(120.4) == pytest.approx(62.8, abs=0.2)
        assert params.steady_state_c(97.4) == pytest.approx(53.8, abs=0.2)

    def test_advance_approaches_steady_state(self):
        model = ThermalModel(ThermalParams(tau_s=60.0), initial_c=30.0)
        target = model.steady_state_c(120.0)
        model.advance(600.0, 120.0)  # 10 time constants
        assert model.temp_c == pytest.approx(target, abs=0.05)

    def test_exact_exponential(self):
        params = ThermalParams(tau_s=60.0)
        model = ThermalModel(params, initial_c=30.0)
        t_ss = params.steady_state_c(100.0)
        model.advance(60.0, 100.0)
        expected = t_ss + (30.0 - t_ss) * math.exp(-1.0)
        assert model.temp_c == pytest.approx(expected)

    def test_step_size_invariance(self):
        """Exact ODE solution: 1x60s equals 60x1s."""
        a = ThermalModel(initial_c=30.0)
        b = ThermalModel(initial_c=30.0)
        a.advance(60.0, 110.0)
        for _ in range(60):
            b.advance(1.0, 110.0)
        assert a.temp_c == pytest.approx(b.temp_c, abs=1e-9)

    def test_cooling(self):
        model = ThermalModel(initial_c=70.0)
        model.advance(600.0, 10.0)
        assert model.temp_c < 30.0

    def test_zero_dt(self):
        model = ThermalModel(initial_c=42.0)
        assert model.advance(0.0, 500.0) == 42.0

    def test_negative_dt_rejected(self):
        with pytest.raises(ValueError):
            ThermalModel().advance(-1.0, 100.0)

    def test_settle(self):
        model = ThermalModel()
        assert model.settle(120.4) == pytest.approx(62.8, abs=0.2)


class TestMemorySpec:
    def test_bandwidth_monotonic_in_cores(self):
        bws = [SR650_MEMORY.sustained_bandwidth_gbs(c) for c in (0, 1, 8, 16, 32)]
        assert bws == sorted(bws)
        assert bws[0] == 0.0

    def test_bandwidth_bounded_by_peak(self):
        assert SR650_MEMORY.sustained_bandwidth_gbs(32, 2) < SR650_MEMORY.peak_bandwidth_gbs

    def test_ht_increases_effective_threads(self):
        assert SR650_MEMORY.effective_threads(8, 2) > SR650_MEMORY.effective_threads(8, 1)

    def test_capacity_kb(self):
        assert SR650_MEMORY.capacity_kb == 256 * 1024 * 1024

    def test_validation(self):
        with pytest.raises(ValueError):
            MemorySpec(0, 8, 3200, 50.0, 5.0)
        with pytest.raises(ValueError):
            MemorySpec(256, 8, 3200, -1.0, 5.0)
        with pytest.raises(ValueError):
            MemorySpec(256, 8, 3200, 50.0, 0.0)
        with pytest.raises(ValueError):
            MemorySpec(256, 8, 3200, 50.0, 5.0, ht_mlp_efficiency=1.5)
        spec = MemorySpec(256, 8, 3200, 50.0, 5.0)
        with pytest.raises(ValueError):
            spec.effective_threads(-1, 1)
        with pytest.raises(ValueError):
            spec.effective_threads(4, 4)
