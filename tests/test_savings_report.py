"""Tests for the savings report and the ``chronus report`` command."""

import json

import pytest

from repro.analysis.report import SavingsReport
from repro.core.domain.benchmark import BenchmarkResult
from repro.core.domain.configuration import Configuration
from repro.core.domain.errors import ChronusError


def row(cores, freq, gflops, watts, app="hpcg"):
    return BenchmarkResult(
        system_id=1,
        application=app,
        configuration=Configuration(cores, 1, freq),
        gflops=gflops,
        avg_system_w=watts,
        avg_cpu_w=watts * 0.55,
        avg_cpu_temp_c=60.0,
        system_energy_j=watts * 1000.0,
        cpu_energy_j=watts * 550.0,
        runtime_s=1000.0,
    )


@pytest.fixture
def rows():
    return [
        row(32, 2_500_000, 9.35, 216.6),   # default (fastest)
        row(32, 2_200_000, 9.16, 187.8),   # eco winner
        row(16, 1_500_000, 6.0, 170.0),
    ]


class TestSavingsReport:
    def test_picks_default_and_eco(self, rows):
        report = SavingsReport.from_benchmarks(rows)
        assert report.default_config == Configuration(32, 1, 2_500_000)
        assert report.best_config == Configuration(32, 1, 2_200_000)

    def test_work_normalised_saving(self, rows):
        report = SavingsReport.from_benchmarks(rows)
        expected = 1.0 - (187.8 / 9.16) / (216.6 / 9.35)
        assert report.saving_fraction == pytest.approx(expected)
        assert 0.10 < report.saving_fraction < 0.13  # paper's ~11%

    def test_performance_cost(self, rows):
        report = SavingsReport.from_benchmarks(rows)
        assert report.performance_cost_fraction == pytest.approx(1 - 9.16 / 9.35)

    def test_annual_projection_scales_with_duty_cycle(self, rows):
        half = SavingsReport.from_benchmarks(rows, duty_cycle=0.5)
        full = SavingsReport.from_benchmarks(rows, duty_cycle=1.0)
        assert full.annual_kwh_saved == pytest.approx(2 * half.annual_kwh_saved)

    def test_monetary_and_carbon(self, rows):
        report = SavingsReport.from_benchmarks(
            rows, price_eur_per_mwh=100.0, carbon_g_per_kwh=500.0
        )
        assert report.annual_eur_saved == pytest.approx(
            report.annual_kwh_saved / 10.0
        )
        assert report.annual_kg_co2_saved == pytest.approx(
            report.annual_kwh_saved / 2.0
        )

    def test_render_contains_projections(self, rows):
        text = SavingsReport.from_benchmarks(rows).render()
        assert "Eco savings report" in text
        assert "kWh" in text and "EUR" in text and "CO2" in text

    def test_validation(self, rows):
        with pytest.raises(ChronusError):
            SavingsReport.from_benchmarks([])
        with pytest.raises(ValueError):
            SavingsReport.from_benchmarks(rows, duty_cycle=0.0)
        with pytest.raises(ValueError):
            SavingsReport.from_benchmarks(rows, price_eur_per_mwh=-1.0)
        mixed = rows + [row(8, 1_500_000, 100.0, 250.0, app="hpl")]
        with pytest.raises(ChronusError, match="one application"):
            SavingsReport.from_benchmarks(mixed)

    def test_no_saving_when_default_is_best(self):
        only = [row(32, 2_500_000, 9.35, 216.6)]
        report = SavingsReport.from_benchmarks(only)
        assert report.saving_fraction == pytest.approx(0.0)


class TestReportCommand:
    def test_cli_report(self, capsys, tmp_path):
        from repro.core.cli.main import main

        ws = str(tmp_path / "ws")
        configs = [
            {"cores": c, "threads_per_core": 1, "frequency": f}
            for c in (16, 32) for f in (2_200_000, 2_500_000)
        ]
        cfg_file = tmp_path / "configs.json"
        cfg_file.write_text(json.dumps(configs))
        assert main(["--workspace", ws, "benchmark",
                     "--configurations", str(cfg_file), "--duration", "300"]) == 0
        capsys.readouterr()
        assert main(["--workspace", ws, "report", "--system", "1"]) == 0
        out = capsys.readouterr().out
        assert "Eco savings report" in out
        assert "energy saved" in out

    def test_cli_report_lists_systems_without_id(self, capsys, tmp_path):
        from repro.core.cli.main import main

        assert main(["--workspace", str(tmp_path / "ws"), "report"]) == 0
        assert "Available Systems" in capsys.readouterr().out
