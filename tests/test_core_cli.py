"""Tests for the Chronus CLI (section 3.3's five commands)."""

import json
import os

import pytest

from repro.core.cli.main import build_parser, main


@pytest.fixture
def workspace(tmp_path):
    return str(tmp_path / "ws")


def run_cli(capsys, workspace, *argv) -> tuple[int, str]:
    rc = main(["--workspace", workspace, *argv])
    out = capsys.readouterr()
    return rc, out.out + out.err


@pytest.fixture
def configs_file(tmp_path):
    path = tmp_path / "configs.json"
    configs = [
        {"cores": c, "threads_per_core": t, "frequency": f}
        for c in (16, 32)
        for f in (2_200_000, 2_500_000)
        for t in (1,)
    ]
    path.write_text(json.dumps(configs))
    return str(path)


@pytest.fixture
def benchmarked(capsys, workspace, configs_file):
    rc, _ = run_cli(
        capsys, workspace, "benchmark",
        "--configurations", configs_file, "--duration", "300",
    )
    assert rc == 0
    return workspace


class TestParser:
    def test_all_five_commands_exist(self):
        parser = build_parser()
        for argv in (
            ["benchmark"],
            ["init-model"],
            ["load-model"],
            ["slurm-config", "1"],
            ["set", "state", "user"],
        ):
            assert parser.parse_args(argv).command == argv[0]

    def test_model_choices(self):
        parser = build_parser()
        args = parser.parse_args(["init-model", "--model", "random-forest"])
        assert args.model == "random-forest"
        with pytest.raises(SystemExit):
            parser.parse_args(["init-model", "--model", "svm"])

    def test_set_state_choices(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["set", "state", "on"])


class TestBenchmarkCommand:
    def test_produces_rows_and_log(self, capsys, workspace, configs_file):
        rc, out = run_cli(
            capsys, workspace, "benchmark",
            "--configurations", configs_file, "--duration", "300",
        )
        assert rc == 0
        assert "GFLOP/s rating found" in out
        assert "GFLOPS/W" in out
        assert os.path.exists(os.path.join(workspace, "chronus.log"))

    def test_database_created(self, benchmarked):
        assert os.path.exists(os.path.join(benchmarked, "chronus.db"))


class TestInitModelCommand:
    def test_lists_systems_without_id(self, capsys, benchmarked):
        rc, out = run_cli(capsys, benchmarked, "init-model")
        assert rc == 0
        assert "Available Systems" in out
        assert "AMD EPYC 7502P" in out

    def test_builds_model(self, capsys, benchmarked):
        rc, out = run_cli(
            capsys, benchmarked, "init-model", "--model", "brute-force", "--system", "1"
        )
        assert rc == 0
        assert "trained on 4 benchmarks" in out

    def test_error_without_benchmarks(self, capsys, workspace):
        rc, out = run_cli(capsys, workspace, "init-model", "--system", "1")
        # a user error: exit 2, with the stable envelope code in the message
        assert rc == 2
        assert "error[SYSTEM_NOT_FOUND]:" in out


class TestLoadModelAndSlurmConfig:
    def test_full_chain(self, capsys, benchmarked):
        run_cli(capsys, benchmarked, "init-model", "--model", "brute-force", "--system", "1")
        rc, out = run_cli(capsys, benchmarked, "load-model")
        assert "Available Models" in out
        rc, out = run_cli(capsys, benchmarked, "load-model", "--model", "1")
        assert rc == 0
        assert "loaded to" in out
        rc, out = run_cli(capsys, benchmarked, "slurm-config", "1", "12345")
        assert rc == 0
        cfg = json.loads(out.strip().splitlines()[-1])
        assert set(cfg) == {"cores", "threads_per_core", "frequency"}
        # within the benchmarked grid the winner is 32 cores @ 2.2 GHz
        assert cfg["cores"] == 32
        assert cfg["frequency"] == 2_200_000

    def test_slurm_config_without_model_errors(self, capsys, workspace):
        rc, out = run_cli(capsys, workspace, "slurm-config", "1")
        assert rc == 2
        assert "error[MODEL_NOT_FOUND]:" in out
        assert "load-model" in out


class TestSetCommand:
    def test_set_state_persists(self, capsys, workspace):
        rc, _ = run_cli(capsys, workspace, "set", "state", "deactivated")
        assert rc == 0
        settings = json.loads(
            open(os.path.join(workspace, "etc", "chronus", "settings.json")).read()
        )
        assert settings["plugin_state"] == "deactivated"

    def test_set_database_and_blob(self, capsys, workspace):
        run_cli(capsys, workspace, "set", "database", "other.db")
        run_cli(capsys, workspace, "set", "blob-storage", "blobs2")
        settings = json.loads(
            open(os.path.join(workspace, "etc", "chronus", "settings.json")).read()
        )
        assert settings["database_path"] == "other.db"
        assert settings["blob_storage_path"] == "blobs2"
