"""The check_* CI gate scripts, run against pass/fail report fixtures.

Each gate script is a standalone argparse program (no package import), so
these tests load them by file path and call ``main(argv)`` directly —
the same entry point CI exercises — and assert on the exit status.
A gate that cannot tell a healthy report from a broken one is worse than
no gate: the fail fixtures each flip exactly one invariant.
"""

from __future__ import annotations

import copy
import importlib.util
import json
from pathlib import Path

import pytest

SCRIPTS = Path(__file__).resolve().parent.parent / "scripts"


def load_script(name: str):
    spec = importlib.util.spec_from_file_location(name, SCRIPTS / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def run_gate(module, argv) -> int:
    """main(argv) exit status, whether the script returns or sys.exit()s."""
    try:
        return int(module.main(argv) or 0)
    except SystemExit as exc:
        return int(exc.code or 0)


def write_json(path: Path, doc: dict) -> str:
    path.write_text(json.dumps(doc))
    return str(path)


# ----------------------------------------------------------------------
# report fixtures: one healthy document per gate, mutated per test
# ----------------------------------------------------------------------

def healthy_storm() -> dict:
    return {
        "jobs": 200,
        "unanswered": 0,
        "mismatches": 0,
        "error_responses_seen": 0,
        "shed_responses_seen": 0,
        "latency_s": {"p50": 0.02, "p95": 0.05, "max": 0.09},
        "batches": {"dispatched": 7, "mean": 28.6, "max": 32},
        "metrics": {
            "serve_requests_total": 200,
            "serve_shed_total": 0,
            "serve_handler_errors_total": 0,
        },
    }


def healthy_pr6() -> dict:
    return {
        "schema": "chronus-bench-pr6/1",
        "smoke": True,
        "storm": healthy_storm(),
        "throughput": {
            "jobs": 200,
            "scalar": {"rps": 20000.0, "p50_ms": 0.04, "p95_ms": 0.09},
            "batched": [
                {"batch_size": 4, "rps": 18000.0, "mismatches": 0},
                {"batch_size": 16, "rps": 50000.0, "mismatches": 0},
                {"batch_size": 64, "rps": 95000.0, "mismatches": 0},
            ],
        },
        "warm": {
            "cold_first_request_ms": 0.5,
            "warmed_first_request_ms": 0.05,
            "speedup": 10.0,
        },
        "sweep": {"identical_results": True, "speedup": 1.2},
    }


def healthy_bench(speedup: float = 10.0) -> dict:
    return {
        "schema": "chronus-bench-pr2/1",
        "quick": True,
        "kernels": {
            "diagonal": {"loop_s": 0.04, "fast_s": 0.004, "speedup": speedup},
        },
        "hpcg": {"nx": 24, "total_flops": 85184912, "converged": True},
        "sweep": {"identical_results": True, "spearman_rho": 0.958},
    }


def healthy_pr7() -> dict:
    def des(n_jobs: int, eps: float) -> dict:
        return {
            "n_nodes": 1000,
            "n_jobs": n_jobs,
            "queue_depth": 256,
            "wall_s": 10.0,
            "events": n_jobs * 3,
            "events_per_sec": eps,
            "jobs_started": n_jobs,
            "jobs_finished": n_jobs,
            "jobs_killed_at_limit": 0,
            "kill_timer_tombstones": n_jobs,
            "compactions": 5,
            "passes": n_jobs // 2,
            "pass_ms": {"p50": 1.0, "p95": 2.0, "max": 9.0},
            "unfinished_jobs": 0,
        }

    return {
        "schema": "chronus-bench-pr7/1",
        "smoke": True,
        "scheduler": {
            "n_nodes": 1000,
            "queue_depth": 1000,
            "passes": 5,
            "mismatches": 0,
            "reference": {"p50_ms": 60.0, "p95_ms": 80.0, "mean_ms": 62.0},
            "incremental": {"p50_ms": 14.0, "p95_ms": 20.0, "mean_ms": 15.0},
            "speedup": 4.1,
        },
        "des_storm": {
            "small": des(2000, 4000.0),
            "large": des(8000, 3500.0),
            "throughput_ratio": 0.875,
        },
        "serving_storm": {
            "clients": 10_000,
            "shards": 4,
            "worker_threads": 64,
            "wall_s": 1.5,
            "rps": 6600.0,
            "unanswered": 0,
            "shed_responses_seen": 0,
            "error_responses_seen": 0,
            "mismatches": 0,
            "latency_s": {"p50": 0.008, "p95": 0.02, "max": 0.2},
            "fleet": {
                "healthy_count": 4,
                "requests_total": 10_000,
                "failures_total": 0,
                "per_shard_requests": {
                    "shard0": 2400, "shard1": 2700,
                    "shard2": 2300, "shard3": 2600,
                },
                "models_cached_total": 4,
            },
        },
        "sweep": {
            "points": 18,
            "workers": 2,
            "serial_wall_s": 40.0,
            "parallel_wall_s": 38.0,
            "speedup": 1.05,
            "identical_results": True,
            "kernel_cache": {
                "nx": 20,
                "first_build_s": 0.8,
                "second_build_s": 0.05,
                "problem_shared": True,
                "reuse_speedup": 16.0,
            },
        },
    }


class TestServingGate:
    @pytest.fixture()
    def gate(self):
        return load_script("check_serving_gate")

    def test_healthy_report_passes(self, gate, tmp_path):
        report = write_json(tmp_path / "ok.json", healthy_storm())
        assert run_gate(gate, [report]) == 0

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda d: d.update(mismatches=3),
            lambda d: d.update(unanswered=1),
            lambda d: d.update(error_responses_seen=2),
            lambda d: d["latency_s"].update(p95=0.5),
            lambda d: d["batches"].update(max=1),
            lambda d: d["metrics"].update(serve_handler_errors_total=1),
            lambda d: d["metrics"].update(serve_requests_total=150),
            # a shed counted but never answered = silently dropped request
            lambda d: d["metrics"].update(serve_shed_total=1),
        ],
        ids=[
            "mismatches",
            "unanswered",
            "error-responses",
            "p95-over-budget",
            "no-batching",
            "handler-errors",
            "requests-bypassed-admission",
            "silent-shed",
        ],
    )
    def test_broken_report_fails(self, gate, tmp_path, mutate):
        doc = healthy_storm()
        mutate(doc)
        report = write_json(tmp_path / "bad.json", doc)
        assert run_gate(gate, [report]) != 0

    def test_explicit_sheds_are_allowed(self, gate, tmp_path):
        doc = healthy_storm()
        doc["shed_responses_seen"] = 5
        doc["metrics"]["serve_shed_total"] = 5
        report = write_json(tmp_path / "shed.json", doc)
        assert run_gate(gate, [report]) == 0


class TestPredictThroughputGate:
    @pytest.fixture()
    def gate(self):
        return load_script("check_predict_throughput_gate")

    def test_healthy_report_passes(self, gate, tmp_path):
        report = write_json(tmp_path / "ok.json", healthy_pr6())
        assert run_gate(gate, [report]) == 0

    def test_batched_slower_than_scalar_fails(self, gate, tmp_path):
        doc = healthy_pr6()
        for row in doc["throughput"]["batched"]:
            row["rps"] = doc["throughput"]["scalar"]["rps"] * 0.5
        report = write_json(tmp_path / "slow.json", doc)
        assert run_gate(gate, [report]) != 0

    def test_one_slow_batch_size_is_fine(self, gate, tmp_path):
        # only the *best* batched rps is gated: tiny batches may lose to
        # scalar on dispatch overhead, the knee of the curve must not
        doc = healthy_pr6()
        doc["throughput"]["batched"][0]["rps"] = 1000.0
        report = write_json(tmp_path / "knee.json", doc)
        assert run_gate(gate, [report]) == 0

    def test_batched_mismatch_fails(self, gate, tmp_path):
        doc = healthy_pr6()
        doc["throughput"]["batched"][1]["mismatches"] = 1
        report = write_json(tmp_path / "mismatch.json", doc)
        assert run_gate(gate, [report]) != 0

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda d: d["storm"].update(shed_responses_seen=1),
            lambda d: d["storm"]["metrics"].update(serve_shed_total=2),
            lambda d: d["storm"].update(unanswered=1),
            lambda d: d["storm"].update(mismatches=1),
        ],
        ids=["shed-seen", "shed-counted", "unanswered", "storm-mismatch"],
    )
    def test_storm_violations_fail(self, gate, tmp_path, mutate):
        doc = healthy_pr6()
        mutate(doc)
        report = write_json(tmp_path / "storm.json", doc)
        assert run_gate(gate, [report]) != 0

    def test_wrong_schema_fails(self, gate, tmp_path):
        doc = healthy_pr6()
        doc["schema"] = "chronus-bench-pr2/1"
        report = write_json(tmp_path / "schema.json", doc)
        assert run_gate(gate, [report]) != 0

    def test_min_speedup_flag_raises_the_bar(self, gate, tmp_path):
        report = write_json(tmp_path / "ok.json", healthy_pr6())
        assert run_gate(gate, [report, "--min-speedup", "2.0"]) == 0
        assert run_gate(gate, [report, "--min-speedup", "10.0"]) != 0

    def test_committed_baseline_satisfies_the_gate(self, gate):
        committed = SCRIPTS.parent / "BENCH_PR6.json"
        assert run_gate(gate, [str(committed)]) == 0


class TestStormGate:
    @pytest.fixture()
    def gate(self):
        return load_script("check_storm_gate")

    def test_healthy_report_passes(self, gate, tmp_path):
        report = write_json(tmp_path / "ok.json", healthy_pr7())
        assert run_gate(gate, [report]) == 0

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda d: d["scheduler"].update(mismatches=1),
            lambda d: d["scheduler"].update(n_nodes=200),
            lambda d: d["scheduler"].update(speedup=1.1),
            lambda d: d["scheduler"]["incremental"].update(p95_ms=500.0),
            lambda d: d["des_storm"]["large"].update(unfinished_jobs=3),
            lambda d: d["des_storm"]["small"].update(jobs_started=1999),
            lambda d: d["des_storm"]["large"].update(compactions=0),
            lambda d: d["des_storm"].update(throughput_ratio=0.3),
            lambda d: d["serving_storm"].update(clients=5000),
            lambda d: d["serving_storm"].update(shed_responses_seen=1),
            lambda d: d["serving_storm"].update(unanswered=2),
            lambda d: d["serving_storm"].update(error_responses_seen=1),
            lambda d: d["serving_storm"].update(mismatches=1),
            lambda d: d["serving_storm"]["fleet"].update(healthy_count=3),
            lambda d: d["serving_storm"]["fleet"]["per_shard_requests"].update(
                shard2=0
            ),
            lambda d: d["serving_storm"]["latency_s"].update(p95=2.0),
            lambda d: d["sweep"].update(workers=1),
            lambda d: d["sweep"].update(identical_results=False),
            lambda d: d["sweep"]["kernel_cache"].update(problem_shared=False),
        ],
        ids=[
            "placement-mismatch",
            "undersized-fleet",
            "speedup-regressed",
            "pass-over-budget",
            "stranded-jobs",
            "jobs-not-started",
            "no-compactions",
            "superlinear-cost",
            "too-few-clients",
            "shed",
            "unanswered",
            "error-responses",
            "oracle-mismatch",
            "dead-shard",
            "idle-shard",
            "p95-over-budget",
            "serial-sweep",
            "sweep-divergence",
            "cache-not-shared",
        ],
    )
    def test_broken_report_fails(self, gate, tmp_path, mutate):
        doc = healthy_pr7()
        mutate(doc)
        report = write_json(tmp_path / "bad.json", doc)
        assert run_gate(gate, [report]) != 0

    def test_wrong_schema_fails(self, gate, tmp_path):
        doc = healthy_pr7()
        doc["schema"] = "chronus-bench-pr6/1"
        report = write_json(tmp_path / "schema.json", doc)
        assert run_gate(gate, [report]) != 0

    def test_threshold_flags_raise_the_bar(self, gate, tmp_path):
        report = write_json(tmp_path / "ok.json", healthy_pr7())
        assert run_gate(gate, [report, "--min-sched-speedup", "10.0"]) != 0
        assert run_gate(gate, [report, "--min-throughput-ratio", "0.95"]) != 0
        assert run_gate(gate, [report, "--max-predict-p95-s", "0.01"]) != 0

    def test_committed_baseline_satisfies_the_gate(self, gate):
        committed = SCRIPTS.parent / "BENCH_PR7.json"
        assert run_gate(gate, [str(committed)]) == 0


class TestBenchRegressionGate:
    @pytest.fixture()
    def gate(self):
        return load_script("check_bench_regression")

    def test_identical_runs_pass(self, gate, tmp_path):
        fresh = write_json(tmp_path / "fresh.json", healthy_bench())
        base = write_json(tmp_path / "base.json", healthy_bench())
        assert run_gate(gate, [fresh, "--baseline", base]) == 0

    def test_speedup_regression_fails(self, gate, tmp_path):
        fresh = write_json(tmp_path / "fresh.json", healthy_bench(speedup=5.0))
        base = write_json(tmp_path / "base.json", healthy_bench(speedup=10.0))
        assert run_gate(gate, [fresh, "--baseline", base, "--tolerance", "0.20"]) != 0

    def test_tolerance_absorbs_small_drift(self, gate, tmp_path):
        fresh = write_json(tmp_path / "fresh.json", healthy_bench(speedup=9.0))
        base = write_json(tmp_path / "base.json", healthy_bench(speedup=10.0))
        assert run_gate(gate, [fresh, "--baseline", base, "--tolerance", "0.20"]) == 0

    def test_flop_total_drift_fails(self, gate, tmp_path):
        doc = healthy_bench()
        doc["hpcg"]["total_flops"] += 1
        fresh = write_json(tmp_path / "fresh.json", doc)
        base = write_json(tmp_path / "base.json", healthy_bench())
        assert run_gate(gate, [fresh, "--baseline", base]) != 0

    def test_sweep_divergence_fails(self, gate, tmp_path):
        doc = healthy_bench()
        doc["sweep"]["identical_results"] = False
        fresh = write_json(tmp_path / "fresh.json", doc)
        base = write_json(tmp_path / "base.json", healthy_bench())
        assert run_gate(gate, [fresh, "--baseline", base]) != 0

    def test_missing_kernel_fails(self, gate, tmp_path):
        doc = healthy_bench()
        del doc["kernels"]["diagonal"]
        fresh = write_json(tmp_path / "fresh.json", doc)
        base = write_json(tmp_path / "base.json", healthy_bench())
        assert run_gate(gate, [fresh, "--baseline", base]) != 0


class TestCommittedArtifacts:
    """The baselines CI gates against must stay loadable and well-formed."""

    def test_bench_pr7_schema(self):
        doc = json.loads((SCRIPTS.parent / "BENCH_PR7.json").read_text())
        assert doc["schema"] == "chronus-bench-pr7/1"
        assert doc["smoke"] is False
        sched = doc["scheduler"]
        assert sched["n_nodes"] >= 1000 and sched["mismatches"] == 0
        assert sched["speedup"] > 1.0
        assert doc["des_storm"]["large"]["n_jobs"] >= 100_000
        assert doc["des_storm"]["large"]["unfinished_jobs"] == 0
        assert doc["serving_storm"]["clients"] >= 10_000
        assert doc["serving_storm"]["shed_responses_seen"] == 0
        assert doc["sweep"]["identical_results"] is True

    def test_bench_pr6_schema(self):
        doc = json.loads((SCRIPTS.parent / "BENCH_PR6.json").read_text())
        assert doc["schema"] == "chronus-bench-pr6/1"
        assert doc["throughput"]["scalar"]["rps"] > 0
        batch_sizes = [row["batch_size"] for row in doc["throughput"]["batched"]]
        assert batch_sizes == sorted(batch_sizes)
        assert all(row["mismatches"] == 0 for row in doc["throughput"]["batched"])
        assert doc["storm"]["shed_responses_seen"] == 0
        assert doc["sweep"]["identical_results"] is True

    def test_fixture_mutations_are_isolated(self):
        # paranoia: healthy_* builders must return fresh documents, or one
        # test's mutation would leak into the next
        a, b = healthy_pr6(), healthy_pr6()
        a["storm"]["mismatches"] = 99
        assert b["storm"]["mismatches"] == 0
        assert copy.deepcopy(a) == a
