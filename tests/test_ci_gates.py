"""The check_* CI gate scripts, run against pass/fail report fixtures.

Each gate script is a standalone argparse program (no package import), so
these tests load them by file path and call ``main(argv)`` directly —
the same entry point CI exercises — and assert on the exit status.
A gate that cannot tell a healthy report from a broken one is worse than
no gate: the fail fixtures each flip exactly one invariant.
"""

from __future__ import annotations

import copy
import importlib.util
import json
from pathlib import Path

import pytest

SCRIPTS = Path(__file__).resolve().parent.parent / "scripts"


def load_script(name: str):
    spec = importlib.util.spec_from_file_location(name, SCRIPTS / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def run_gate(module, argv) -> int:
    """main(argv) exit status, whether the script returns or sys.exit()s."""
    try:
        return int(module.main(argv) or 0)
    except SystemExit as exc:
        return int(exc.code or 0)


def write_json(path: Path, doc: dict) -> str:
    path.write_text(json.dumps(doc))
    return str(path)


# ----------------------------------------------------------------------
# report fixtures: one healthy document per gate, mutated per test
# ----------------------------------------------------------------------

def healthy_storm() -> dict:
    return {
        "jobs": 200,
        "unanswered": 0,
        "mismatches": 0,
        "error_responses_seen": 0,
        "shed_responses_seen": 0,
        "latency_s": {"p50": 0.02, "p95": 0.05, "max": 0.09},
        "batches": {"dispatched": 7, "mean": 28.6, "max": 32},
        "metrics": {
            "serve_requests_total": 200,
            "serve_shed_total": 0,
            "serve_handler_errors_total": 0,
        },
    }


def healthy_pr6() -> dict:
    return {
        "schema": "chronus-bench-pr6/1",
        "smoke": True,
        "storm": healthy_storm(),
        "throughput": {
            "jobs": 200,
            "scalar": {"rps": 20000.0, "p50_ms": 0.04, "p95_ms": 0.09},
            "batched": [
                {"batch_size": 4, "rps": 18000.0, "mismatches": 0},
                {"batch_size": 16, "rps": 50000.0, "mismatches": 0},
                {"batch_size": 64, "rps": 95000.0, "mismatches": 0},
            ],
        },
        "warm": {
            "cold_first_request_ms": 0.5,
            "warmed_first_request_ms": 0.05,
            "speedup": 10.0,
        },
        "sweep": {"identical_results": True, "speedup": 1.2},
    }


def healthy_bench(speedup: float = 10.0) -> dict:
    return {
        "schema": "chronus-bench-pr2/1",
        "quick": True,
        "kernels": {
            "diagonal": {"loop_s": 0.04, "fast_s": 0.004, "speedup": speedup},
        },
        "hpcg": {"nx": 24, "total_flops": 85184912, "converged": True},
        "sweep": {"identical_results": True, "spearman_rho": 0.958},
    }


class TestServingGate:
    @pytest.fixture()
    def gate(self):
        return load_script("check_serving_gate")

    def test_healthy_report_passes(self, gate, tmp_path):
        report = write_json(tmp_path / "ok.json", healthy_storm())
        assert run_gate(gate, [report]) == 0

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda d: d.update(mismatches=3),
            lambda d: d.update(unanswered=1),
            lambda d: d.update(error_responses_seen=2),
            lambda d: d["latency_s"].update(p95=0.5),
            lambda d: d["batches"].update(max=1),
            lambda d: d["metrics"].update(serve_handler_errors_total=1),
            lambda d: d["metrics"].update(serve_requests_total=150),
            # a shed counted but never answered = silently dropped request
            lambda d: d["metrics"].update(serve_shed_total=1),
        ],
        ids=[
            "mismatches",
            "unanswered",
            "error-responses",
            "p95-over-budget",
            "no-batching",
            "handler-errors",
            "requests-bypassed-admission",
            "silent-shed",
        ],
    )
    def test_broken_report_fails(self, gate, tmp_path, mutate):
        doc = healthy_storm()
        mutate(doc)
        report = write_json(tmp_path / "bad.json", doc)
        assert run_gate(gate, [report]) != 0

    def test_explicit_sheds_are_allowed(self, gate, tmp_path):
        doc = healthy_storm()
        doc["shed_responses_seen"] = 5
        doc["metrics"]["serve_shed_total"] = 5
        report = write_json(tmp_path / "shed.json", doc)
        assert run_gate(gate, [report]) == 0


class TestPredictThroughputGate:
    @pytest.fixture()
    def gate(self):
        return load_script("check_predict_throughput_gate")

    def test_healthy_report_passes(self, gate, tmp_path):
        report = write_json(tmp_path / "ok.json", healthy_pr6())
        assert run_gate(gate, [report]) == 0

    def test_batched_slower_than_scalar_fails(self, gate, tmp_path):
        doc = healthy_pr6()
        for row in doc["throughput"]["batched"]:
            row["rps"] = doc["throughput"]["scalar"]["rps"] * 0.5
        report = write_json(tmp_path / "slow.json", doc)
        assert run_gate(gate, [report]) != 0

    def test_one_slow_batch_size_is_fine(self, gate, tmp_path):
        # only the *best* batched rps is gated: tiny batches may lose to
        # scalar on dispatch overhead, the knee of the curve must not
        doc = healthy_pr6()
        doc["throughput"]["batched"][0]["rps"] = 1000.0
        report = write_json(tmp_path / "knee.json", doc)
        assert run_gate(gate, [report]) == 0

    def test_batched_mismatch_fails(self, gate, tmp_path):
        doc = healthy_pr6()
        doc["throughput"]["batched"][1]["mismatches"] = 1
        report = write_json(tmp_path / "mismatch.json", doc)
        assert run_gate(gate, [report]) != 0

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda d: d["storm"].update(shed_responses_seen=1),
            lambda d: d["storm"]["metrics"].update(serve_shed_total=2),
            lambda d: d["storm"].update(unanswered=1),
            lambda d: d["storm"].update(mismatches=1),
        ],
        ids=["shed-seen", "shed-counted", "unanswered", "storm-mismatch"],
    )
    def test_storm_violations_fail(self, gate, tmp_path, mutate):
        doc = healthy_pr6()
        mutate(doc)
        report = write_json(tmp_path / "storm.json", doc)
        assert run_gate(gate, [report]) != 0

    def test_wrong_schema_fails(self, gate, tmp_path):
        doc = healthy_pr6()
        doc["schema"] = "chronus-bench-pr2/1"
        report = write_json(tmp_path / "schema.json", doc)
        assert run_gate(gate, [report]) != 0

    def test_min_speedup_flag_raises_the_bar(self, gate, tmp_path):
        report = write_json(tmp_path / "ok.json", healthy_pr6())
        assert run_gate(gate, [report, "--min-speedup", "2.0"]) == 0
        assert run_gate(gate, [report, "--min-speedup", "10.0"]) != 0

    def test_committed_baseline_satisfies_the_gate(self, gate):
        committed = SCRIPTS.parent / "BENCH_PR6.json"
        assert run_gate(gate, [str(committed)]) == 0


class TestBenchRegressionGate:
    @pytest.fixture()
    def gate(self):
        return load_script("check_bench_regression")

    def test_identical_runs_pass(self, gate, tmp_path):
        fresh = write_json(tmp_path / "fresh.json", healthy_bench())
        base = write_json(tmp_path / "base.json", healthy_bench())
        assert run_gate(gate, [fresh, "--baseline", base]) == 0

    def test_speedup_regression_fails(self, gate, tmp_path):
        fresh = write_json(tmp_path / "fresh.json", healthy_bench(speedup=5.0))
        base = write_json(tmp_path / "base.json", healthy_bench(speedup=10.0))
        assert run_gate(gate, [fresh, "--baseline", base, "--tolerance", "0.20"]) != 0

    def test_tolerance_absorbs_small_drift(self, gate, tmp_path):
        fresh = write_json(tmp_path / "fresh.json", healthy_bench(speedup=9.0))
        base = write_json(tmp_path / "base.json", healthy_bench(speedup=10.0))
        assert run_gate(gate, [fresh, "--baseline", base, "--tolerance", "0.20"]) == 0

    def test_flop_total_drift_fails(self, gate, tmp_path):
        doc = healthy_bench()
        doc["hpcg"]["total_flops"] += 1
        fresh = write_json(tmp_path / "fresh.json", doc)
        base = write_json(tmp_path / "base.json", healthy_bench())
        assert run_gate(gate, [fresh, "--baseline", base]) != 0

    def test_sweep_divergence_fails(self, gate, tmp_path):
        doc = healthy_bench()
        doc["sweep"]["identical_results"] = False
        fresh = write_json(tmp_path / "fresh.json", doc)
        base = write_json(tmp_path / "base.json", healthy_bench())
        assert run_gate(gate, [fresh, "--baseline", base]) != 0

    def test_missing_kernel_fails(self, gate, tmp_path):
        doc = healthy_bench()
        del doc["kernels"]["diagonal"]
        fresh = write_json(tmp_path / "fresh.json", doc)
        base = write_json(tmp_path / "base.json", healthy_bench())
        assert run_gate(gate, [fresh, "--baseline", base]) != 0


class TestCommittedArtifacts:
    """The baselines CI gates against must stay loadable and well-formed."""

    def test_bench_pr6_schema(self):
        doc = json.loads((SCRIPTS.parent / "BENCH_PR6.json").read_text())
        assert doc["schema"] == "chronus-bench-pr6/1"
        assert doc["throughput"]["scalar"]["rps"] > 0
        batch_sizes = [row["batch_size"] for row in doc["throughput"]["batched"]]
        assert batch_sizes == sorted(batch_sizes)
        assert all(row["mismatches"] == 0 for row in doc["throughput"]["batched"])
        assert doc["storm"]["shed_responses_seen"] == 0
        assert doc["sweep"]["identical_results"] is True

    def test_fixture_mutations_are_isolated(self):
        # paranoia: healthy_* builders must return fresh documents, or one
        # test's mutation would leak into the next
        a, b = healthy_pr6(), healthy_pr6()
        a["storm"]["mismatches"] = 99
        assert b["storm"]["mismatches"] == 0
        assert copy.deepcopy(a) == a
