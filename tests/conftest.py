"""Shared fixtures.

``steady_rows``/``paper_rows`` build benchmark data analytically through
the calibrated steady-state models (milliseconds) instead of driving the
full discrete-event pipeline, so optimizer/service tests stay fast; the
integration tests exercise the real pipeline separately.
"""

from __future__ import annotations

import pytest

from repro.analysis.calibration import steady_state_point
from repro.core.domain.benchmark import BenchmarkResult
from repro.core.domain.configuration import Configuration
from repro.hardware.cpu import AMD_EPYC_7502P
from repro.hardware.node import SimulatedNode
from repro.hardware.power import PowerModel
from repro.hardware.thermal import ThermalParams
from repro.hpcg import reference
from repro.hpcg.performance_model import HpcgPerformanceModel, PAPER_TOTAL_FLOPS
from repro.simkernel.engine import Simulator
from repro.simkernel.random import RandomStreams
from repro.slurm.cluster import SimCluster


@pytest.fixture
def sim() -> Simulator:
    return Simulator()


@pytest.fixture
def node(sim: Simulator) -> SimulatedNode:
    return SimulatedNode(sim)


@pytest.fixture
def streams() -> RandomStreams:
    return RandomStreams(12345)


@pytest.fixture
def cluster() -> SimCluster:
    """Completion-mode cluster (jobs run the full 104^3 workload)."""
    return SimCluster(seed=7)


@pytest.fixture
def sweep_cluster() -> SimCluster:
    """Time-bounded cluster (10-minute HPCG jobs, for sweep tests)."""
    return SimCluster(seed=7, hpcg_duration_s=600.0)


def _steady_benchmark_rows(configs: list[Configuration]) -> list[BenchmarkResult]:
    perf = HpcgPerformanceModel()
    power = PowerModel(AMD_EPYC_7502P)
    thermal = ThermalParams()
    rows = []
    for cfg in configs:
        sp = steady_state_point(
            cfg.cores, cfg.frequency_ghz, cfg.hyperthread, perf, power, thermal
        )
        runtime = PAPER_TOTAL_FLOPS / (sp.gflops * 1e9)
        rows.append(
            BenchmarkResult(
                system_id=1,
                application="hpcg",
                configuration=cfg,
                gflops=sp.gflops,
                avg_system_w=sp.sys_w,
                avg_cpu_w=sp.cpu_w,
                avg_cpu_temp_c=sp.temp_c,
                system_energy_j=sp.sys_w * runtime,
                cpu_energy_j=sp.cpu_w * runtime,
                runtime_s=runtime,
            )
        )
    return rows


@pytest.fixture(scope="session")
def steady_rows() -> list[BenchmarkResult]:
    """A 24-point sweep of analytic benchmark rows (fast optimizer food)."""
    configs = Configuration.sweep(
        core_counts=[4, 16, 28, 32],
        frequencies=[1_500_000, 2_200_000, 2_500_000],
    )
    return _steady_benchmark_rows(configs)


@pytest.fixture(scope="session")
def paper_rows() -> list[BenchmarkResult]:
    """All 138 paper configurations as analytic benchmark rows."""
    configs = [
        Configuration(
            cores=p.cores,
            threads_per_core=2 if p.hyperthread else 1,
            frequency=p.freq_khz,
        )
        for p in reference.GFLOPS_PER_WATT
    ]
    return _steady_benchmark_rows(configs)
