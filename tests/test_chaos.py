"""Chaos suite: the resilience invariants under active fault profiles.

The two CI-gated drills (flaky-ipmi mini-sweep, chronus-timeout submit
storm) plus the remaining profiles.  The common invariant: chaos changes
*outcomes* (degraded samples, quarantined points, fallback submissions)
but never the *accounting* — nothing is silently dropped and no exception
escapes a drill.
"""

import dataclasses

import pytest

from repro import faults, telemetry
from repro.faults.scenarios import run_storm_scenario, run_sweep_scenario


@pytest.fixture(autouse=True)
def _clean_slate():
    faults.reset()
    telemetry.set_registry(telemetry.MetricsRegistry())
    yield
    faults.reset()
    telemetry.set_registry(telemetry.MetricsRegistry())


SWEEP_KW = dict(points=4, seed=0, duration_s=30.0)


class TestFlakyIpmiSweep:
    def test_every_point_measured_or_quarantined(self):
        result = run_sweep_scenario("flaky-ipmi", **SWEEP_KW)
        assert result.unhandled_error is None
        assert result.accounted
        assert result.ok

    def test_retry_path_exercised(self):
        result = run_sweep_scenario("flaky-ipmi", **SWEEP_KW)
        assert result.faults_fired.get("ipmi.read", 0) > 0
        assert result.metrics["ipmi_retries_total"] > 0
        assert result.metrics["retry_attempts_total"] > 0

    def test_reproducible_from_seed(self):
        a = run_sweep_scenario("flaky-ipmi", **SWEEP_KW)
        b = run_sweep_scenario("flaky-ipmi", **SWEEP_KW)
        assert dataclasses.asdict(a) == dataclasses.asdict(b)
        c = run_sweep_scenario("flaky-ipmi", points=4, seed=1, duration_s=30.0)
        assert c.faults_fired != a.faults_fired

    def test_faults_disabled_after_scenario(self):
        run_sweep_scenario("flaky-ipmi", **SWEEP_KW)
        assert not faults.enabled()


class TestNoiseAndCrashSweeps:
    def test_ipmi_noise_never_reaches_results(self):
        """NaN/spike readings are rejected by validation, not persisted."""
        result = run_sweep_scenario("ipmi-noise", **SWEEP_KW)
        assert result.ok
        fired = result.faults_fired
        assert fired.get("ipmi.nan", 0) + fired.get("ipmi.spike", 0) > 0

    def test_worker_crash_quarantines_explicitly(self):
        # every attempt of every point crashes: all points quarantined
        result = run_sweep_scenario("sweep.crash=1", **SWEEP_KW)
        assert result.unhandled_error is None
        assert result.accounted
        assert result.quarantined == result.total
        assert result.metrics["sweep_points_quarantined_total"] == result.total

    def test_occasional_crash_retried_to_success(self):
        result = run_sweep_scenario("sweep.crash=0.3,seed=2", **SWEEP_KW)
        assert result.unhandled_error is None
        assert result.accounted
        assert result.completed > 0
        assert result.metrics["sweep_point_retries_total"] > 0

    def test_clean_profile_measures_everything(self):
        result = run_sweep_scenario("", **SWEEP_KW)
        assert result.ok
        assert result.completed == result.total
        assert result.quarantined == 0
        assert result.faults_fired == {}


class TestChronusTimeoutStorm:
    def test_all_jobs_submitted_unchanged(self):
        result = run_storm_scenario("chronus-timeout", jobs=50, seed=0)
        assert result.ok
        assert result.completed == 50
        assert result.modified_jobs == 0
        assert result.metrics["eco_fallback_total"] == 50

    def test_breaker_opens_and_bounds_overhead(self):
        result = run_storm_scenario(
            "chronus-timeout", jobs=50, seed=0, failure_threshold=3
        )
        # after 3 timeouts the breaker opens: every later submission is a
        # cheap short-circuit, not another timeout
        assert result.faults_fired["predict.timeout"] == 3
        assert result.metrics["eco_short_circuits_total"] == 47
        assert result.metrics["breaker_short_circuits_total"] == 47

    def test_garbage_storm_submits_unchanged(self):
        result = run_storm_scenario("chronus-garbage", jobs=20, seed=0)
        assert result.ok
        assert result.completed == 20
        assert result.modified_jobs == 0
        assert result.metrics["eco_fallback_total"] == 20

    def test_healthy_storm_modifies_every_job(self):
        result = run_storm_scenario("", jobs=10, seed=0)
        assert result.ok
        assert result.modified_jobs == 10
        assert result.metrics["eco_applied_total"] == 10
        assert result.metrics["eco_fallback_total"] == 0

    def test_limited_timeouts_recover_within_storm(self):
        # 2 timeouts < threshold 3: the breaker never opens and the rest
        # of the storm is optimized normally
        result = run_storm_scenario("predict.timeout=1:2", jobs=10, seed=0)
        assert result.ok
        assert result.modified_jobs == 8
        assert result.metrics["eco_short_circuits_total"] == 0


class TestCliFaults:
    def test_faults_list(self, capsys):
        from repro.core.cli.main import main

        assert main(["faults", "list"]) == 0
        out = capsys.readouterr().out
        assert "ipmi.read" in out
        assert "flaky-ipmi" in out

    def test_faults_run_sweep(self, capsys, tmp_path):
        from repro.core.cli.main import main

        rc = main(
            ["--workspace", str(tmp_path), "faults", "run", "flaky-ipmi",
             "--points", "2"]
        )
        assert rc == 0
        assert "chaos sweep [flaky-ipmi]: OK" in capsys.readouterr().out

    def test_faults_run_storm(self, capsys, tmp_path):
        from repro.core.cli.main import main

        rc = main(
            ["--workspace", str(tmp_path), "faults", "run", "chronus-timeout",
             "--scenario", "storm", "--jobs", "10"]
        )
        assert rc == 0
        assert "chaos storm [chronus-timeout]: OK" in capsys.readouterr().out

    def test_faults_run_bad_spec_errors(self, capsys, tmp_path):
        from repro.core.cli.main import main

        rc = main(["--workspace", str(tmp_path), "faults", "run", "warp.core=1"])
        # a bad spec is a user error: exit 2 with the envelope code
        assert rc == 2
        assert "error[FAULT_SPEC]:" in capsys.readouterr().err


class TestChaosScripts:
    def test_smoke_and_gate_pass(self, tmp_path, capsys):
        import sys

        sys.path.insert(0, "scripts")
        try:
            import check_chaos_gate
            import run_chaos_smoke
        finally:
            sys.path.pop(0)
        report = tmp_path / "chaos.json"
        assert run_chaos_smoke.main(["--output", str(report), "--points", "4"]) == 0
        assert check_chaos_gate.main([str(report)]) == 0
        assert "CHAOS GATE OK" in capsys.readouterr().out
