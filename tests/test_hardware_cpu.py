"""Unit tests for CPU specs and the voltage curve."""

import pytest

from repro.hardware.cpu import (
    AMD_EPYC_7502P,
    CpuSpec,
    VoltageCurve,
    ghz_to_khz,
    khz_to_ghz,
)


class TestConversions:
    def test_khz_to_ghz(self):
        assert khz_to_ghz(2_500_000) == 2.5

    def test_ghz_to_khz(self):
        assert ghz_to_khz(2.2) == 2_200_000

    def test_roundtrip(self):
        assert khz_to_ghz(ghz_to_khz(1.5)) == 1.5


class TestVoltageCurve:
    def test_interpolates_between_points(self):
        curve = VoltageCurve((1e6, 2e6), (0.8, 1.2))
        assert curve.voltage(1.5e6) == pytest.approx(1.0)

    def test_clamps_at_ends(self):
        curve = VoltageCurve((1e6, 2e6), (0.8, 1.2))
        assert curve.voltage(0.5e6) == 0.8
        assert curve.voltage(3e6) == 1.2

    def test_exact_points(self):
        curve = AMD_EPYC_7502P.voltage_curve
        assert curve.voltage(1_500_000) == pytest.approx(0.70)
        assert curve.voltage(2_500_000) == pytest.approx(1.45)

    def test_validation(self):
        with pytest.raises(ValueError):
            VoltageCurve((1e6,), (0.8,))  # too few points
        with pytest.raises(ValueError):
            VoltageCurve((2e6, 1e6), (0.8, 1.2))  # not ascending
        with pytest.raises(ValueError):
            VoltageCurve((1e6, 2e6), (0.8,))  # length mismatch
        with pytest.raises(ValueError):
            VoltageCurve((1e6, 2e6), (0.0, 1.2))  # non-positive voltage


class TestCpuSpec:
    def test_epyc_topology(self):
        spec = AMD_EPYC_7502P
        assert spec.total_cores == 32
        assert spec.total_threads == 64
        assert spec.min_freq_khz == 1_500_000
        assert spec.max_freq_khz == 2_500_000

    def test_validate_frequency_accepts_pstates(self):
        assert AMD_EPYC_7502P.validate_frequency(2_200_000) == 2_200_000

    def test_validate_frequency_rejects_others(self):
        with pytest.raises(ValueError):
            AMD_EPYC_7502P.validate_frequency(1_999_999)

    def test_nearest_frequency(self):
        assert AMD_EPYC_7502P.nearest_frequency(2_000_000) == 2_200_000
        assert AMD_EPYC_7502P.nearest_frequency(1_000_000) == 1_500_000
        assert AMD_EPYC_7502P.nearest_frequency(9_999_999) == 2_500_000

    def test_core_ids(self):
        assert list(AMD_EPYC_7502P.core_ids()) == list(range(32))

    def test_spec_validation(self):
        curve = AMD_EPYC_7502P.voltage_curve
        with pytest.raises(ValueError):
            CpuSpec("x", 0, 1, 1, (1_500_000,), curve, 100.0)
        with pytest.raises(ValueError):
            CpuSpec("x", 1, 1, 3, (1_500_000,), curve, 100.0)
        with pytest.raises(ValueError):
            CpuSpec("x", 1, 1, 1, (), curve, 100.0)
        with pytest.raises(ValueError):
            CpuSpec("x", 1, 1, 1, (2_000_000, 1_000_000), curve, 100.0)
