"""Tests for slurm.conf parsing and job descriptors."""

import pytest

from repro.slurm.config import ConfigError, SlurmConfig
from repro.slurm.job import Job, JobDescriptor, JobState


class TestSlurmConfig:
    def test_parse_paper_install_line(self):
        cfg = SlurmConfig.parse("JobSubmitPlugins=eco\n")
        assert cfg.job_submit_plugins == ("eco",)

    def test_parse_full(self):
        cfg = SlurmConfig.parse(
            """
            # comment
            ClusterName=grid.aau.dk
            SchedulerType=sched/builtin
            JobSubmitPlugins=eco,lua
            PluginTimeBudget=0.5
            DefaultTime=60
            SlurmdPort=6818
            """
        )
        assert cfg.cluster_name == "grid.aau.dk"
        assert cfg.scheduler_type == "sched/builtin"
        assert cfg.job_submit_plugins == ("eco", "lua")
        assert cfg.plugin_time_budget_s == 0.5
        assert cfg.default_time_limit_s == 3600
        assert cfg.extra["SlurmdPort"] == "6818"

    def test_defaults(self):
        cfg = SlurmConfig()
        assert cfg.scheduler_type == "sched/backfill"
        assert cfg.job_submit_plugins == ()

    def test_render_roundtrip(self):
        cfg = SlurmConfig.parse("JobSubmitPlugins=eco\nClusterName=c1\n")
        again = SlurmConfig.parse(cfg.render())
        assert again.job_submit_plugins == cfg.job_submit_plugins
        assert again.cluster_name == cfg.cluster_name

    @pytest.mark.parametrize(
        "bad",
        [
            "NotKeyValue",
            "SchedulerType=sched/magic",
            "PluginTimeBudget=soon",
            "DefaultTime=never",
        ],
    )
    def test_rejects_malformed(self, bad):
        with pytest.raises(ConfigError):
            SlurmConfig.parse(bad)


class TestJobDescriptor:
    def test_validate_accepts_sane(self):
        JobDescriptor(num_tasks=32, threads_per_core=2).validate(32)

    def test_rejects_too_many_tasks(self):
        with pytest.raises(ValueError, match="exceeds"):
            JobDescriptor(num_tasks=33).validate(32)

    def test_rejects_zero_tasks(self):
        with pytest.raises(ValueError):
            JobDescriptor(num_tasks=0).validate(32)

    def test_rejects_bad_threads(self):
        with pytest.raises(ValueError):
            JobDescriptor(threads_per_core=4).validate(32)

    def test_rejects_more_nodes_than_cluster(self):
        with pytest.raises(ValueError, match="exceeds the cluster"):
            JobDescriptor(nodes=2, num_tasks=4).validate(32, cluster_nodes=1)

    def test_accepts_multi_node_on_multi_node_cluster(self):
        JobDescriptor(nodes=2, num_tasks=64).validate(32, cluster_nodes=2)

    def test_rejects_nodes_exceeding_tasks(self):
        with pytest.raises(ValueError, match="exceeds --ntasks"):
            JobDescriptor(nodes=4, num_tasks=2).validate(32, cluster_nodes=4)

    def test_rejects_shard_too_large(self):
        with pytest.raises(ValueError, match="tasks per node"):
            JobDescriptor(nodes=2, num_tasks=80).validate(32, cluster_nodes=2)

    def test_tasks_per_node_ceil(self):
        assert JobDescriptor(nodes=2, num_tasks=33).tasks_per_node == 17
        assert JobDescriptor(nodes=1, num_tasks=7).tasks_per_node == 7

    def test_rejects_inverted_freq_window(self):
        with pytest.raises(ValueError):
            JobDescriptor(cpu_freq_min=2_500_000, cpu_freq_max=1_500_000).validate(32)

    def test_rejects_negative_time_limit(self):
        with pytest.raises(ValueError):
            JobDescriptor(time_limit_s=-1).validate(32)


class TestJobState:
    def test_terminal_states(self):
        assert JobState.COMPLETED.is_terminal
        assert JobState.FAILED.is_terminal
        assert JobState.CANCELLED.is_terminal
        assert JobState.TIMEOUT.is_terminal
        assert not JobState.PENDING.is_terminal
        assert not JobState.RUNNING.is_terminal

    def test_short_codes(self):
        assert JobState.PENDING.short == "PD"
        assert JobState.RUNNING.short == "R"
        assert JobState.COMPLETED.short == "CD"


class TestJob:
    def test_elapsed_and_energy(self):
        job = Job(job_id=1, descriptor=JobDescriptor(), submit_time=0.0)
        assert job.elapsed_s is None
        job.start_time = 10.0
        job.end_time = 110.0
        job.energy_start_j = 1000.0
        job.energy_end_j = 21000.0
        assert job.elapsed_s == 100.0
        assert job.consumed_energy_j == 20000.0

    def test_energy_never_negative(self):
        job = Job(job_id=1, descriptor=JobDescriptor(), submit_time=0.0)
        job.energy_start_j = 5.0
        job.energy_end_j = 1.0
        assert job.consumed_energy_j == 0.0
