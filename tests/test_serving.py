"""Tests for the serving layer: protocol, cache, batching, server, wire.

The acceptance bar from the serving redesign: a 200-job submit storm
answered through the batching server must be *identical* to serial
prediction, every overload answer must be an explicit ``SHED`` (never a
silent drop), and one handler must serve both v1 plain-dict and v2 typed
clients.
"""

from __future__ import annotations

import json
import os
import threading

import pytest

from repro import faults, telemetry
from repro.core.application.init_model_service import InitModelService
from repro.core.application.interfaces import (
    FileRepositoryInterface,
    LocalStorageInterface,
    PredictionProvider,
)
from repro.core.application.load_model_service import LoadModelService
from repro.core.application.slurm_config_service import SlurmConfigService
from repro.core.domain.errors import (
    ChronusError,
    ConfigValidationError,
    ModelNotFoundError,
    ProtocolError,
    ServeShedError,
)
from repro.core.domain.settings import ChronusSettings
from repro.core.domain.system_info import SystemInfo
from repro.core.factory import ModelFactory
from repro.core.repositories.memory_repository import MemoryRepository
from repro.core.storage.etc_storage import EtcStorage
from repro.serving import (
    PROTO_V1,
    PROTO_V2,
    SHED,
    ErrorResponse,
    MicroBatcher,
    ModelCache,
    PredictRequest,
    PredictResponse,
    decode_request,
    decode_response,
    encode_response,
)
from repro.serving.server import ChronusServer
from repro.serving.transport import (
    LocalTransport,
    UnixSocketServer,
    UnixSocketTransport,
)
from repro.slurm.job import JobDescriptor
from repro.slurm.plugins.base import SLURM_SUCCESS
from repro.slurm.plugins.eco import (
    JobSubmitEco,
    LegacyProviderAdapter,
    PluginState,
    validate_chronus_config,
)


@pytest.fixture(autouse=True)
def clean_process_state():
    # a real registry even under CHRONUS_TELEMETRY=0: these tests assert
    # the serving counters (same pattern as test_resilience)
    telemetry.set_registry(telemetry.MetricsRegistry())
    faults.reset()
    yield
    telemetry.set_registry(telemetry.MetricsRegistry())
    faults.reset()


def counter_value(name: str) -> float:
    entry = telemetry.find_metric(telemetry.snapshot(), "counters", name)
    return entry["value"] if entry else 0.0


# ---------------------------------------------------------------------------
# in-memory integration doubles
# ---------------------------------------------------------------------------
class MemoryLocalStorage(LocalStorageInterface):
    def __init__(self):
        self.settings = ChronusSettings()

    def load(self):
        return self.settings

    def save(self, settings):
        self.settings = settings

    def resolve_path(self, relative):
        return f"/etc/chronus/{relative}"


class DictBlobStore(FileRepositoryInterface):
    def __init__(self):
        self.blobs = {}

    def save(self, name, data):
        path = f"/blob/{name}"
        self.blobs[path] = data
        return path

    def load(self, path):
        if path not in self.blobs:
            raise ModelNotFoundError(path)
        return self.blobs[path]

    def exists(self, path):
        return path in self.blobs


def fitted_blob(rows) -> bytes:
    optimizer = ModelFactory.get_optimizer("brute-force")
    optimizer.fit(rows)
    return optimizer.serialize()


@pytest.fixture
def loaded_stack(steady_rows):
    """A SlurmConfigService with one fitted model loaded for (1, hpcg)."""
    blob = fitted_blob(steady_rows)
    files = {"/etc/chronus/optimizer/model-1.json": blob}
    local = MemoryLocalStorage()
    settings = local.load().with_loaded_model(
        1, "/etc/chronus/optimizer/model-1.json", "brute-force",
        application="hpcg",
    )
    local.save(settings.with_binary_alias(777, "hpcg"))
    reads = []

    def read(path):
        reads.append(path)
        return files[path]

    svc = SlurmConfigService(local, ModelFactory.load_optimizer, read_local=read)
    return svc, reads


# ---------------------------------------------------------------------------
# protocol
# ---------------------------------------------------------------------------
class TestProtocolRoundTrip:
    def test_request_round_trip(self):
        req = PredictRequest(
            system_id=12345, binary_hash="abc", min_perf=0.9, job_name="hpcg-1"
        )
        assert PredictRequest.from_json(req.to_json()) == req

    def test_request_defaults_round_trip(self):
        req = PredictRequest(system_id="head0")
        again = PredictRequest.from_json(req.to_json())
        assert again == req
        assert again.proto == PROTO_V2

    def test_response_round_trip(self):
        resp = PredictResponse(
            cores=28, threads_per_core=1, frequency=2_200_000,
            model_type="brute-force", batch_size=5,
        )
        assert PredictResponse.from_json(resp.to_json()) == resp

    def test_error_round_trip(self):
        err = ErrorResponse(code=SHED, message="queue full", retryable=True)
        assert ErrorResponse.from_json(err.to_json()) == err

    def test_decode_response_dispatches_on_error_key(self):
        ok = PredictResponse(cores=4, threads_per_core=2, frequency=2_500_000)
        err = ErrorResponse(code="INTERNAL", message="boom")
        assert decode_response(ok.to_json()) == ok
        assert decode_response(err.to_json()) == err

    def test_unknown_fields_tolerated(self):
        data = {
            "proto": PROTO_V2,
            "system_id": 1,
            "binary_hash": 2,
            "some_future_field": {"nested": True},
        }
        req = PredictRequest.from_dict(data)
        assert req.system_id == 1

    @pytest.mark.parametrize(
        "bad",
        [
            {"proto": PROTO_V2},  # missing system_id
            {"proto": PROTO_V2, "system_id": True},  # bool is not an id
            {"proto": PROTO_V2, "system_id": 1.5},
            {"proto": PROTO_V2, "system_id": 1, "min_perf": "fast"},
            {"proto": PROTO_V2, "system_id": 1, "job_name": 7},
        ],
    )
    def test_known_field_types_are_strict(self, bad):
        with pytest.raises(ProtocolError):
            PredictRequest.from_dict(bad)

    def test_min_perf_bounds_enforced(self):
        with pytest.raises(ProtocolError):
            PredictRequest(system_id=1, min_perf=1.5)
        with pytest.raises(ProtocolError):
            PredictRequest(system_id=1, min_perf=0.0)

    def test_response_rejects_garbage_config(self):
        with pytest.raises(ConfigValidationError):
            PredictResponse.from_dict(
                {"cores": "all of them", "threads_per_core": 1, "frequency": 1}
            )

    def test_coalescing_key_normalises_id_types(self):
        assert PredictRequest(system_id=1, binary_hash=2).key() == \
            PredictRequest(system_id="1", binary_hash="2").key()

    def test_error_mapping(self):
        assert isinstance(ErrorResponse(code=SHED).to_error(), ServeShedError)
        assert isinstance(
            ErrorResponse(code="MODEL_NOT_FOUND").to_error(), ModelNotFoundError
        )
        assert isinstance(ErrorResponse(code="INTERNAL").to_error(), ChronusError)


class TestProtocolNegotiation:
    def test_v1_plain_dict_accepted_with_deprecation(self):
        with pytest.warns(DeprecationWarning, match="chronus/1"):
            req, proto = decode_request('{"system_id": 1, "binary_hash": 2}')
        assert proto == PROTO_V1
        assert req.proto == PROTO_V1
        assert (req.system_id, req.binary_hash) == (1, 2)

    def test_v2_request_accepted_silently(self):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            req, proto = decode_request(
                json.dumps({"proto": PROTO_V2, "system_id": 9})
            )
        assert proto == PROTO_V2
        assert req.system_id == 9

    def test_unknown_proto_refused(self):
        with pytest.raises(ProtocolError, match="unsupported protocol"):
            decode_request('{"proto": "chronus/9", "system_id": 1}')

    def test_non_object_refused(self):
        with pytest.raises(ProtocolError):
            decode_request("[1, 2, 3]")
        with pytest.raises(ProtocolError):
            decode_request("{truncated")

    def test_v1_success_golden_shape(self):
        """v1 clients get exactly what the legacy CLI printed: the bare
        configuration object, no envelope."""
        resp = PredictResponse(
            cores=28, threads_per_core=1, frequency=2_200_000,
            model_type="brute-force", batch_size=7,
        )
        wire = json.loads(encode_response(resp, PROTO_V1))
        assert wire == {
            "cores": 28, "threads_per_core": 1, "frequency": 2_200_000
        }

    def test_v1_error_golden_shape(self):
        err = ErrorResponse(code=SHED, message="queue full", retryable=True)
        wire = json.loads(encode_response(err, PROTO_V1))
        assert wire == {"error": "SHED", "message": "queue full"}

    def test_v2_answers_carry_proto(self):
        resp = PredictResponse(cores=4, threads_per_core=2, frequency=2_500_000)
        assert json.loads(encode_response(resp, PROTO_V2))["proto"] == PROTO_V2
        err = ErrorResponse(code="INVALID", message="nope")
        assert json.loads(encode_response(err, PROTO_V2))["proto"] == PROTO_V2


# ---------------------------------------------------------------------------
# model cache
# ---------------------------------------------------------------------------
class TestModelCache:
    def test_hit_miss_metrics(self):
        cache = ModelCache(4, metric_prefix="mc")
        assert cache.get("a") is None
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert counter_value("mc_hits_total") == 1
        assert counter_value("mc_misses_total") == 1

    def test_lru_eviction_order(self):
        cache = ModelCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)
        assert "a" not in cache
        assert "b" in cache and "c" in cache
        assert counter_value("model_cache_evictions_total") == 1

    def test_get_refreshes_recency(self):
        cache = ModelCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # a becomes hottest
        cache.put("c", 3)
        assert "a" in cache
        assert "b" not in cache

    def test_pinned_entry_survives_pressure(self):
        cache = ModelCache(2)
        cache.pin("hot")
        cache.put("hot", 1)
        cache.put("b", 2)
        cache.put("c", 3)
        cache.put("d", 4)
        assert "hot" in cache
        assert len(cache) == 2

    def test_all_pinned_may_exceed_capacity(self):
        cache = ModelCache(1)
        for key in ("a", "b", "c"):
            cache.pin(key)
            cache.put(key, key)
        assert len(cache) == 3  # pins win over capacity

    def test_put_over_pinned_capacity_drops_coldest_unpinned(self):
        """When every resident entry is pinned, the newcomer itself is the
        only eviction candidate — pins always win over capacity."""
        cache = ModelCache(1)
        cache.pin("a")
        cache.put("a", 1)
        cache.put("b", 2)
        assert "a" in cache
        assert "b" not in cache

    def test_unpin_reapplies_capacity(self):
        cache = ModelCache(1)
        for key in ("a", "b"):
            cache.pin(key)
            cache.put(key, key)
        assert len(cache) == 2  # both pinned, over capacity
        cache.unpin("a")
        assert len(cache) == 1
        assert "a" not in cache

    def test_get_or_load_loads_once(self):
        cache = ModelCache(4)
        loads = []

        def loader():
            loads.append(1)
            return "model"

        assert cache.get_or_load("k", loader) == "model"
        assert cache.get_or_load("k", loader) == "model"
        assert len(loads) == 1

    def test_unbounded_never_evicts(self):
        cache = ModelCache(None)
        for i in range(100):
            cache.put(i, i)
        assert len(cache) == 100

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            ModelCache(0)


# ---------------------------------------------------------------------------
# micro-batcher
# ---------------------------------------------------------------------------
def echo_handler(requests):
    return [
        PredictResponse(cores=1, threads_per_core=1, frequency=1_500_000)
        for _ in requests
    ]


class TestMicroBatcher:
    def test_inline_mode_without_start(self):
        sizes = []

        def handler(requests):
            sizes.append(len(requests))
            return echo_handler(requests)

        batcher = MicroBatcher(handler)
        answer = batcher.submit(PredictRequest(system_id=1))
        assert isinstance(answer, PredictResponse)
        assert sizes == [1]
        assert threading.active_count() == threading.active_count()  # no leak

    def test_concurrent_submits_coalesce(self):
        sizes = []
        gate = threading.Barrier(9)

        def handler(requests):
            sizes.append(len(requests))
            return echo_handler(requests)

        batcher = MicroBatcher(handler, max_batch=8, max_wait_ms=50.0)
        batcher.start()
        try:
            results = [None] * 8

            def worker(i):
                gate.wait()
                results[i] = batcher.submit(PredictRequest(system_id=i))

            threads = [
                threading.Thread(target=worker, args=(i,)) for i in range(8)
            ]
            for t in threads:
                t.start()
            gate.wait()
            for t in threads:
                t.join(timeout=10.0)
        finally:
            batcher.stop()
        assert all(isinstance(r, PredictResponse) for r in results)
        assert max(sizes) > 1  # the storm actually batched

    def test_full_queue_sheds_explicitly(self):
        release = threading.Event()
        entered = threading.Event()

        def slow_handler(requests):
            entered.set()
            release.wait(10.0)
            return echo_handler(requests)

        batcher = MicroBatcher(
            slow_handler, max_batch=1, max_wait_ms=0.0, queue_limit=1
        )
        batcher.start()
        try:
            # occupy the handler with one request...
            blocker = threading.Thread(
                target=batcher.submit, args=(PredictRequest(system_id=0),)
            )
            blocker.start()
            assert entered.wait(5.0)
            # ...fill the queue...
            filler = threading.Thread(
                target=batcher.submit, args=(PredictRequest(system_id=1),)
            )
            filler.start()
            deadline = 50
            while len(batcher._queue) < 1 and deadline:
                threading.Event().wait(0.01)
                deadline -= 1
            # ...and the next arrival is shed, immediately and explicitly
            answer = batcher.submit(PredictRequest(system_id=2))
            assert isinstance(answer, ErrorResponse)
            assert answer.code == SHED
            assert answer.retryable
            assert counter_value("serve_shed_total") == 1
        finally:
            release.set()
            blocker.join(timeout=5.0)
            filler.join(timeout=5.0)
            batcher.stop()

    def test_handler_crash_answers_every_waiter(self):
        def broken(requests):
            raise RuntimeError("optimizer exploded")

        batcher = MicroBatcher(broken)
        answer = batcher.submit(PredictRequest(system_id=1))
        assert isinstance(answer, ErrorResponse)
        assert answer.code == "INTERNAL"
        assert "optimizer exploded" in answer.message
        assert counter_value("serve_handler_errors_total") == 1

    def test_handler_length_mismatch_is_internal_error(self):
        batcher = MicroBatcher(lambda requests: [])
        answer = batcher.submit(PredictRequest(system_id=1))
        assert isinstance(answer, ErrorResponse)
        assert answer.code == "INTERNAL"

    def test_stop_drains_queue(self):
        done = []

        def handler(requests):
            done.append(len(requests))
            return echo_handler(requests)

        batcher = MicroBatcher(handler, max_wait_ms=1.0)
        batcher.start()
        answers = []
        threads = [
            threading.Thread(
                target=lambda: answers.append(
                    batcher.submit(PredictRequest(system_id=1))
                )
            )
            for _ in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10.0)
        batcher.stop()
        assert len(answers) == 4
        assert all(isinstance(a, PredictResponse) for a in answers)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            MicroBatcher(echo_handler, max_batch=0)
        with pytest.raises(ValueError):
            MicroBatcher(echo_handler, max_wait_ms=-1)
        with pytest.raises(ValueError):
            MicroBatcher(echo_handler, queue_limit=0)


# ---------------------------------------------------------------------------
# typed service entry points
# ---------------------------------------------------------------------------
class TestServicePredict:
    def test_predict_matches_run(self, loaded_stack):
        svc, _ = loaded_stack
        best = svc.run(1, 777)
        resp = svc.predict(PredictRequest(system_id=1, binary_hash=777))
        assert (resp.cores, resp.threads_per_core, resp.frequency) == (
            best.cores, best.threads_per_core, best.frequency
        )
        assert resp.model_type == "brute-force"

    def test_batch_coalesces_duplicates(self, loaded_stack):
        svc, reads = loaded_stack
        requests = [
            PredictRequest(system_id=1, binary_hash=777, job_name=f"j{i}")
            for i in range(10)
        ]
        answers = svc.predict_batch(requests)
        assert len(answers) == 10
        assert len(set((a.cores, a.threads_per_core, a.frequency) for a in answers)) == 1
        assert all(a.batch_size == 10 for a in answers)
        assert len(reads) == 1  # one optimizer load for ten jobs
        assert counter_value("serve_coalesced_total") == 9

    def test_batch_failures_are_per_request(self, steady_rows):
        """A request whose model is missing fails explicitly while its
        batch-mates still succeed."""
        blob = fitted_blob(steady_rows)
        files = {"/p1": blob, "/p2": blob}
        local = MemoryLocalStorage()
        settings = ChronusSettings(loaded_models={
            "1": {"path": "/p1", "type": "brute-force"},
            "2": {"path": "/p2", "type": "brute-force"},
        })
        local.save(settings)
        svc = SlurmConfigService(
            local, ModelFactory.load_optimizer, read_local=files.__getitem__
        )
        answers = svc.predict_batch([
            PredictRequest(system_id=1),
            PredictRequest(system_id=404),
        ])
        assert isinstance(answers[0], PredictResponse)
        assert isinstance(answers[1], ErrorResponse)
        assert answers[1].code == "MODEL_NOT_FOUND"

    def test_hash_and_id_share_one_cache_entry(self, loaded_stack):
        """A plugin-side system hash resolving through the binary alias
        must hit the same cached optimizer as the repository id."""
        svc, reads = loaded_stack
        svc.predict(PredictRequest(system_id=1, binary_hash=777))
        svc.predict(PredictRequest(system_id=987654321, binary_hash=777))
        assert len(reads) == 1
        assert len(svc.cache) == 1


# ---------------------------------------------------------------------------
# the server
# ---------------------------------------------------------------------------
class TestChronusServer:
    def test_storm_matches_serial_oracle(self, steady_rows):
        """≥200 concurrent predicts through the batching queue answer
        exactly what serial evaluation answers, order-independent."""
        svc_serving, _ = _fresh_stack(steady_rows)
        svc_oracle, _ = _fresh_stack(steady_rows)
        floors = [None, 0.5, 0.9, 1.0]
        requests = [
            PredictRequest(
                system_id=1, binary_hash=777,
                min_perf=floors[i % len(floors)], job_name=f"job-{i}",
            )
            for i in range(200)
        ]
        oracle = [svc_oracle.predict(r) for r in requests]

        # queue_limit must cover the whole storm: this test asserts
        # parity, the admission-control test asserts explicit SHEDs
        server = ChronusServer(
            svc_serving, max_batch=32, max_wait_ms=5.0, queue_limit=256
        )
        results: list = [None] * len(requests)
        gate = threading.Barrier(len(requests))

        def worker(i):
            gate.wait()
            results[i] = server.predict(requests[i])

        with server:
            threads = [
                threading.Thread(target=worker, args=(i,))
                for i in range(len(requests))
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=30.0)

        assert all(isinstance(r, PredictResponse) for r in results)
        for got, want in zip(results, oracle):
            assert (got.cores, got.threads_per_core, got.frequency,
                    got.model_type) == (
                want.cores, want.threads_per_core, want.frequency,
                want.model_type,
            )
        snap = telemetry.snapshot()
        batch_hist = telemetry.find_metric(snap, "histograms", "serve_batch_size")
        assert batch_hist is not None
        assert batch_hist["count"] < 200  # the storm actually batched
        assert batch_hist["max"] > 1

    def test_inline_equals_started(self, steady_rows):
        request = PredictRequest(system_id=1, binary_hash=777)
        svc_a, _ = _fresh_stack(steady_rows)
        inline = ChronusServer(svc_a).predict(request)
        svc_b, _ = _fresh_stack(steady_rows)
        with ChronusServer(svc_b) as server:
            started = server.predict(request)
        assert (inline.cores, inline.threads_per_core, inline.frequency) == (
            started.cores, started.threads_per_core, started.frequency
        )

    def test_shed_fault_is_explicit_and_counted(self, loaded_stack):
        svc, _ = loaded_stack
        server = ChronusServer(svc)
        faults.configure("serve.shed=1")
        answer = server.predict(PredictRequest(system_id=1))
        assert isinstance(answer, ErrorResponse)
        assert answer.code == SHED and answer.retryable
        assert counter_value("serve_shed_total") == 1

    def test_server_owns_a_bounded_cache(self, loaded_stack):
        svc, _ = loaded_stack
        server = ChronusServer(svc, cache_capacity=3)
        assert svc.cache is server.model_cache
        assert server.model_cache.capacity == 3

    def test_handle_wire_v2(self, loaded_stack):
        svc, _ = loaded_stack
        server = ChronusServer(svc)
        line = PredictRequest(system_id=1, binary_hash=777).to_json()
        answer = json.loads(server.handle_wire(line))
        assert answer["proto"] == PROTO_V2
        assert set(answer) >= {"cores", "threads_per_core", "frequency",
                               "model_type", "batch_size"}

    def test_handle_wire_v1_golden(self, loaded_stack):
        """A legacy plain-dict client gets the bare config back — the
        exact bytes the pre-server CLI printed."""
        svc, _ = loaded_stack
        server = ChronusServer(svc)
        with pytest.warns(DeprecationWarning):
            answer = json.loads(
                server.handle_wire('{"system_id": 1, "binary_hash": 777}')
            )
        assert set(answer) == {"cores", "threads_per_core", "frequency"}
        assert answer == json.loads(svc.run(1, 777).to_json())

    def test_handle_wire_invalid_is_explicit(self, loaded_stack):
        svc, _ = loaded_stack
        server = ChronusServer(svc)
        answer = json.loads(server.handle_wire("{not json"))
        assert answer["error"] == "INVALID"
        assert counter_value("serve_protocol_errors_total") == 1
        answer = json.loads(
            server.handle_wire('{"proto": "chronus/99", "system_id": 1}')
        )
        assert answer["error"] == "INVALID"

    def test_handle_wire_control_ops(self, loaded_stack):
        svc, _ = loaded_stack
        server = ChronusServer(svc)
        pong = json.loads(server.handle_wire('{"op": "ping"}'))
        assert pong["ok"] and pong["op"] == "ping"
        assert not server.shutdown_requested.is_set()
        bye = json.loads(server.handle_wire('{"op": "shutdown"}'))
        assert bye["ok"]
        assert server.shutdown_requested.is_set()
        bad = json.loads(server.handle_wire('{"op": "dance"}'))
        assert bad["error"] == "INVALID"

    def test_preload_pins_model(self, steady_rows):
        repo = MemoryRepository()
        repo.save_system(SystemInfo("TestCPU", 32, 2, (1_500_000.0, 2_500_000.0)))
        for row in steady_rows:
            repo.save_benchmark(row)
        blobs = DictBlobStore()
        meta = InitModelService(
            repo, blobs, ModelFactory.get_optimizer
        ).run("brute-force", 1)
        local = MemoryLocalStorage()
        files: dict = {}
        load = LoadModelService(
            repo, blobs, local,
            write_local=lambda p, d: files.update({p: d}),
            replace=lambda src, dst: files.update({dst: files.pop(src)}),
        )
        svc = SlurmConfigService(
            local, ModelFactory.load_optimizer, read_local=files.__getitem__
        )
        server = ChronusServer(svc, load_model_service=load, cache_capacity=1)
        key = server.preload(meta.model_id)
        assert key == ("1", "hpcg")
        assert key in server.model_cache
        assert key in server.model_cache.pinned()
        # capacity pressure cannot evict the pinned model
        server.model_cache.put(("9", "other"), object())
        server.model_cache.put(("10", "other"), object())
        assert key in server.model_cache
        # the first real request is already a hit: no further local reads
        hits_before = counter_value("model_cache_hits_total")
        resp = server.predict(PredictRequest(system_id=1))
        assert isinstance(resp, PredictResponse)
        assert counter_value("model_cache_hits_total") == hits_before + 1

    def test_preload_without_loader_refused(self, loaded_stack):
        svc, _ = loaded_stack
        server = ChronusServer(svc)
        with pytest.raises(ProtocolError, match="LoadModelService"):
            server.preload(1)


def _fresh_stack(rows):
    blob = fitted_blob(rows)
    files = {"/etc/chronus/optimizer/model-1.json": blob}
    local = MemoryLocalStorage()
    settings = local.load().with_loaded_model(
        1, "/etc/chronus/optimizer/model-1.json", "brute-force",
        application="hpcg",
    )
    local.save(settings.with_binary_alias(777, "hpcg"))
    svc = SlurmConfigService(
        local, ModelFactory.load_optimizer, read_local=files.__getitem__
    )
    return svc, files


# ---------------------------------------------------------------------------
# transports
# ---------------------------------------------------------------------------
class TestUnixSocketTransport:
    @pytest.fixture
    def daemon(self, loaded_stack, tmp_path):
        svc, _ = loaded_stack
        server = ChronusServer(svc)
        socket_path = str(tmp_path / "chronus.sock")
        uds = UnixSocketServer(server, socket_path).start()
        # wait for the bind
        client = UnixSocketTransport(socket_path, timeout_s=5.0)
        for _ in range(100):
            try:
                client.ping()
                break
            except OSError:
                threading.Event().wait(0.02)
        yield server, uds, client
        server.shutdown_requested.set()
        uds.stop()

    def test_predict_round_trip(self, daemon, loaded_stack):
        svc, _ = loaded_stack
        _, _, client = daemon
        resp = client.predict(PredictRequest(system_id=1, binary_hash=777))
        assert isinstance(resp, PredictResponse)
        best = svc.run(1, 777)
        assert (resp.cores, resp.threads_per_core, resp.frequency) == (
            best.cores, best.threads_per_core, best.frequency
        )

    def test_v1_client_over_the_wire(self, daemon):
        _, _, client = daemon
        answer = json.loads(
            client.request_raw('{"system_id": 1, "binary_hash": 777}')
        )
        assert set(answer) == {"cores", "threads_per_core", "frequency"}

    def test_ping_reports_cache(self, daemon):
        _, _, client = daemon
        pong = client.ping()
        assert pong["ok"]
        assert "models_cached" in pong

    def test_shutdown_stops_daemon_and_unlinks_socket(self, daemon):
        server, uds, client = daemon
        assert client.shutdown()["ok"]
        assert server.shutdown_requested.is_set()
        uds.stop()
        assert not os.path.exists(client.socket_path)

    def test_transport_is_a_prediction_provider(self, daemon, loaded_stack):
        svc, _ = loaded_stack
        _, _, client = daemon
        assert isinstance(client, PredictionProvider)
        assert isinstance(LocalTransport(ChronusServer(svc)), PredictionProvider)


# ---------------------------------------------------------------------------
# the plugin's typed port
# ---------------------------------------------------------------------------
GOOD_JSON = '{"cores": 32, "threads_per_core": 1, "frequency": 2200000}'


class _LegacyStub:
    def __init__(self, payload=GOOD_JSON):
        self.payload = payload
        self.calls = []

    def slurm_config(self, system_id, binary_hash, min_perf=None):
        self.calls.append((system_id, binary_hash, min_perf))
        return self.payload


class _ShedProvider:
    def predict(self, request):
        return ErrorResponse(code=SHED, message="queue full", retryable=True)


class TestEcoTypedPort:
    def test_legacy_provider_is_adapted(self, node):
        stub = _LegacyStub()
        plugin = JobSubmitEco(node, stub)
        assert isinstance(plugin.provider, LegacyProviderAdapter)
        desc = JobDescriptor(comment="chronus", binary="/opt/hpcg/xhpcg")
        assert plugin.job_submit(desc, 1000) == SLURM_SUCCESS
        assert desc.num_tasks == 32
        assert len(stub.calls) == 1

    def test_typed_provider_used_directly(self, node):
        class Typed:
            def predict(self, request):
                assert isinstance(request, PredictRequest)
                return PredictResponse(
                    cores=16, threads_per_core=2, frequency=2_200_000
                )

        provider = Typed()
        plugin = JobSubmitEco(node, provider)
        assert plugin.provider is provider
        desc = JobDescriptor(comment="chronus", binary="/x")
        plugin.job_submit(desc, 1000)
        assert (desc.num_tasks, desc.threads_per_core) == (16, 2)

    def test_shed_answer_engages_fallback(self, node):
        """A SHED ErrorResponse is an explicit refusal: the job goes
        through unmodified and the breaker counts the failure."""
        plugin = JobSubmitEco(node, _ShedProvider(), PluginState("activated"))
        for _ in range(3):
            desc = JobDescriptor(num_tasks=4, binary="/x")
            assert plugin.job_submit(desc, 1000) == SLURM_SUCCESS
            assert desc.num_tasks == 4  # untouched
        assert counter_value("eco_fallback_total") == 3
        # three consecutive failures open the breaker: the next submit
        # short-circuits without calling the provider at all
        desc = JobDescriptor(num_tasks=4, binary="/x")
        plugin.job_submit(desc, 1000)
        assert counter_value("eco_short_circuits_total") == 1

    def test_validate_accepts_typed_response(self, node):
        resp = PredictResponse(cores=4, threads_per_core=2, frequency=2_200_000)
        assert validate_chronus_config(resp, node) == (4, 2, 2_200_000)

    def test_validate_bounds_still_checked(self, node):
        resp = PredictResponse(
            cores=10_000, threads_per_core=1, frequency=2_200_000
        )
        with pytest.raises(ConfigValidationError, match="cores"):
            validate_chronus_config(resp, node)

    def test_validate_accepts_mapping_and_raw(self, node):
        assert validate_chronus_config(json.loads(GOOD_JSON), node)[0] == 32
        assert validate_chronus_config(GOOD_JSON, node)[0] == 32


# ---------------------------------------------------------------------------
# load-model atomic publication (regression)
# ---------------------------------------------------------------------------
class TestAtomicModelPublication:
    def _stack(self, tmp_path, steady_rows):
        repo = MemoryRepository()
        repo.save_system(SystemInfo("TestCPU", 32, 2, (1_500_000.0, 2_500_000.0)))
        for row in steady_rows:
            repo.save_benchmark(row)
        blobs = DictBlobStore()
        meta = InitModelService(
            repo, blobs, ModelFactory.get_optimizer
        ).run("brute-force", 1)
        local = EtcStorage(str(tmp_path / "etc" / "chronus"))
        return repo, blobs, local, meta

    @staticmethod
    def _write(path, data):
        os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
        with open(path, "wb") as fh:
            fh.write(data)

    def test_success_leaves_no_tmp_file(self, tmp_path, steady_rows):
        repo, blobs, local, meta = self._stack(tmp_path, steady_rows)
        load = LoadModelService(repo, blobs, local, write_local=self._write)
        _, path = load.run(meta.model_id)
        assert os.path.exists(path)
        assert not os.path.exists(path + ".tmp")
        assert open(path, "rb").read() == blobs.load(meta.blob_path)

    def test_crash_mid_write_never_truncates_published_model(
        self, tmp_path, steady_rows
    ):
        """The regression: a crash while re-loading a model must leave the
        previously published artifact intact, never a truncated file."""
        repo, blobs, local, meta = self._stack(tmp_path, steady_rows)
        load = LoadModelService(repo, blobs, local, write_local=self._write)
        _, path = load.run(meta.model_id)
        good = open(path, "rb").read()

        def crashing_write(p, data):
            self._write(p, data[: len(data) // 2])
            raise OSError("disk full")

        crashy = LoadModelService(repo, blobs, local, write_local=crashing_write)
        with pytest.raises(OSError):
            crashy.run(meta.model_id)
        # the published artifact under the final name is bit-identical
        assert open(path, "rb").read() == good
        # and the optimizer still deserializes
        ModelFactory.load_optimizer(meta.model_type, open(path, "rb").read())


# ---------------------------------------------------------------------------
# PR6: batched hot path parity + framed wire + warm step
# ---------------------------------------------------------------------------
class TestBatchBitIdentity:
    """predict_batch answers must equal per-request predict answers
    field-for-field (bar batch_size, which records the dispatch width)."""

    @staticmethod
    def _fields(answer):
        return (
            answer.cores, answer.threads_per_core, answer.frequency,
            answer.model_type, answer.model_id, answer.model_version,
            answer.proto,
        )

    def test_mixed_floors_bit_identical(self, loaded_stack):
        svc, _ = loaded_stack
        floors = [None, 0.5, 0.8, 0.9, 0.95, 1.0]
        requests = [
            PredictRequest(
                system_id=1, binary_hash=777,
                min_perf=floors[i % len(floors)], job_name=f"j{i}",
            )
            for i in range(24)
        ]
        scalar = [svc.predict(r) for r in requests]
        batched = svc.predict_batch(requests)
        assert all(isinstance(a, PredictResponse) for a in batched)
        for got, want in zip(batched, scalar):
            assert self._fields(got) == self._fields(want)
        assert all(a.batch_size == len(requests) for a in batched)

    def test_batch_groups_by_model_and_records_metrics(self, steady_rows):
        blob = fitted_blob(steady_rows)
        files = {"/p1": blob, "/p2": blob}
        local = MemoryLocalStorage()
        local.save(ChronusSettings(loaded_models={
            "1": {"path": "/p1", "type": "brute-force"},
            "2": {"path": "/p2", "type": "brute-force"},
        }))
        svc = SlurmConfigService(
            local, ModelFactory.load_optimizer, read_local=files.__getitem__
        )
        requests = [
            PredictRequest(system_id=1 + (i % 2), job_name=f"j{i}")
            for i in range(8)
        ]
        scalar = [svc.predict(r) for r in requests]
        batched = svc.predict_batch(requests)
        for got, want in zip(batched, scalar):
            assert self._fields(got) == self._fields(want)
        # 8 requests coalesce to 2 distinct keys; each representative is
        # answered off the vectorized path, the rest share its answer
        assert counter_value("serve_batch_vectorized_total") == 2
        assert counter_value("serve_coalesced_total") == 6

    def test_single_request_batch(self, loaded_stack):
        svc, _ = loaded_stack
        request = PredictRequest(system_id=1, binary_hash=777)
        (batched,) = svc.predict_batch([request])
        assert self._fields(batched) == self._fields(svc.predict(request))


class TestServiceWarm:
    def test_warm_primes_the_cache(self, loaded_stack):
        svc, reads = loaded_stack
        key = svc.warm(1, 777)
        assert key == ("1", "hpcg")
        assert len(reads) == 1
        assert counter_value("model_warm_total") == 1
        # the warmed optimizer serves predicts without another load
        svc.predict(PredictRequest(system_id=1, binary_hash=777))
        assert len(reads) == 1

    def test_warm_unknown_model_raises(self, steady_rows):
        # two distinct models loaded: the single-model fallback cannot
        # mask a genuinely unknown system id
        blob = fitted_blob(steady_rows)
        files = {"/p1": blob, "/p2": blob}
        local = MemoryLocalStorage()
        local.save(ChronusSettings(loaded_models={
            "1": {"path": "/p1", "type": "brute-force"},
            "2": {"path": "/p2", "type": "brute-force"},
        }))
        svc = SlurmConfigService(
            local, ModelFactory.load_optimizer, read_local=files.__getitem__
        )
        from repro.core.domain.errors import ModelNotFoundError

        with pytest.raises(ModelNotFoundError):
            svc.warm(404)


class TestFramedWire:
    @pytest.fixture
    def daemon(self, loaded_stack, tmp_path):
        svc, _ = loaded_stack
        server = ChronusServer(svc)
        socket_path = str(tmp_path / "chronus-framed.sock")
        uds = UnixSocketServer(server, socket_path).start()
        probe = UnixSocketTransport(socket_path, timeout_s=5.0)
        for _ in range(100):
            try:
                probe.ping()
                break
            except OSError:
                threading.Event().wait(0.02)
        yield socket_path
        server.shutdown_requested.set()
        uds.stop()

    def test_framed_predict_matches_line_predict(self, daemon):
        line_client = UnixSocketTransport(daemon, timeout_s=5.0)
        framed_client = UnixSocketTransport(daemon, timeout_s=5.0, framed=True)
        request = PredictRequest(system_id=1, binary_hash=777)
        a = line_client.predict(request)
        b = framed_client.predict(request)
        assert isinstance(b, PredictResponse)
        assert (a.cores, a.threads_per_core, a.frequency) == (
            b.cores, b.threads_per_core, b.frequency
        )

    def test_framings_mix_on_one_connection(self, daemon):
        import socket as socketlib

        from repro.serving.transport import encode_frame

        sock = socketlib.socket(socketlib.AF_UNIX, socketlib.SOCK_STREAM)
        sock.settimeout(5.0)
        try:
            sock.connect(daemon)
            # framed request first ...
            sock.sendall(encode_frame('{"op": "ping"}'))
            header = b""
            while len(header) < 4:
                header += sock.recv(4 - len(header))
            length = int.from_bytes(header, "big")
            payload = b""
            while len(payload) < length:
                payload += sock.recv(length - len(payload))
            assert json.loads(payload)["ok"]
            # ... then a JSON line on the same connection
            sock.sendall(b'{"op": "ping"}\n')
            answer = b""
            while not answer.endswith(b"\n"):
                answer += sock.recv(4096)
            assert json.loads(answer)["ok"]
        finally:
            sock.close()

    def test_cap_preserves_the_framing_discriminant(self):
        """Every legal frame length must encode with a 0x00 first byte —
        that byte is what lets the server tell frames from JSON lines."""
        from repro.core.domain.errors import ProtocolError
        from repro.serving.transport import MAX_FRAME_BYTES, encode_frame

        assert MAX_FRAME_BYTES < (1 << 24)
        header = encode_frame(b"x" * 1024)[:4]
        assert header[0] == 0x00
        with pytest.raises(ProtocolError, match="exceeds"):
            encode_frame(b"x" * (MAX_FRAME_BYTES + 1))

    def test_large_frame_grows_the_buffer(self, daemon):
        """A request bigger than the reader's initial 64 KiB buffer must
        still parse (buffer doubles, then keeps serving)."""
        framed_client = UnixSocketTransport(daemon, timeout_s=5.0, framed=True)
        request = PredictRequest(
            system_id=1, binary_hash=777, job_name="j" * (128 * 1024)
        )
        answer = framed_client.predict(request)
        assert isinstance(answer, PredictResponse)
