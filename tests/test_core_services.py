"""Tests for the application services with in-memory fakes."""

import pytest

from repro.core.application.benchmark_service import BenchmarkService
from repro.core.application.init_model_service import InitModelService
from repro.core.application.interfaces import (
    ApplicationRunnerInterface,
    FileRepositoryInterface,
    LocalStorageInterface,
    RunnerResult,
    SystemInfoInterface,
    SystemServiceInterface,
)
from repro.core.application.load_model_service import LoadModelService
from repro.core.application.settings_service import SettingsService
from repro.core.application.slurm_config_service import SlurmConfigService
from repro.core.domain.configuration import Configuration
from repro.core.domain.errors import (
    ChronusError,
    ModelNotFoundError,
    NoBenchmarksError,
    SystemNotFoundError,
)
from repro.core.domain.run import EnergySample
from repro.core.domain.settings import ChronusSettings
from repro.core.domain.system_info import SystemInfo
from repro.core.factory import ModelFactory
from repro.core.repositories.memory_repository import MemoryRepository

SYSTEM = SystemInfo("TestCPU", 4, 2, (1_500_000.0, 2_500_000.0))


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t


class FakeRunner(ApplicationRunnerInterface):
    """Deterministic runner: runtime 10 s, gflops = cores * GHz."""

    application = "hpcg"

    def __init__(self, clock: FakeClock, fail_configs=()):
        self.clock = clock
        self.fail_configs = set(fail_configs)
        self._jobs = {}
        self._next = 1

    def submit(self, configuration):
        h = self._next
        self._next += 1
        self._jobs[h] = (configuration, self.clock.t + 10.0)
        return h

    def is_done(self, handle):
        return self.clock.t >= self._jobs[handle][1]

    def advance(self, seconds):
        self.clock.t += seconds

    def result(self, handle):
        cfg, _ = self._jobs[handle]
        if cfg in self.fail_configs:
            return RunnerResult(0.0, 10.0, False)
        return RunnerResult(cfg.cores * cfg.frequency_ghz, 10.0, True)


class FakeSystemService(SystemServiceInterface):
    def __init__(self, clock: FakeClock):
        self.clock = clock
        self.samples_taken = 0

    def sample(self):
        self.samples_taken += 1
        return EnergySample(self.clock.t, 100.0, 50.0, 55.0)


class FakeSystemInfo(SystemInfoInterface):
    def fetch(self):
        return SYSTEM


class DictBlobStore(FileRepositoryInterface):
    def __init__(self):
        self.blobs = {}

    def save(self, name, data):
        path = f"/blob/{name}"
        self.blobs[path] = data
        return path

    def load(self, path):
        if path not in self.blobs:
            raise ModelNotFoundError(path)
        return self.blobs[path]

    def exists(self, path):
        return path in self.blobs


class DictLocalStorage(LocalStorageInterface):
    def __init__(self):
        self.settings = ChronusSettings()

    def load(self):
        return self.settings

    def save(self, settings):
        self.settings = settings

    def resolve_path(self, relative):
        return f"/etc/chronus/{relative}"


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def repo():
    return MemoryRepository()


@pytest.fixture
def bench_service(repo, clock):
    return BenchmarkService(
        repo, FakeRunner(clock), FakeSystemService(clock), FakeSystemInfo(),
        sample_interval_s=3.0,
    )


class TestBenchmarkService:
    def test_default_configurations_full_sweep(self, bench_service):
        configs = bench_service.default_configurations()
        # 4 cores x 2 freqs x 2 tpc
        assert len(configs) == 16

    def test_run_benchmarks_persists(self, bench_service, repo, clock):
        configs = [Configuration(2, 1, 2_500_000), Configuration(4, 1, 2_500_000)]
        results = bench_service.run_benchmarks(configs, clock=clock)
        assert len(results) == 2
        assert len(repo.benchmarks_for_system(1, "hpcg")) == 2
        assert results[1].gflops == pytest.approx(4 * 2.5)

    def test_sampling_cadence(self, repo, clock):
        service = FakeSystemService(clock)
        bs = BenchmarkService(
            repo, FakeRunner(clock), service, FakeSystemInfo(), sample_interval_s=2.0
        )
        run = bs.run_one(Configuration(1, 1, 2_500_000), clock=clock)
        # 10 s runtime at 2 s cadence -> 5 samples
        assert len(run.samples) == 5
        assert run.runtime_s == pytest.approx(10.0)

    def test_failed_run_skipped(self, repo, clock):
        bad = Configuration(2, 1, 2_500_000)
        runner = FakeRunner(clock, fail_configs=[bad])
        bs = BenchmarkService(repo, runner, FakeSystemService(clock), FakeSystemInfo())
        results = bs.run_benchmarks([bad, Configuration(4, 1, 2_500_000)], clock=clock)
        assert len(results) == 1
        assert results[0].configuration.cores == 4

    def test_empty_configuration_list_rejected(self, bench_service, clock):
        with pytest.raises(ChronusError, match="no configurations"):
            bench_service.run_benchmarks([], clock=clock)

    def test_invalid_interval(self, repo, clock):
        with pytest.raises(ValueError):
            BenchmarkService(
                repo, FakeRunner(clock), FakeSystemService(clock), FakeSystemInfo(),
                sample_interval_s=0.0,
            )


@pytest.fixture
def populated_repo(bench_service, repo, clock):
    bench_service.run_benchmarks(
        [Configuration(c, t, f) for c in (1, 2, 4) for f in (1_500_000, 2_500_000)
         for t in (1, 2)],
        clock=clock,
    )
    return repo


class TestInitModelService:
    def test_builds_and_stores(self, populated_repo):
        blobs = DictBlobStore()
        service = InitModelService(populated_repo, blobs, ModelFactory.get_optimizer)
        meta = service.run("brute-force", 1, created_at=42.0)
        assert meta.model_id == 1
        assert meta.model_type == "brute-force"
        assert meta.training_points == 12
        assert blobs.exists(meta.blob_path)
        assert populated_repo.get_model_metadata(1) == meta

    def test_no_benchmarks_error(self, repo):
        repo.save_system(SYSTEM)
        service = InitModelService(repo, DictBlobStore(), ModelFactory.get_optimizer)
        with pytest.raises(NoBenchmarksError):
            service.run("brute-force", 1)

    def test_unknown_system_error(self, repo):
        service = InitModelService(repo, DictBlobStore(), ModelFactory.get_optimizer)
        with pytest.raises(SystemNotFoundError):
            service.run("brute-force", 99)

    def test_model_ids_increment(self, populated_repo):
        blobs = DictBlobStore()
        service = InitModelService(populated_repo, blobs, ModelFactory.get_optimizer)
        a = service.run("brute-force", 1)
        b = service.run("linear-regression", 1)
        assert (a.model_id, b.model_id) == (1, 2)


class TestLoadModelService:
    def test_load_flow(self, populated_repo):
        blobs = DictBlobStore()
        init = InitModelService(populated_repo, blobs, ModelFactory.get_optimizer)
        meta = init.run("brute-force", 1)

        local = DictLocalStorage()
        written = {}
        load = LoadModelService(
            populated_repo, blobs, local,
            write_local=lambda p, d: written.update({p: d}),
            replace=lambda src, dst: written.update({dst: written.pop(src)}),
        )
        metadata, path = load.run(meta.model_id)
        assert metadata == meta
        assert path in written
        entry = local.load().loaded_model_for(1)
        assert entry["path"] == path
        assert entry["type"] == "brute-force"
        # the settings projection carries the registry identity the
        # serving cache tags loaded optimizers with
        assert entry["model_id"] == meta.model_id
        assert entry["version"] == meta.version

    def test_unknown_model(self, populated_repo):
        load = LoadModelService(
            populated_repo, DictBlobStore(), DictLocalStorage(),
            write_local=lambda p, d: None, replace=lambda src, dst: None,
        )
        with pytest.raises(ModelNotFoundError):
            load.run(404)


class TestSlurmConfigService:
    def _loaded(self, populated_repo):
        blobs = DictBlobStore()
        init = InitModelService(populated_repo, blobs, ModelFactory.get_optimizer)
        meta = init.run("brute-force", 1)
        local = DictLocalStorage()
        files = {}
        load = LoadModelService(
            populated_repo, blobs, local,
            write_local=lambda p, d: files.update({p: d}),
            replace=lambda src, dst: files.update({dst: files.pop(src)}),
        )
        load.run(meta.model_id)
        return local, files

    def test_predicts_best(self, populated_repo):
        local, files = self._loaded(populated_repo)
        svc = SlurmConfigService(
            local, ModelFactory.load_optimizer, read_local=lambda p: files[p]
        )
        cfg = svc.run(1, 12345)
        # FakeRunner gflops = cores*GHz, all powers equal -> best is most cores
        # at highest frequency
        assert cfg == Configuration(4, 2, 2_500_000) or cfg.cores == 4

    def test_json_output(self, populated_repo):
        local, files = self._loaded(populated_repo)
        svc = SlurmConfigService(
            local, ModelFactory.load_optimizer, read_local=lambda p: files[p]
        )
        import json

        out = json.loads(svc.run_json(1, "abc"))
        assert set(out) == {"cores", "threads_per_core", "frequency"}

    def test_unknown_system_falls_back_to_single_model(self, populated_repo):
        """A plugin-side hash that is not the repo id still resolves when
        exactly one model is loaded (single-node deployment)."""
        local, files = self._loaded(populated_repo)
        svc = SlurmConfigService(
            local, ModelFactory.load_optimizer, read_local=lambda p: files[p]
        )
        cfg = svc.run(9_999_999_999, 1)
        assert cfg.cores == 4

    def test_no_loaded_model_raises(self):
        svc = SlurmConfigService(
            DictLocalStorage(), ModelFactory.load_optimizer, read_local=lambda p: b""
        )
        with pytest.raises(ModelNotFoundError, match="load-model"):
            svc.run(1)

    def test_optimizer_cached_across_calls(self, populated_repo):
        local, files = self._loaded(populated_repo)
        reads = []

        def read(p):
            reads.append(p)
            return files[p]

        svc = SlurmConfigService(local, ModelFactory.load_optimizer, read_local=read)
        svc.run(1)
        svc.run(1)
        assert len(reads) == 1


class TestSettingsService:
    def test_set_operations(self):
        local = DictLocalStorage()
        svc = SettingsService(local)
        svc.set_database("/data/other.db")
        svc.set_blob_storage("/blobs")
        svc.set_state("activated")
        s = svc.current()
        assert s.database_path == "/data/other.db"
        assert s.blob_storage_path == "/blobs"
        assert s.plugin_state == "activated"

    def test_invalid_values(self):
        svc = SettingsService(DictLocalStorage())
        with pytest.raises(ValueError):
            svc.set_database("")
        with pytest.raises(ValueError):
            svc.set_blob_storage("")
        with pytest.raises(ValueError):
            svc.set_state("on")
