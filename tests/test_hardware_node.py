"""Unit tests for the simulated node: allocation, power, virtual FS."""

import pytest

from repro.hardware.node import ConstantWorkload, NodeError


class TestAllocation:
    def test_start_allocates_cores(self, node):
        h = node.start_workload(ConstantWorkload(cores=8))
        assert node.free_cores() == 24
        assert len(node.allocated_core_ids()) == 8
        node.stop_workload(h)
        assert node.free_cores() == 32

    def test_insufficient_cores_rejected(self, node):
        node.start_workload(ConstantWorkload(cores=30))
        with pytest.raises(NodeError, match="only 2 free"):
            node.start_workload(ConstantWorkload(cores=3))

    def test_zero_core_workload_rejected(self, node):
        with pytest.raises(NodeError):
            node.start_workload(ConstantWorkload(cores=0))

    def test_unknown_handle_rejected(self, node):
        with pytest.raises(NodeError):
            node.stop_workload(99)

    def test_two_workloads_coexist(self, node):
        node.start_workload(ConstantWorkload(cores=10))
        node.start_workload(ConstantWorkload(cores=10))
        assert node.free_cores() == 12
        assert len(node.running_workloads()) == 2

    def test_cores_reset_on_stop(self, node):
        h = node.start_workload(
            ConstantWorkload(cores=4), freq_min_khz=1_500_000, freq_max_khz=1_500_000
        )
        core = next(iter(node.allocated_core_ids()))
        assert node.policies[core].current_freq_khz == 1_500_000
        node.stop_workload(h)
        assert node.policies[core].current_freq_khz == 2_500_000


class TestPowerAndEnergy:
    def test_freq_window_applied(self, node):
        node.start_workload(
            ConstantWorkload(cores=32, compute_fraction=0.2),
            freq_min_khz=2_200_000,
            freq_max_khz=2_200_000,
        )
        rw = node.running_workloads()[0]
        assert rw.freq_khz == 2_200_000

    def test_power_rises_under_load(self, node):
        idle_w = node.instantaneous_power().system_w
        node.start_workload(ConstantWorkload(cores=32, compute_fraction=0.5, bandwidth_gbs=30.0))
        node.sim.call_at(300.0, lambda: None)
        node.sim.run()
        assert node.instantaneous_power().system_w > idle_w + 30

    def test_temperature_rises_under_load(self, node):
        t0 = node.cpu_temp_c
        node.start_workload(ConstantWorkload(cores=32, compute_fraction=0.5))
        node.sim.call_at(600.0, lambda: None)
        node.sim.run()
        assert node.cpu_temp_c > t0 + 5

    def test_energy_accumulates(self, node):
        node.start_workload(ConstantWorkload(cores=16, compute_fraction=0.3))
        node.sim.call_at(100.0, lambda: None)
        node.sim.run()
        e1 = node.true_energy_joules
        node.sim.call_at(200.0, lambda: None)
        node.sim.run()
        e2 = node.true_energy_joules
        assert e2 > e1 > 0

    def test_energy_roughly_power_times_time(self, node):
        # settle thermals first so fan power is near-constant over the window
        node.sim.call_at(1000.0, lambda: None)
        node.sim.run()
        node.start_workload(ConstantWorkload(cores=32, compute_fraction=0.3, bandwidth_gbs=35.0))
        node.sim.call_at(2000.0, lambda: None)
        node.sim.run()
        e_start = node.true_energy_joules
        p = node.instantaneous_power().system_w
        node.sim.call_at(3000.0, lambda: None)
        node.sim.run()
        delta = node.true_energy_joules - e_start
        assert delta == pytest.approx(p * 1000.0, rel=0.02)

    def test_bandwidth_capped_at_memory_peak(self, node):
        node.start_workload(ConstantWorkload(cores=16, bandwidth_gbs=500.0))
        node.start_workload(ConstantWorkload(cores=16, bandwidth_gbs=500.0))
        bd = node.instantaneous_power()
        max_dram = node.power_model.params.mem_w_per_gbs * node.memory.peak_bandwidth_gbs
        assert bd.dram_w <= max_dram + 1e-9


class TestVirtualFilesystem:
    def test_cpuinfo_has_all_threads(self, node):
        text = node.read_file("/proc/cpuinfo")
        assert text.count("processor\t:") == 64
        assert "AMD EPYC 7502P" in text

    def test_meminfo_total(self, node):
        text = node.read_file("/proc/meminfo")
        assert f"MemTotal:       {256 * 1024 * 1024} kB" in text

    def test_scaling_available_frequencies(self, node):
        text = node.read_file(
            "/sys/devices/system/cpu/cpu0/cpufreq/scaling_available_frequencies"
        )
        assert text.split() == ["1500000", "2200000", "2500000"]

    def test_scaling_governor(self, node):
        assert node.read_file(
            "/sys/devices/system/cpu/cpu5/cpufreq/scaling_governor"
        ).strip() == "performance"

    def test_cur_freq_reflects_workload(self, node):
        node.start_workload(
            ConstantWorkload(cores=1), freq_min_khz=1_500_000, freq_max_khz=1_500_000
        )
        core = next(iter(node.allocated_core_ids()))
        text = node.read_file(
            f"/sys/devices/system/cpu/cpu{core}/cpufreq/scaling_cur_freq"
        )
        assert text.strip() == "1500000"

    def test_ht_sibling_maps_to_same_core(self, node):
        a = node.read_file("/sys/devices/system/cpu/cpu0/cpufreq/scaling_cur_freq")
        b = node.read_file("/sys/devices/system/cpu/cpu32/cpufreq/scaling_cur_freq")
        assert a == b

    def test_unknown_path_raises(self, node):
        with pytest.raises(FileNotFoundError):
            node.read_file("/etc/passwd")
        with pytest.raises(FileNotFoundError):
            node.read_file("/sys/devices/system/cpu/cpu99/cpufreq/scaling_cur_freq")
        with pytest.raises(FileNotFoundError):
            node.read_file("/sys/devices/system/cpu/cpu0/cpufreq/nonsense")

    def test_cpufreq_dir_raises_isadirectory(self, node):
        with pytest.raises(IsADirectoryError):
            node.read_file("/sys/devices/system/cpu/cpu0/cpufreq")


class TestLscpu:
    def test_render_fields(self, node):
        from repro.hardware.lscpu import render_lscpu

        text = render_lscpu(node)
        assert "Model name:" in text
        assert "AMD EPYC 7502P 32-Core Processor" in text
        assert "Thread(s) per core:" in text
        lines = dict(
            (line.split(":", 1)[0], line.split(":", 1)[1].strip())
            for line in text.splitlines()
        )
        assert lines["CPU(s)"] == "64"
        assert lines["Core(s) per socket"] == "32"
        assert lines["Socket(s)"] == "1"
