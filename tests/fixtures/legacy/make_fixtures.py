"""Regenerate the checked-in pre-registry workspace fixtures.

These fixtures freeze the on-disk formats Chronus wrote *before* the
versioned model registry existed (no ``stage``/``version``/``parent_id``/
``digest``/``provenance`` columns), so the migration tests exercise real
legacy artifacts rather than ones synthesized from current code — which
would silently track schema drift.

Run from the repository root to refresh them (only needed if the
pre-registry format description itself is ever corrected)::

    python tests/fixtures/legacy/make_fixtures.py
"""

from __future__ import annotations

import csv
import json
import os
import sqlite3

HERE = os.path.dirname(os.path.abspath(__file__))

#: the pre-registry models schema, verbatim from the seed repository
LEGACY_SCHEMA = """
CREATE TABLE IF NOT EXISTS systems (
    id INTEGER PRIMARY KEY AUTOINCREMENT,
    fingerprint TEXT NOT NULL UNIQUE,
    info_json TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS benchmarks (
    id INTEGER PRIMARY KEY AUTOINCREMENT,
    system_id INTEGER NOT NULL REFERENCES systems(id),
    application TEXT NOT NULL,
    cores INTEGER NOT NULL,
    threads_per_core INTEGER NOT NULL,
    frequency INTEGER NOT NULL,
    gflops REAL NOT NULL,
    avg_system_w REAL NOT NULL,
    avg_cpu_w REAL NOT NULL,
    avg_cpu_temp_c REAL NOT NULL,
    system_energy_j REAL NOT NULL,
    cpu_energy_j REAL NOT NULL,
    runtime_s REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS models (
    id INTEGER PRIMARY KEY,
    model_type TEXT NOT NULL,
    system_id INTEGER NOT NULL REFERENCES systems(id),
    application TEXT NOT NULL,
    blob_path TEXT NOT NULL,
    created_at REAL NOT NULL,
    training_points INTEGER NOT NULL
);
"""

SYSTEM_INFO = {
    "cpu_name": "AMD EPYC 7502P 32-Core Processor",
    "cores": 32,
    "threads_per_core": 2,
    "frequencies": [1500000.0, 2200000.0, 2500000.0],
    "ram_kb": 268435456,
}

MODELS = [
    (1, "linear-regression", 1, "hpcg", "/blobs/model-1.json", 100.0, 138),
    (2, "brute-force", 1, "hpl", "/blobs/model-2.json", 200.0, 24),
]


def make_sqlite() -> None:
    path = os.path.join(HERE, "data.db")
    if os.path.exists(path):
        os.remove(path)
    conn = sqlite3.connect(path)
    conn.executescript(LEGACY_SCHEMA)
    conn.execute(
        "INSERT INTO systems (id, fingerprint, info_json) VALUES (?, ?, ?)",
        (1, "12345", json.dumps(SYSTEM_INFO)),
    )
    conn.executemany(
        "INSERT INTO models (id, model_type, system_id, application, "
        "blob_path, created_at, training_points) VALUES (?, ?, ?, ?, ?, ?, ?)",
        MODELS,
    )
    conn.commit()
    conn.close()


def make_csv() -> None:
    directory = os.path.join(HERE, "csv")
    os.makedirs(directory, exist_ok=True)
    with open(os.path.join(directory, "systems.csv"), "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["id", "fingerprint", "info_json"])
        writer.writerow([1, "12345", json.dumps(SYSTEM_INFO)])
    with open(os.path.join(directory, "models.csv"), "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow([
            "model_id", "model_type", "system_id", "application",
            "blob_path", "created_at", "training_points",
        ])
        for row in MODELS:
            writer.writerow(row)


if __name__ == "__main__":
    make_sqlite()
    make_csv()
    print(f"legacy fixtures regenerated under {HERE}")
